//! Hash-consed value interning: O(1) structural equality for attribute
//! stores.
//!
//! FNC-2's evaluators spend their inner loops moving and comparing
//! attribute values (§2.2 of the paper is about making attribute storage
//! and transport cheap; §2.1.2's incremental evaluator lives or dies by
//! how fast it can decide "this attribute did not change"). [`Value`] is a
//! tree of `Arc`-shared lists/maps/terms: *transport* is already O(1)
//! (cloning shares the allocation), but *equality* between two
//! independently built values is a deep structural recursion — O(size) on
//! big synthesized environments and code lists, in the innermost loop of
//! the incremental cutoff.
//!
//! The [`Interner`] fixes that by **hash-consing**: every composite value
//! produced by a semantic function is canonicalized bottom-up, so two
//! structurally equal values interned in the same table are the *same*
//! `Arc` — structural equality and hashing collapse to pointer/id
//! comparison ([`Value::ident`]).
//!
//! ## The invariant
//!
//! For values canonicalized in one interner:
//!
//! > `a.ident() == b.ident()`  ⟺  `a` and `b` are bitwise-structurally
//! > equal (reals compared by bit pattern).
//!
//! Soundness (⟹) holds because the interner keeps every canonical `Arc`
//! alive, so an address identifies one immutable allocation for the
//! interner's whole lifetime — no ABA reuse. Completeness (⟸) holds by
//! induction: children are canonicalized first, so a parent's structure is
//! fully described by its shape plus its children's identities, and the
//! within-bucket search compares exactly that. Correctness therefore does
//! **not** depend on hash quality — a degraded hash (see
//! [`Interner::with_hash_bits`]) only grows buckets, never conflates
//! values — which is what the collision-stress property tests prove.
//!
//! Reals are canonicalized by bit pattern. A `NaN` would make identity
//! equality diverge from IEEE `==` (which is irreflexive on `NaN`), but a
//! `NaN` attribute value already violates the repo's differential oracles
//! (they compare evaluator outputs with `==`), so no evaluator-reachable
//! value hits that corner.
//!
//! ## Cost model
//!
//! Interning a freshly built value hashes its *top layer only* (children
//! are identified by their ids), so the intern cost is proportional to the
//! value's width — the same order as building it. Re-interning an already
//! canonical value (copy-rule transport) is an O(1) set lookup, counted as
//! a hit.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use crate::value::{Value, ValueIdent};

/// Default bound on distinct canonical values per interner; past it new
/// values pass through uncanonicalized (correct, just not shared), so a
/// pathological evaluation cannot pin unbounded memory in the table.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// Running totals of one interner (or one [`SharedInterner`] shard).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Values found already canonical or already present (O(1) / bucket hit).
    pub hits: u64,
    /// Fresh values canonicalized (inserted into the table).
    pub misses: u64,
    /// Distinct canonical values held.
    pub len: u64,
}

/// A hash-consing intern table for [`Value`]s.
///
/// Not thread-safe by itself — evaluators own one per evaluation (or per
/// evaluator lifetime, for the incremental evaluator whose cutoff compares
/// ids across edits). See [`SharedInterner`] for the sharded, thread-safe
/// variant used by the parallel batch driver.
#[derive(Debug)]
pub struct Interner {
    /// Canonical values bucketed by shallow structural hash.
    buckets: HashMap<u64, Vec<Value>>,
    /// Addresses of canonical compound allocations: O(1) "already interned"
    /// checks without rehashing (the copy-rule fast path).
    canonical: HashSet<usize>,
    hits: u64,
    misses: u64,
    hash_mask: u64,
    capacity: usize,
}

impl Default for Interner {
    fn default() -> Self {
        Interner::new()
    }
}

impl Interner {
    /// An empty interner with the full 64-bit hash and default capacity.
    pub fn new() -> Interner {
        Interner::with_hash_bits(64)
    }

    /// An empty interner whose shallow hash is truncated to `bits` bits.
    ///
    /// A degraded hash (e.g. 8 bits) forces heavy bucket collisions; the
    /// property tests use it to prove that canonicalization decisions are
    /// made by the structural within-bucket comparison, never by the hash.
    pub fn with_hash_bits(bits: u32) -> Interner {
        let hash_mask = if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        Interner {
            buckets: HashMap::new(),
            canonical: HashSet::new(),
            hits: 0,
            misses: 0,
            hash_mask,
            capacity: DEFAULT_CAPACITY,
        }
    }

    /// Caps the number of distinct canonical values; past the cap, interning
    /// passes values through unchanged (still structurally correct).
    pub fn with_capacity_limit(mut self, capacity: usize) -> Interner {
        self.capacity = capacity;
        self
    }

    /// Distinct canonical values held (the table's occupancy).
    pub fn len(&self) -> usize {
        self.canonical.len()
    }

    /// True when nothing has been canonicalized yet.
    pub fn is_empty(&self) -> bool {
        self.canonical.is_empty()
    }

    /// Hits / misses / occupancy so far.
    pub fn stats(&self) -> InternStats {
        InternStats {
            hits: self.hits,
            misses: self.misses,
            len: self.canonical.len() as u64,
        }
    }

    /// True when `v` is a compound value already canonical in this table.
    pub fn is_canonical(&self, v: &Value) -> bool {
        match compound_addr(v) {
            Some(addr) => self.canonical.contains(&addr),
            None => false,
        }
    }

    /// True when `v`'s identity is stable for the lifetime of this interner:
    /// scalars always, compounds only when canonical here. Only stable
    /// identities may be used in memo-cache keys or O(1) equality cuts.
    pub fn is_stable(&self, v: &Value) -> bool {
        match compound_addr(v) {
            Some(addr) => self.canonical.contains(&addr),
            None => true,
        }
    }

    /// Canonicalizes `v` bottom-up and returns the canonical representative
    /// (which is `v` itself when `v` is first of its structure, or already
    /// canonical).
    pub fn intern(&mut self, v: Value) -> Value {
        match v {
            Value::Unit | Value::Bool(_) | Value::Int(_) | Value::Real(_) => v,
            Value::Str(_) => self.canonize(v),
            Value::List(mut l) => {
                if l.iter().any(|c| self.needs_work(c)) {
                    for c in Arc::make_mut(&mut l).iter_mut() {
                        *c = self.intern(std::mem::take(c));
                    }
                }
                self.canonize(Value::List(l))
            }
            Value::Tuple(mut t) => {
                if t.iter().any(|c| self.needs_work(c)) {
                    for c in Arc::make_mut(&mut t).iter_mut() {
                        *c = self.intern(std::mem::take(c));
                    }
                }
                self.canonize(Value::Tuple(t))
            }
            Value::Map(mut m) => {
                if m.values().any(|c| self.needs_work(c)) {
                    for c in Arc::make_mut(&mut m).values_mut() {
                        *c = self.intern(std::mem::take(c));
                    }
                }
                self.canonize(Value::Map(m))
            }
            Value::Term(mut t) => {
                if t.children.iter().any(|c| self.needs_work(c)) {
                    for c in Arc::make_mut(&mut t).children.iter_mut() {
                        *c = self.intern(std::mem::take(c));
                    }
                }
                self.canonize(Value::Term(t))
            }
        }
    }

    /// True when `c` is a compound that still needs canonicalization.
    fn needs_work(&self, c: &Value) -> bool {
        match compound_addr(c) {
            Some(addr) => !self.canonical.contains(&addr),
            None => false,
        }
    }

    /// Canonicalizes one value whose children are already canonical.
    fn canonize(&mut self, v: Value) -> Value {
        let addr = compound_addr(&v).expect("canonize takes compounds only");
        if self.canonical.contains(&addr) {
            self.hits += 1;
            return v;
        }
        let h = shallow_hash(&v) & self.hash_mask;
        let bucket = self.buckets.entry(h).or_default();
        for candidate in bucket.iter() {
            if shallow_eq(candidate, &v) {
                self.hits += 1;
                return candidate.clone();
            }
        }
        if self.canonical.len() >= self.capacity {
            // Table full: pass through uncanonicalized. Still correct —
            // equality falls back to the structural comparison.
            self.misses += 1;
            return v;
        }
        bucket.push(v.clone());
        self.canonical.insert(addr);
        self.misses += 1;
        v
    }
}

/// The allocation address of a compound value, `None` for scalars.
fn compound_addr(v: &Value) -> Option<usize> {
    match v {
        Value::Unit | Value::Bool(_) | Value::Int(_) | Value::Real(_) => None,
        Value::Str(s) => Some(Arc::as_ptr(s) as *const u8 as usize),
        Value::List(l) => Some(Arc::as_ptr(l) as usize),
        Value::Tuple(t) => Some(Arc::as_ptr(t) as usize),
        Value::Map(m) => Some(Arc::as_ptr(m) as usize),
        Value::Term(t) => Some(Arc::as_ptr(t) as usize),
    }
}

/// Hashes one value's top layer: its shape plus its children's identities.
/// Children must already be canonical for this to respect the interner
/// invariant. `DefaultHasher::new()` uses fixed keys, so hashes are
/// deterministic within a process.
fn shallow_hash(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    match v {
        Value::Str(s) => {
            0u8.hash(&mut h);
            s.hash(&mut h);
        }
        Value::List(l) => {
            1u8.hash(&mut h);
            hash_children(l, &mut h);
        }
        Value::Tuple(t) => {
            2u8.hash(&mut h);
            hash_children(t, &mut h);
        }
        Value::Map(m) => {
            3u8.hash(&mut h);
            m.len().hash(&mut h);
            for (k, c) in m.iter() {
                k.hash(&mut h);
                c.ident().hash(&mut h);
            }
        }
        Value::Term(t) => {
            4u8.hash(&mut h);
            t.op.hash(&mut h);
            hash_children(&t.children, &mut h);
        }
        scalar => unreachable!("scalars are not hash-consed: {scalar:?}"),
    }
    h.finish()
}

fn hash_children(children: &[Value], h: &mut DefaultHasher) {
    children.len().hash(h);
    for c in children {
        c.ident().hash(h);
    }
}

/// Structural equality of two values whose children are canonical in the
/// same table: shape plus pairwise child identity. This is the within-bucket
/// comparison — by induction it is exactly bitwise structural equality, so
/// hash collisions can never conflate distinct values.
fn shallow_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::List(x), Value::List(y)) | (Value::Tuple(x), Value::Tuple(y)) => eq_children(x, y),
        (Value::Map(x), Value::Map(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y.iter())
                    .all(|((ka, va), (kb, vb))| ka == kb && va.ident() == vb.ident())
        }
        (Value::Term(x), Value::Term(y)) => x.op == y.op && eq_children(&x.children, &y.children),
        _ => false,
    }
}

fn eq_children(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.ident() == y.ident())
}

// ---------------------------------------------------------------------------
// Sharded thread-safe interner (parallel batch evaluation)
// ---------------------------------------------------------------------------

/// A thread-safe hash-consing table: `N` mutex-guarded [`Interner`] shards,
/// values routed to a shard by their shallow structural hash so two equal
/// values built on different worker threads always meet in the same shard
/// and share one canonical representative.
///
/// Workers intern through a shared `&SharedInterner` (typically behind an
/// `Arc` owned by the evaluator); per-shard statistics are merged on demand
/// by [`SharedInterner::stats`] — the "merge at join" of the batch driver
/// is a read of these totals into the run's counters.
#[derive(Debug)]
pub struct SharedInterner {
    shards: Vec<Mutex<Interner>>,
    /// Canonical-address registry sharded by address (not by content hash):
    /// lets `intern` skip hashing already canonical values with one short
    /// lock, the same O(1) fast path the private table has.
    canon: Vec<Mutex<HashSet<usize>>>,
}

impl SharedInterner {
    /// A table with `shards` shards (clamped to at least 1).
    pub fn new(shards: usize) -> SharedInterner {
        let n = shards.max(1);
        SharedInterner {
            shards: (0..n).map(|_| Mutex::new(Interner::new())).collect(),
            canon: (0..n).map(|_| Mutex::new(HashSet::new())).collect(),
        }
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// True when `v` is a compound already canonical in this table.
    pub fn is_canonical(&self, v: &Value) -> bool {
        match compound_addr(v) {
            Some(addr) => self.canon[addr % self.canon.len()]
                .lock()
                .expect("interner shard poisoned")
                .contains(&addr),
            None => false,
        }
    }

    /// True when `v`'s identity is stable for this table's lifetime.
    pub fn is_stable(&self, v: &Value) -> bool {
        compound_addr(v).is_none() || self.is_canonical(v)
    }

    /// Canonicalizes `v` bottom-up across the shards.
    pub fn intern(&self, v: Value) -> Value {
        match v {
            Value::Unit | Value::Bool(_) | Value::Int(_) | Value::Real(_) => v,
            Value::Str(_) => self.canonize(v),
            Value::List(mut l) => {
                if l.iter().any(|c| self.needs_work(c)) {
                    for c in Arc::make_mut(&mut l).iter_mut() {
                        *c = self.intern(std::mem::take(c));
                    }
                }
                self.canonize(Value::List(l))
            }
            Value::Tuple(mut t) => {
                if t.iter().any(|c| self.needs_work(c)) {
                    for c in Arc::make_mut(&mut t).iter_mut() {
                        *c = self.intern(std::mem::take(c));
                    }
                }
                self.canonize(Value::Tuple(t))
            }
            Value::Map(mut m) => {
                if m.values().any(|c| self.needs_work(c)) {
                    for c in Arc::make_mut(&mut m).values_mut() {
                        *c = self.intern(std::mem::take(c));
                    }
                }
                self.canonize(Value::Map(m))
            }
            Value::Term(mut t) => {
                if t.children.iter().any(|c| self.needs_work(c)) {
                    for c in Arc::make_mut(&mut t).children.iter_mut() {
                        *c = self.intern(std::mem::take(c));
                    }
                }
                self.canonize(Value::Term(t))
            }
        }
    }

    fn needs_work(&self, c: &Value) -> bool {
        compound_addr(c).is_some() && !self.is_canonical(c)
    }

    fn canonize(&self, v: Value) -> Value {
        debug_assert!(compound_addr(&v).is_some(), "canonize takes compounds only");
        if self.is_canonical(&v) {
            let mut shard = self.shards[shallow_hash(&v) as usize % self.shards.len()]
                .lock()
                .expect("interner shard poisoned");
            shard.hits += 1;
            return v;
        }
        let h = shallow_hash(&v);
        let (out, pinned) = {
            let mut shard = self.shards[h as usize % self.shards.len()]
                .lock()
                .expect("interner shard poisoned");
            let out = shard.canonize(v);
            // At shard capacity `canonize` passes values through without
            // pinning them in a bucket; such addresses must NOT enter the
            // registry or a later allocation reuse could alias them.
            let pinned = compound_addr(&out).is_some_and(|a| shard.canonical.contains(&a));
            (out, pinned)
        };
        if pinned {
            let canonical_addr = compound_addr(&out).expect("pinned values are compounds");
            // Registered even on a bucket hit (idempotent).
            self.canon[canonical_addr % self.canon.len()]
                .lock()
                .expect("interner shard poisoned")
                .insert(canonical_addr);
        }
        out
    }

    /// Merged hits / misses / occupancy over all shards.
    pub fn stats(&self) -> InternStats {
        let mut total = InternStats::default();
        for s in &self.shards {
            let s = s.lock().expect("interner shard poisoned");
            let st = s.stats();
            total.hits += st.hits;
            total.misses += st.misses;
            total.len += st.len;
        }
        total
    }
}

// ---------------------------------------------------------------------------
// Memoizing apply cache
// ---------------------------------------------------------------------------

/// A `(function, argument identities) → result` cache for pure semantic
/// functions over canonical arguments.
///
/// Safety of memoization rests on two facts: semantic functions are pure
/// (OLGA is applicative — a function's result depends only on its
/// arguments), and a key is only built from *stable* identities
/// ([`Interner::is_stable`]), so equal keys really denote bitwise equal
/// argument vectors. The cached result is itself canonical, so a hit
/// transports one `Arc` clone.
#[derive(Debug, Default)]
pub struct MemoCache {
    map: HashMap<MemoKey, Value>,
    hits: u64,
    capacity: usize,
}

/// A memo key: the rule's `(production, rule index)` plus the canonical
/// identities of the argument vector.
pub type MemoKey = (u32, u32, Box<[ValueIdent]>);

/// Default bound on memoized entries.
pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 18;

impl MemoCache {
    /// An empty cache with the default capacity.
    pub fn new() -> MemoCache {
        MemoCache {
            map: HashMap::new(),
            hits: 0,
            capacity: DEFAULT_MEMO_CAPACITY,
        }
    }

    /// Cached result for `key`, if present.
    pub fn get(&mut self, key: &MemoKey) -> Option<Value> {
        let v = self.map.get(key).cloned();
        if v.is_some() {
            self.hits += 1;
        }
        v
    }

    /// Records `result` for `key` (dropped silently once at capacity).
    pub fn put(&mut self, key: MemoKey, result: Value) {
        if self.map.len() < self.capacity {
            self.map.insert(key, result);
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Entries held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entry has been recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// SplitMix64 — the repo's deterministic RNG (fnc2-corpus has the
    /// canonical copy; fnc2-ag sits below it in the crate graph, so the
    /// property tests carry their own 10-line copy).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// A random value of bounded depth, covering every variant.
    fn random_value(rng: &mut Rng, depth: usize) -> Value {
        let pick = if depth == 0 {
            rng.below(5)
        } else {
            rng.below(9)
        };
        match pick {
            0 => Value::Unit,
            1 => Value::Bool(rng.below(2) == 0),
            2 => Value::Int(rng.below(7) as i64 - 3),
            3 => Value::Real((rng.below(5) as f64) / 2.0),
            4 => Value::str(format!("s{}", rng.below(6))),
            5 => {
                let n = rng.below(4);
                Value::list((0..n).map(|_| random_value(rng, depth - 1)))
            }
            6 => {
                let n = rng.below(3);
                Value::tuple((0..n).map(|_| random_value(rng, depth - 1)))
            }
            7 => {
                let n = rng.below(4);
                let mut m = BTreeMap::new();
                for _ in 0..n {
                    m.insert(format!("k{}", rng.below(5)), random_value(rng, depth - 1));
                }
                Value::Map(Arc::new(m))
            }
            _ => {
                let n = rng.below(3);
                Value::term(
                    format!("op{}", rng.below(4)),
                    (0..n).map(|_| random_value(rng, depth - 1)),
                )
            }
        }
    }

    #[test]
    fn interning_preserves_structure() {
        let mut rng = Rng(0x1177);
        let mut it = Interner::new();
        for _ in 0..500 {
            let v = random_value(&mut rng, 3);
            let original = v.clone();
            let canon = it.intern(v);
            assert_eq!(canon, original, "interning must not change the value");
        }
    }

    /// The tentpole invariant: same id ⟺ structurally equal, over random
    /// values drawn from a small alphabet (so collisions are common).
    #[test]
    fn same_id_iff_structurally_equal() {
        for hash_bits in [64u32, 8] {
            let mut rng = Rng(0x5eed ^ hash_bits as u64);
            let mut it = Interner::with_hash_bits(hash_bits);
            let canon: Vec<Value> = (0..400)
                .map(|_| it.intern(random_value(&mut rng, 3)))
                .collect();
            for a in &canon {
                for b in &canon {
                    assert_eq!(
                        a.ident() == b.ident(),
                        a == b,
                        "hash_bits={hash_bits}: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    /// With an 8-bit hash nearly everything collides; occupancy must still
    /// equal the number of *distinct* structures, byte for byte what the
    /// full-width hash finds.
    #[test]
    fn degraded_hash_changes_nothing_but_bucket_sizes() {
        let mut values = Vec::new();
        let mut rng = Rng(0xc0111de);
        for _ in 0..600 {
            values.push(random_value(&mut rng, 3));
        }
        let mut wide = Interner::new();
        let mut narrow = Interner::with_hash_bits(8);
        for v in &values {
            let a = wide.intern(v.clone());
            let b = narrow.intern(v.clone());
            assert_eq!(a, b);
        }
        assert_eq!(wide.len(), narrow.len(), "same distinct structures");
        assert_eq!(
            wide.stats().misses,
            narrow.stats().misses,
            "canonicalization decisions are hash-independent"
        );
    }

    #[test]
    fn reinterning_canonical_is_a_hit() {
        let mut it = Interner::new();
        let v = it.intern(Value::list([Value::Int(1), Value::str("x")]));
        let before = it.stats();
        let w = it.intern(v.clone());
        assert_eq!(w.ident(), v.ident());
        let after = it.stats();
        assert_eq!(after.misses, before.misses);
        assert_eq!(after.hits, before.hits + 1);
    }

    #[test]
    fn structurally_equal_fresh_values_share_one_allocation() {
        let mut it = Interner::new();
        let a = it.intern(Value::list([Value::Int(1), Value::list([Value::Int(2)])]));
        let b = it.intern(Value::list([Value::Int(1), Value::list([Value::Int(2)])]));
        assert_eq!(a.ident(), b.ident());
        // And the nested list is shared too (bottom-up canonicalization).
        let inner_a = a.as_list()[1].ident();
        let c = it.intern(Value::list([Value::Int(2)]));
        assert_eq!(inner_a, c.ident());
    }

    #[test]
    fn capacity_overflow_degrades_gracefully() {
        let mut it = Interner::new().with_capacity_limit(2);
        let a = it.intern(Value::str("a"));
        let b = it.intern(Value::str("b"));
        let c = it.intern(Value::str("c")); // over capacity: passes through
        assert_eq!(it.len(), 2);
        assert_eq!(a, Value::str("a"));
        assert_eq!(b, Value::str("b"));
        assert_eq!(c, Value::str("c"));
        // The overflow value is NOT canonical: a re-intern of equal content
        // still misses, but equality still holds structurally.
        let c2 = it.intern(Value::str("c"));
        assert_eq!(c, c2);
    }

    #[test]
    fn real_values_canonicalize_by_bit_pattern() {
        let mut it = Interner::new();
        let a = it.intern(Value::list([Value::Real(0.5)]));
        let b = it.intern(Value::list([Value::Real(0.5)]));
        let c = it.intern(Value::list([Value::Real(-0.5)]));
        assert_eq!(a.ident(), b.ident());
        assert_ne!(a.ident(), c.ident());
        // 0.0 and -0.0 are IEEE-equal but bitwise distinct: the interner
        // keeps them apart (bitwise semantics), and `==` still says equal.
        let z = it.intern(Value::list([Value::Real(0.0)]));
        let nz = it.intern(Value::list([Value::Real(-0.0)]));
        assert_ne!(z.ident(), nz.ident());
        assert_eq!(z, nz);
    }

    #[test]
    fn shared_interner_matches_private_one() {
        let sh = SharedInterner::new(4);
        let mut it = Interner::new();
        let mut rng = Rng(0x7a57);
        for _ in 0..300 {
            let v = random_value(&mut rng, 3);
            let a = sh.intern(v.clone());
            let b = it.intern(v.clone());
            assert_eq!(a, b);
            assert_eq!(a, v);
        }
        assert_eq!(sh.stats().len, it.len() as u64);
    }

    #[test]
    fn shared_interner_unifies_across_threads() {
        let sh = SharedInterner::new(4);
        let idents: Vec<ValueIdent> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let sh = &sh;
                    scope.spawn(move || {
                        sh.intern(Value::list([Value::Int(7), Value::str("shared")]))
                            .ident()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(
            idents.windows(2).all(|w| w[0] == w[1]),
            "equal values from different threads share one canonical id: {idents:?}"
        );
    }

    #[test]
    fn memo_cache_round_trips() {
        let mut it = Interner::new();
        let mut memo = MemoCache::new();
        let arg = it.intern(Value::list([Value::Int(1)]));
        let key: MemoKey = (3, 1, vec![arg.ident()].into_boxed_slice());
        assert_eq!(memo.get(&key), None);
        let result = it.intern(Value::list([Value::Int(2)]));
        memo.put(key.clone(), result.clone());
        assert_eq!(memo.get(&key), Some(result));
        assert_eq!(memo.hits(), 1);
    }
}
