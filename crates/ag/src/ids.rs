//! Typed index newtypes used throughout the FNC-2 reproduction.
//!
//! Every entity of an attribute grammar (phylum, production, attribute,
//! production-local attribute) is identified by a small dense index into the
//! owning [`Grammar`](crate::Grammar)'s tables. Newtypes keep the index
//! spaces statically distinct (C-NEWTYPE).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw index.
            ///
            /// Ids are normally produced by a
            /// [`GrammarBuilder`](crate::GrammarBuilder); constructing one
            /// from a raw index is useful for tables computed outside the
            /// grammar (analysis results, benches).
            #[inline]
            pub const fn from_raw(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw dense index, suitable for indexing side tables.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a phylum (non-terminal) of a grammar.
    PhylumId,
    "X"
);
id_type!(
    /// Identifies a production (operator) of a grammar.
    ProductionId,
    "p"
);
id_type!(
    /// Identifies an attribute declaration `(phylum, name, kind)`.
    ///
    /// Attribute ids are global to the grammar: two phyla carrying an
    /// attribute of the same name get two distinct [`AttrId`]s.
    AttrId,
    "a"
);
id_type!(
    /// Identifies a production-local attribute within its production.
    LocalId,
    "l"
);
id_type!(
    /// Identifies a semantic function in the grammar's function registry.
    FuncId,
    "f"
);
id_type!(
    /// Identifies a node of an attributed [`Tree`](crate::Tree).
    NodeId,
    "n"
);

/// An attribute occurrence `pos.attr` inside a production.
///
/// `pos == 0` designates the left-hand-side occurrence; `pos == i` for
/// `1 <= i <= arity` designates the `i`-th right-hand-side occurrence.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Occ {
    /// Position in the production: 0 for the LHS, 1-based for RHS symbols.
    pub pos: u16,
    /// The attribute occurring at that position.
    pub attr: AttrId,
}

impl Occ {
    /// Occurrence of `attr` at position `pos` (0 = LHS).
    #[inline]
    pub const fn new(pos: u16, attr: AttrId) -> Self {
        Occ { pos, attr }
    }

    /// Occurrence on the left-hand-side symbol.
    #[inline]
    pub const fn lhs(attr: AttrId) -> Self {
        Occ { pos: 0, attr }
    }

    /// True if this is the LHS occurrence.
    #[inline]
    pub const fn is_lhs(self) -> bool {
        self.pos == 0
    }
}

impl fmt::Debug for Occ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.pos, self.attr)
    }
}

impl fmt::Display for Occ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.pos, self.attr)
    }
}

/// A node of a production's dependency graph: either an attribute occurrence
/// or a production-local attribute.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ONode {
    /// An attribute occurrence `pos.attr`.
    Attr(Occ),
    /// A production-local attribute.
    Local(LocalId),
}

impl ONode {
    /// The occurrence, if this node is one.
    #[inline]
    pub fn occ(self) -> Option<Occ> {
        match self {
            ONode::Attr(o) => Some(o),
            ONode::Local(_) => None,
        }
    }
}

impl From<Occ> for ONode {
    fn from(o: Occ) -> Self {
        ONode::Attr(o)
    }
}

impl From<LocalId> for ONode {
    fn from(l: LocalId) -> Self {
        ONode::Local(l)
    }
}

impl fmt::Debug for ONode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ONode::Attr(o) => write!(f, "{o}"),
            ONode::Local(l) => write!(f, "{l}"),
        }
    }
}

impl fmt::Display for ONode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let p = PhylumId::from_raw(7);
        assert_eq!(p.index(), 7);
        assert_eq!(format!("{p}"), "X7");
        assert_eq!(format!("{p:?}"), "X7");
    }

    #[test]
    fn occ_display_and_order() {
        let a = AttrId::from_raw(3);
        let o = Occ::new(2, a);
        assert_eq!(format!("{o}"), "2.a3");
        assert!(Occ::lhs(a) < o);
        assert!(Occ::lhs(a).is_lhs());
        assert!(!o.is_lhs());
    }

    #[test]
    fn onode_conversions() {
        let a = AttrId::from_raw(1);
        let n: ONode = Occ::lhs(a).into();
        assert_eq!(n.occ(), Some(Occ::lhs(a)));
        let l: ONode = LocalId::from_raw(0).into();
        assert_eq!(l.occ(), None);
        assert_eq!(format!("{l}"), "l0");
    }
}
