//! Runtime values of attribute instances.
//!
//! Semantic functions in FNC-2 are written in OLGA, a strongly typed
//! applicative language; once translated, an evaluator manipulates dynamic
//! values. [`Value`] is that dynamic representation: scalars, strings,
//! lists, tuples, finite maps (symbol tables) and *terms* — the attributed
//! output trees of the tree-to-tree mapping paradigm (paper §2.3).
//!
//! Compound values are atomically reference-counted (shareable across the
//! parallel batch driver's worker threads) so that copy rules (the dominant
//! rule form in real AGs) are O(1), mirroring the pointer-copy semantics of
//! the original C back-end.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A dynamically typed attribute value.
#[derive(Clone, Default)]
pub enum Value {
    /// The unit (void) value.
    #[default]
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A double-precision real.
    Real(f64),
    /// An immutable string.
    Str(Arc<str>),
    /// An immutable list.
    List(Arc<Vec<Value>>),
    /// An immutable tuple.
    Tuple(Arc<Vec<Value>>),
    /// A finite map with string keys (symbol tables, environments).
    Map(Arc<BTreeMap<String, Value>>),
    /// A term of an output tree (tree-to-tree mapping, paper §2.3).
    Term(Arc<Term>),
}

/// A constructed output-tree term: an operator name applied to children.
#[derive(Clone, PartialEq, Debug)]
pub struct Term {
    /// Operator (production) name of the constructed node.
    pub op: String,
    /// Child terms or embedded scalar values.
    pub children: Vec<Value>,
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Builds a list value.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Value {
        Value::List(Arc::new(items.into_iter().collect()))
    }

    /// Builds a tuple value.
    pub fn tuple(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Tuple(Arc::new(items.into_iter().collect()))
    }

    /// Builds an empty map value.
    pub fn empty_map() -> Value {
        Value::Map(Arc::new(BTreeMap::new()))
    }

    /// Builds a term value.
    pub fn term(op: impl Into<String>, children: impl IntoIterator<Item = Value>) -> Value {
        Value::Term(Arc::new(Term {
            op: op.into(),
            children: children.into_iter().collect(),
        }))
    }

    /// The integer payload.
    ///
    /// # Panics
    /// Panics if the value is not an [`Value::Int`]; evaluator-internal use
    /// where the OLGA type checker has already guaranteed the type.
    #[track_caller]
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            other => panic!("expected int, got {other:?}"),
        }
    }

    /// The real payload (an `Int` is promoted).
    ///
    /// # Panics
    /// Panics if the value is neither `Real` nor `Int`.
    #[track_caller]
    pub fn as_real(&self) -> f64 {
        match self {
            Value::Real(r) => *r,
            Value::Int(i) => *i as f64,
            other => panic!("expected real, got {other:?}"),
        }
    }

    /// The boolean payload.
    ///
    /// # Panics
    /// Panics if the value is not a `Bool`.
    #[track_caller]
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected bool, got {other:?}"),
        }
    }

    /// The string payload.
    ///
    /// # Panics
    /// Panics if the value is not a `Str`.
    #[track_caller]
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    /// The list payload.
    ///
    /// # Panics
    /// Panics if the value is not a `List`.
    #[track_caller]
    pub fn as_list(&self) -> &[Value] {
        match self {
            Value::List(l) => l,
            other => panic!("expected list, got {other:?}"),
        }
    }

    /// The tuple payload.
    ///
    /// # Panics
    /// Panics if the value is not a `Tuple`.
    #[track_caller]
    pub fn as_tuple(&self) -> &[Value] {
        match self {
            Value::Tuple(t) => t,
            other => panic!("expected tuple, got {other:?}"),
        }
    }

    /// The map payload.
    ///
    /// # Panics
    /// Panics if the value is not a `Map`.
    #[track_caller]
    pub fn as_map(&self) -> &BTreeMap<String, Value> {
        match self {
            Value::Map(m) => m,
            other => panic!("expected map, got {other:?}"),
        }
    }

    /// The term payload.
    ///
    /// # Panics
    /// Panics if the value is not a `Term`.
    #[track_caller]
    pub fn as_term(&self) -> &Term {
        match self {
            Value::Term(t) => t,
            other => panic!("expected term, got {other:?}"),
        }
    }

    /// Functional map update: returns a map equal to `self` with
    /// `key ↦ value` added or replaced.
    ///
    /// # Panics
    /// Panics if the value is not a `Map`.
    pub fn map_insert(&self, key: impl Into<String>, value: Value) -> Value {
        // Copy-on-write: `Arc::make_mut` mutates in place when this map is
        // the sole owner (the common fold-style threading pattern) and only
        // deep-clones when the old version is still shared — the functional
        // semantics observed by callers are identical either way.
        let Value::Map(m) = self else {
            panic!("expected map, got {self:?}")
        };
        let mut m = Arc::clone(m);
        Arc::make_mut(&mut m).insert(key.into(), value);
        Value::Map(m)
    }

    /// Functional map removal: returns a map equal to `self` without `key`.
    ///
    /// # Panics
    /// Panics if the value is not a `Map`.
    pub fn map_remove(&self, key: &str) -> Value {
        let Value::Map(m) = self else {
            panic!("expected map, got {self:?}")
        };
        let mut m = Arc::clone(m);
        Arc::make_mut(&mut m).remove(key);
        Value::Map(m)
    }

    /// Functional list append: returns a list equal to `self` with `value`
    /// pushed at the back, mutating in place when uniquely owned.
    ///
    /// # Panics
    /// Panics if the value is not a `List`.
    pub fn list_push(&self, value: Value) -> Value {
        let Value::List(l) = self else {
            panic!("expected list, got {self:?}")
        };
        let mut l = Arc::clone(l);
        Arc::make_mut(&mut l).push(value);
        Value::List(l)
    }

    /// Map lookup. Returns `None` when absent.
    ///
    /// # Panics
    /// Panics if the value is not a `Map`.
    pub fn map_get(&self, key: &str) -> Option<&Value> {
        self.as_map().get(key)
    }

    /// The name of this value's dynamic type, for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Real(_) => "real",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Tuple(_) => "tuple",
            Value::Map(_) => "map",
            Value::Term(_) => "term",
        }
    }

    /// The identity token of this value: scalars by payload (reals by bit
    /// pattern), compound values by the address of their shared allocation.
    ///
    /// Two values with equal identities are bitwise-structurally equal
    /// **provided** compound allocations are kept alive for the comparison
    /// window (an address can be reused once its `Arc` drops) — the
    /// [`Interner`](crate::intern::Interner) guarantees exactly that for
    /// canonical values, which is what makes identity comparison a sound
    /// O(1) equality for interned attribute stores.
    pub fn ident(&self) -> ValueIdent {
        match self {
            Value::Unit => ValueIdent::Unit,
            Value::Bool(b) => ValueIdent::Bool(*b),
            Value::Int(i) => ValueIdent::Int(*i),
            Value::Real(r) => ValueIdent::Real(r.to_bits()),
            Value::Str(s) => ValueIdent::Str(Arc::as_ptr(s) as *const u8 as usize),
            Value::List(l) => ValueIdent::List(Arc::as_ptr(l) as usize),
            Value::Tuple(t) => ValueIdent::Tuple(Arc::as_ptr(t) as usize),
            Value::Map(m) => ValueIdent::Map(Arc::as_ptr(m) as usize),
            Value::Term(t) => ValueIdent::Term(Arc::as_ptr(t) as usize),
        }
    }

    /// A coarse measure of the number of heap cells this value transitively
    /// owns; used by the space-consumption benchmarks (paper §4.1).
    pub fn cell_count(&self) -> usize {
        match self {
            Value::Unit | Value::Bool(_) | Value::Int(_) | Value::Real(_) => 1,
            Value::Str(_) => 1,
            Value::List(items) | Value::Tuple(items) => {
                1 + items.iter().map(Value::cell_count).sum::<usize>()
            }
            Value::Map(m) => 1 + m.values().map(Value::cell_count).sum::<usize>(),
            Value::Term(t) => 1 + t.children.iter().map(Value::cell_count).sum::<usize>(),
        }
    }
}

/// A value's identity: the payload for scalars (reals by bit pattern), the
/// shared allocation's address for compound values, tagged by variant.
///
/// Identity equality implies structural equality whenever the compound
/// allocations involved are pinned (see [`Value::ident`]); the converse
/// holds only for values canonicalized in the *same*
/// [`Interner`](crate::intern::Interner). `ValueIdent` is `Copy + Eq +
/// Hash`, which is what makes it usable as a memo-cache key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ValueIdent {
    /// The unit value.
    Unit,
    /// A boolean, by payload.
    Bool(bool),
    /// An integer, by payload.
    Int(i64),
    /// A real, by IEEE-754 bit pattern.
    Real(u64),
    /// A string, by allocation address.
    Str(usize),
    /// A list, by allocation address.
    List(usize),
    /// A tuple, by allocation address.
    Tuple(usize),
    /// A map, by allocation address.
    Map(usize),
    /// A term, by allocation address.
    Term(usize),
}

impl PartialEq for Value {
    /// Structural equality with an O(1) fast path: compound values sharing
    /// one allocation (copy rules, interned canonical representatives) are
    /// equal without recursion. The slow path is the usual deep recursion,
    /// which itself short-circuits on shared subtrees.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Unit, Value::Unit) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Real(a), Value::Real(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => Arc::ptr_eq(a, b) || a == b,
            (Value::List(a), Value::List(b)) => Arc::ptr_eq(a, b) || a == b,
            (Value::Tuple(a), Value::Tuple(b)) => Arc::ptr_eq(a, b) || a == b,
            (Value::Map(a), Value::Map(b)) => Arc::ptr_eq(a, b) || a == b,
            (Value::Term(a), Value::Term(b)) => Arc::ptr_eq(a, b) || a == b,
            _ => false,
        }
    }
}

impl PartialOrd for Value {
    /// Orders scalars of the same type; compound values and mixed types are
    /// unordered (returns `None`).
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.partial_cmp(b),
            (Value::Real(a), Value::Real(b)) => a.partial_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.partial_cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.partial_cmp(b),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(items) => f.debug_list().entries(items.iter()).finish(),
            Value::Tuple(items) => {
                write!(f, "(")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, ")")
            }
            Value::Map(m) => f.debug_map().entries(m.iter()).finish(),
            Value::Term(t) => {
                write!(f, "{}", t.op)?;
                if !t.children.is_empty() {
                    write!(f, "(")?;
                    for (i, c) in t.children.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{c:?}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            other => write!(f, "{other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_accessors() {
        assert_eq!(Value::Int(4).as_int(), 4);
        assert_eq!(Value::Int(4).as_real(), 4.0);
        assert_eq!(Value::Real(0.5).as_real(), 0.5);
        assert!(Value::Bool(true).as_bool());
        assert_eq!(Value::str("hi").as_str(), "hi");
    }

    #[test]
    #[should_panic(expected = "expected int")]
    fn wrong_accessor_panics() {
        Value::Bool(true).as_int();
    }

    #[test]
    fn map_is_functional() {
        let m0 = Value::empty_map();
        let m1 = m0.map_insert("x", Value::Int(1));
        let m2 = m1.map_insert("y", Value::Int(2));
        assert_eq!(m0.as_map().len(), 0);
        assert_eq!(m1.as_map().len(), 1);
        assert_eq!(m2.map_get("x"), Some(&Value::Int(1)));
        assert_eq!(m1.map_get("y"), None);
    }

    #[test]
    fn term_display() {
        let t = Value::term("add", [Value::term("lit", [Value::Int(1)]), Value::Int(2)]);
        assert_eq!(format!("{t}"), "add(lit(1), 2)");
    }

    #[test]
    fn cell_count_is_transitive() {
        let v = Value::list([Value::Int(1), Value::list([Value::Int(2)])]);
        assert_eq!(v.cell_count(), 4);
    }

    #[test]
    fn partial_order_only_same_scalars() {
        assert!(Value::Int(1) < Value::Int(2));
        assert_eq!(Value::Int(1).partial_cmp(&Value::str("a")), None);
        assert_eq!(
            Value::list([]).partial_cmp(&Value::list([])),
            None,
            "compound values are unordered"
        );
    }

    #[test]
    fn display_vs_debug_for_strings() {
        let s = Value::str("a\"b");
        assert_eq!(format!("{s}"), "a\"b");
        assert_eq!(format!("{s:?}"), "\"a\\\"b\"");
    }
}
