//! Grammar construction and well-definedness errors.

use std::error::Error;
use std::fmt;

/// An error detected while building or validating an attribute grammar.
///
/// Well-definedness (paper §3.3, the `asx` processor) requires every output
/// occurrence of every production — synthesized attributes of the LHS,
/// inherited attributes of RHS symbols, and production-local attributes — to
/// be defined by exactly one semantic rule, and every rule to reference only
/// declared entities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GrammarError {
    /// A name was declared twice in the same namespace.
    DuplicateName {
        /// What kind of entity (phylum, attribute, production, function).
        kind: &'static str,
        /// The offending name.
        name: String,
    },
    /// A rule or declaration referenced an unknown name.
    UnknownName {
        /// What kind of entity was looked up.
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// An occurrence referenced a position beyond the production's arity.
    PositionOutOfRange {
        /// Production name.
        production: String,
        /// The out-of-range position.
        pos: u16,
        /// The production's arity.
        arity: usize,
    },
    /// An occurrence referenced an attribute not declared on the phylum at
    /// that position.
    AttrNotOnPhylum {
        /// Production name.
        production: String,
        /// Attribute name.
        attr: String,
        /// Phylum name at the referenced position.
        phylum: String,
    },
    /// An output occurrence is defined by two semantic rules.
    DuplicateRule {
        /// Production name.
        production: String,
        /// Display form of the doubly-defined occurrence.
        target: String,
    },
    /// An output occurrence has no defining semantic rule.
    MissingRule {
        /// Production name.
        production: String,
        /// Display form of the undefined occurrence.
        target: String,
    },
    /// A semantic rule's target is an *input* occurrence (inherited on the
    /// LHS or synthesized on a RHS symbol), which a production must not
    /// define.
    RuleDefinesInput {
        /// Production name.
        production: String,
        /// Display form of the offending target.
        target: String,
    },
    /// A function was applied to the wrong number of arguments.
    ArityMismatch {
        /// Function name.
        function: String,
        /// Declared arity.
        expected: usize,
        /// Number of arguments supplied.
        found: usize,
    },
    /// A phylum has no production, so no finite tree can derive from it.
    NoProduction {
        /// Phylum name.
        phylum: String,
    },
    /// The grammar has no phyla at all.
    Empty,
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::DuplicateName { kind, name } => {
                write!(f, "duplicate {kind} name `{name}`")
            }
            GrammarError::UnknownName { kind, name } => write!(f, "unknown {kind} `{name}`"),
            GrammarError::PositionOutOfRange {
                production,
                pos,
                arity,
            } => write!(
                f,
                "position {pos} out of range in production `{production}` of arity {arity}"
            ),
            GrammarError::AttrNotOnPhylum {
                production,
                attr,
                phylum,
            } => write!(
                f,
                "attribute `{attr}` is not declared on phylum `{phylum}` (production `{production}`)"
            ),
            GrammarError::DuplicateRule { production, target } => write!(
                f,
                "occurrence `{target}` defined twice in production `{production}`"
            ),
            GrammarError::MissingRule { production, target } => write!(
                f,
                "occurrence `{target}` has no defining rule in production `{production}`"
            ),
            GrammarError::RuleDefinesInput { production, target } => write!(
                f,
                "rule in production `{production}` defines input occurrence `{target}`"
            ),
            GrammarError::ArityMismatch {
                function,
                expected,
                found,
            } => write!(
                f,
                "function `{function}` expects {expected} argument(s), got {found}"
            ),
            GrammarError::NoProduction { phylum } => {
                write!(f, "phylum `{phylum}` has no production")
            }
            GrammarError::Empty => write!(f, "grammar declares no phyla"),
        }
    }
}

impl Error for GrammarError {}

/// An error raised while building or editing an attributed tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// A node was given the wrong number of children.
    ChildCount {
        /// Production name.
        production: String,
        /// Expected arity.
        expected: usize,
        /// Supplied child count.
        found: usize,
    },
    /// A child's phylum does not match the production's RHS.
    ChildPhylum {
        /// Production name.
        production: String,
        /// 1-based child position.
        pos: usize,
        /// Expected phylum name.
        expected: String,
        /// Found phylum name.
        found: String,
    },
    /// A subtree replacement used a subtree of the wrong phylum.
    ReplacePhylum {
        /// Expected phylum name.
        expected: String,
        /// Found phylum name.
        found: String,
    },
    /// The root of the tree does not belong to the grammar's root phylum.
    RootPhylum {
        /// Expected phylum name.
        expected: String,
        /// Found phylum name.
        found: String,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::ChildCount {
                production,
                expected,
                found,
            } => write!(
                f,
                "production `{production}` expects {expected} child(ren), got {found}"
            ),
            TreeError::ChildPhylum {
                production,
                pos,
                expected,
                found,
            } => write!(
                f,
                "child {pos} of `{production}` must derive `{expected}`, got `{found}`"
            ),
            TreeError::ReplacePhylum { expected, found } => write!(
                f,
                "replacement subtree derives `{found}`, expected `{expected}`"
            ),
            TreeError::RootPhylum { expected, found } => {
                write!(f, "tree root derives `{found}`, expected `{expected}`")
            }
        }
    }
}

impl Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = GrammarError::MissingRule {
            production: "pair".into(),
            target: "1.scale".into(),
        };
        assert_eq!(
            e.to_string(),
            "occurrence `1.scale` has no defining rule in production `pair`"
        );
        let t = TreeError::ChildCount {
            production: "pair".into(),
            expected: 2,
            found: 1,
        };
        assert!(t.to_string().contains("expects 2"));
    }
}
