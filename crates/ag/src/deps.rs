//! Production dependency graphs `D(p)`.
//!
//! For a production `p`, the local dependency graph has one node per
//! attribute occurrence (and per production-local attribute) and an edge
//! `u → v` whenever the semantic rule defining `v` reads `u`.

use std::collections::HashMap;

use crate::grammar::Grammar;
use crate::ids::{ONode, ProductionId};

/// The local dependency graph of one production.
///
/// Node identity is the [`ONode`]; dense indices are assigned in
/// [`Grammar::occurrences`] order followed by locals, so analyses can build
/// parallel side tables.
#[derive(Clone, Debug)]
pub struct DepGraph {
    production: ProductionId,
    nodes: Vec<ONode>,
    index: HashMap<ONode, usize>,
    /// Adjacency: `succs[u]` lists v with `u → v`.
    succs: Vec<Vec<usize>>,
}

impl DepGraph {
    /// Builds `D(p)` for production `p` of `grammar`.
    pub fn of(grammar: &Grammar, p: ProductionId) -> DepGraph {
        let mut nodes: Vec<ONode> = grammar
            .occurrences(p)
            .into_iter()
            .map(ONode::Attr)
            .collect();
        let prod = grammar.production(p);
        for i in 0..prod.locals().len() as u32 {
            nodes.push(ONode::Local(crate::ids::LocalId::from_raw(i)));
        }
        let index: HashMap<ONode, usize> = nodes
            .iter()
            .copied()
            .enumerate()
            .map(|(i, n)| (n, i))
            .collect();
        let mut succs = vec![Vec::new(); nodes.len()];
        for rule in prod.rules() {
            let t = index[&rule.target()];
            for src in rule.read_nodes() {
                let s = index[&src];
                if !succs[s].contains(&t) {
                    succs[s].push(t);
                }
            }
        }
        DepGraph {
            production: p,
            nodes,
            index,
            succs,
        }
    }

    /// The production this graph belongs to.
    pub fn production(&self) -> ProductionId {
        self.production
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the production has no occurrences at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node at dense index `i`.
    pub fn node(&self, i: usize) -> ONode {
        self.nodes[i]
    }

    /// All nodes in dense-index order.
    pub fn nodes(&self) -> &[ONode] {
        &self.nodes
    }

    /// The dense index of `node`, if present.
    pub fn index_of(&self, node: ONode) -> Option<usize> {
        self.index.get(&node).copied()
    }

    /// Successors of dense index `i`.
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// All edges as `(from, to)` dense-index pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v)))
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GrammarBuilder;
    use crate::ids::Occ;
    use crate::value::Value;

    use super::*;

    #[test]
    fn dep_graph_of_copy_chain() {
        // root : S ::= A with S.v := A.w, A.i := 1 ; leaf : A with A.w := A.i
        let mut g = GrammarBuilder::new("tiny");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let v = g.syn(s, "v");
        let w = g.syn(a, "w");
        let i = g.inh(a, "i");
        let root = g.production("root", s, &[a]);
        let leaf = g.production("leaf", a, &[]);
        g.copy(root, Occ::lhs(v), Occ::new(1, w));
        g.constant(root, Occ::new(1, i), Value::Int(1));
        g.copy(leaf, Occ::lhs(w), Occ::lhs(i));
        let g = g.finish().unwrap();

        let d = DepGraph::of(&g, root);
        assert_eq!(d.len(), 3); // S.v, A.w, A.i
        assert_eq!(d.edge_count(), 1); // A.w -> S.v
        let (from, to) = d.edges().next().unwrap();
        assert_eq!(d.node(from), Occ::new(1, w).into());
        assert_eq!(d.node(to), Occ::lhs(v).into());

        let dl = DepGraph::of(&g, leaf);
        assert_eq!(dl.len(), 2);
        assert_eq!(dl.edge_count(), 1); // A.i -> A.w
    }

    #[test]
    fn duplicate_reads_create_one_edge() {
        let mut g = GrammarBuilder::new("dup");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let v = g.syn(s, "v");
        let w = g.syn(a, "w");
        g.func("add", 2, |x| Value::Int(x[0].as_int() + x[1].as_int()));
        let root = g.production("root", s, &[a]);
        let leaf = g.production("leaf", a, &[]);
        g.call(
            root,
            Occ::lhs(v),
            "add",
            [Occ::new(1, w).into(), Occ::new(1, w).into()],
        );
        g.constant(leaf, Occ::lhs(w), Value::Int(2));
        let g = g.finish().unwrap();
        let d = DepGraph::of(&g, root);
        assert_eq!(d.edge_count(), 1);
    }
}
