//! Incremental construction and validation of [`Grammar`]s.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::GrammarError;
use crate::grammar::{
    Arg, AttrInfo, AttrKind, Grammar, LocalInfo, Phylum, Production, RuleBody, SemError, SemFn,
    SemRule,
};
use crate::ids::{AttrId, FuncId, LocalId, ONode, PhylumId, ProductionId};
use crate::value::Value;

/// Builds a [`Grammar`] step by step, then validates it with
/// [`finish`](GrammarBuilder::finish).
///
/// The builder performs cheap checks eagerly (duplicate names) and records
/// everything else for the final well-definedness pass, which mirrors what
/// the paper's `asx` processor checks for attributed-abstract-syntax
/// specifications.
///
/// # Examples
///
/// ```
/// use fnc2_ag::{GrammarBuilder, Occ, Value};
///
/// # fn main() -> Result<(), fnc2_ag::GrammarError> {
/// let mut g = GrammarBuilder::new("count");
/// let s = g.phylum("S");
/// let n = g.syn(s, "n");
/// let leaf = g.production("leaf", s, &[]);
/// let node = g.production("node", s, &[s]);
/// g.constant(leaf, Occ::lhs(n), Value::Int(0));
/// g.func("succ", 1, |a| Value::Int(a[0].as_int() + 1));
/// g.call(node, Occ::lhs(n), "succ", [Occ::new(1, n).into()]);
/// let grammar = g.finish()?;
/// assert_eq!(grammar.production_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GrammarBuilder {
    name: String,
    phyla: Vec<Phylum>,
    attrs: Vec<AttrInfo>,
    productions: Vec<Production>,
    functions: Vec<SemFn>,
    func_names: HashMap<String, FuncId>,
    root: Option<PhylumId>,
    errors: Vec<GrammarError>,
}

impl GrammarBuilder {
    /// Starts a new grammar with the given name. The first phylum declared
    /// becomes the root unless [`set_root`](Self::set_root) overrides it.
    pub fn new(name: impl Into<String>) -> Self {
        GrammarBuilder {
            name: name.into(),
            phyla: Vec::new(),
            attrs: Vec::new(),
            productions: Vec::new(),
            functions: Vec::new(),
            func_names: HashMap::new(),
            root: None,
            errors: Vec::new(),
        }
    }

    /// Declares a phylum (non-terminal).
    pub fn phylum(&mut self, name: impl Into<String>) -> PhylumId {
        let name = name.into();
        if self.phyla.iter().any(|p| p.name == name) {
            self.errors.push(GrammarError::DuplicateName {
                kind: "phylum",
                name: name.clone(),
            });
        }
        let id = PhylumId::from_raw(self.phyla.len() as u32);
        self.phyla.push(Phylum {
            name,
            attrs: Vec::new(),
            productions: Vec::new(),
        });
        if self.root.is_none() {
            self.root = Some(id);
        }
        id
    }

    /// Overrides the root phylum (default: the first declared).
    pub fn set_root(&mut self, root: PhylumId) {
        self.root = Some(root);
    }

    fn declare_attr(&mut self, phylum: PhylumId, name: String, kind: AttrKind) -> AttrId {
        let ph = &self.phyla[phylum.index()];
        if ph.attrs.iter().any(|&a| self.attrs[a.index()].name == name) {
            self.errors.push(GrammarError::DuplicateName {
                kind: "attribute",
                name: format!("{}.{}", ph.name, name),
            });
        }
        let id = AttrId::from_raw(self.attrs.len() as u32);
        let offset = self.phyla[phylum.index()].attrs.len();
        self.attrs.push(AttrInfo {
            name,
            kind,
            phylum,
            offset,
        });
        self.phyla[phylum.index()].attrs.push(id);
        id
    }

    /// Declares a synthesized attribute on `phylum`.
    pub fn syn(&mut self, phylum: PhylumId, name: impl Into<String>) -> AttrId {
        self.declare_attr(phylum, name.into(), AttrKind::Synthesized)
    }

    /// Declares an inherited attribute on `phylum`.
    pub fn inh(&mut self, phylum: PhylumId, name: impl Into<String>) -> AttrId {
        self.declare_attr(phylum, name.into(), AttrKind::Inherited)
    }

    /// Declares a production `name : lhs ::= rhs…`.
    pub fn production(
        &mut self,
        name: impl Into<String>,
        lhs: PhylumId,
        rhs: &[PhylumId],
    ) -> ProductionId {
        let name = name.into();
        if self.productions.iter().any(|p| p.name == name) {
            self.errors.push(GrammarError::DuplicateName {
                kind: "production",
                name: name.clone(),
            });
        }
        let id = ProductionId::from_raw(self.productions.len() as u32);
        self.productions.push(Production {
            name,
            lhs,
            rhs: rhs.to_vec(),
            rules: Vec::new(),
            locals: Vec::new(),
        });
        self.phyla[lhs.index()].productions.push(id);
        id
    }

    /// Declares a production-local attribute.
    pub fn local(&mut self, p: ProductionId, name: impl Into<String>) -> LocalId {
        let prod = &mut self.productions[p.index()];
        let id = LocalId::from_raw(prod.locals.len() as u32);
        prod.locals.push(LocalInfo { name: name.into() });
        id
    }

    /// Registers a semantic function with unit cost.
    pub fn func(
        &mut self,
        name: impl Into<String>,
        arity: usize,
        f: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
    ) -> FuncId {
        self.func_with_cost(name, arity, 1, f)
    }

    /// Registers a semantic function with an abstract evaluation cost
    /// (used only by workload models in the benches).
    pub fn func_with_cost(
        &mut self,
        name: impl Into<String>,
        arity: usize,
        cost: u32,
        f: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
    ) -> FuncId {
        self.func_fallible_with_cost(name, arity, cost, move |args| Ok(f(args)))
    }

    /// Registers a semantic function that may fail at runtime (e.g. the
    /// OLGA `error` builtin), with unit cost.
    pub fn func_fallible(
        &mut self,
        name: impl Into<String>,
        arity: usize,
        f: impl Fn(&[Value]) -> Result<Value, SemError> + Send + Sync + 'static,
    ) -> FuncId {
        self.func_fallible_with_cost(name, arity, 1, f)
    }

    /// Registers a fallible semantic function with an abstract evaluation
    /// cost.
    pub fn func_fallible_with_cost(
        &mut self,
        name: impl Into<String>,
        arity: usize,
        cost: u32,
        f: impl Fn(&[Value]) -> Result<Value, SemError> + Send + Sync + 'static,
    ) -> FuncId {
        let name = name.into();
        if self.func_names.contains_key(&name) {
            self.errors.push(GrammarError::DuplicateName {
                kind: "function",
                name: name.clone(),
            });
        }
        let id = FuncId::from_raw(self.functions.len() as u32);
        self.func_names.insert(name.clone(), id);
        self.functions.push(SemFn {
            name,
            arity,
            f: Arc::new(f),
            cost,
        });
        id
    }

    /// Adds the rule `target := source` (a copy rule).
    pub fn copy(&mut self, p: ProductionId, target: impl Into<ONode>, source: impl Into<Arg>) {
        self.productions[p.index()].rules.push(SemRule {
            target: target.into(),
            body: RuleBody::Copy(source.into()),
        });
    }

    /// Adds the rule `target := value` (a constant rule, modeled as a copy
    /// of an embedded constant).
    pub fn constant(&mut self, p: ProductionId, target: impl Into<ONode>, value: Value) {
        self.productions[p.index()].rules.push(SemRule {
            target: target.into(),
            body: RuleBody::Copy(Arg::Const(value)),
        });
    }

    /// Adds the rule `target := func(args…)`, resolving `func` by name.
    /// Unknown functions are reported by [`finish`](Self::finish).
    pub fn call(
        &mut self,
        p: ProductionId,
        target: impl Into<ONode>,
        func: &str,
        args: impl IntoIterator<Item = Arg>,
    ) {
        let args: Vec<Arg> = args.into_iter().collect();
        match self.func_names.get(func) {
            Some(&id) => {
                let arity = self.functions[id.index()].arity;
                if arity != args.len() {
                    self.errors.push(GrammarError::ArityMismatch {
                        function: func.to_string(),
                        expected: arity,
                        found: args.len(),
                    });
                }
                self.productions[p.index()].rules.push(SemRule {
                    target: target.into(),
                    body: RuleBody::Call { func: id, args },
                });
            }
            None => self.errors.push(GrammarError::UnknownName {
                kind: "function",
                name: func.to_string(),
            }),
        }
    }

    /// Validates everything and produces the immutable [`Grammar`].
    ///
    /// # Errors
    ///
    /// Returns the first error in this order: eager errors (duplicates,
    /// unknown functions, arity), then per-production checks: occurrence
    /// positions in range, attributes on the right phyla, no rule defining
    /// an input occurrence, every output occurrence (including locals)
    /// defined exactly once, every phylum productive. Use
    /// [`finish_verbose`](Self::finish_verbose) to get *every* violation
    /// instead of the first.
    pub fn finish(self) -> Result<Grammar, GrammarError> {
        self.finish_verbose().map_err(|mut errs| errs.remove(0))
    }

    /// Like [`finish`](Self::finish), but reports **all** well-definedness
    /// violations instead of collapsing them to the first.
    ///
    /// The order is deterministic: eager errors in declaration order, then
    /// the per-production checks in production order, then unproductive
    /// phyla in phylum order.
    ///
    /// # Errors
    ///
    /// The non-empty list of every violation found.
    pub fn finish_verbose(self) -> Result<Grammar, Vec<GrammarError>> {
        let mut errors = self.errors;
        if self.phyla.is_empty() {
            errors.push(GrammarError::Empty);
            return Err(errors);
        }
        let g = Grammar {
            name: self.name,
            phyla: self.phyla,
            attrs: self.attrs,
            productions: self.productions,
            functions: self.functions,
            root: self.root.expect("non-empty grammar has a root"),
        };
        validate(&g, &mut errors);
        if errors.is_empty() {
            Ok(g)
        } else {
            Err(errors)
        }
    }
}

/// Appends every well-definedness violation of `g` to `errors`, in
/// deterministic production-then-phylum order.
fn validate(g: &Grammar, errors: &mut Vec<GrammarError>) {
    for pid in g.productions() {
        let prod = g.production(pid);
        let arity = prod.arity();
        let check_node = |node: ONode, errors: &mut Vec<GrammarError>| match node {
            ONode::Attr(o) => {
                if o.pos as usize > arity {
                    errors.push(GrammarError::PositionOutOfRange {
                        production: prod.name().to_string(),
                        pos: o.pos,
                        arity,
                    });
                    return;
                }
                let ph = prod.phylum_at(o.pos);
                if g.attr(o.attr).phylum() != ph {
                    errors.push(GrammarError::AttrNotOnPhylum {
                        production: prod.name().to_string(),
                        attr: g.attr(o.attr).name().to_string(),
                        phylum: g.phylum(ph).name().to_string(),
                    });
                }
            }
            ONode::Local(l) => {
                if l.index() >= prod.locals().len() {
                    errors.push(GrammarError::UnknownName {
                        kind: "local attribute",
                        name: format!("{l}"),
                    });
                }
            }
        };
        for rule in prod.rules() {
            check_node(rule.target(), errors);
            for n in rule.read_nodes() {
                check_node(n, errors);
            }
            if let ONode::Attr(o) = rule.target() {
                let placed =
                    o.pos as usize <= arity && g.attr(o.attr).phylum() == prod.phylum_at(o.pos);
                if placed && !g.is_output(pid, o) {
                    errors.push(GrammarError::RuleDefinesInput {
                        production: prod.name().to_string(),
                        target: g.occ_name(pid, rule.target()),
                    });
                }
            }
        }
        // Exactly-once definition of each output occurrence.
        let outputs = g.outputs(pid);
        for &out in &outputs {
            let n = prod.rules().iter().filter(|r| r.target() == out).count();
            if n == 0 {
                errors.push(GrammarError::MissingRule {
                    production: prod.name().to_string(),
                    target: g.occ_name(pid, out),
                });
            }
            if n > 1 {
                errors.push(GrammarError::DuplicateRule {
                    production: prod.name().to_string(),
                    target: g.occ_name(pid, out),
                });
            }
        }
        // No rule may target something that is not an output (locals are
        // outputs; inputs were rejected above, so only count rules whose
        // target is not in `outputs` at all — e.g. a stray local id).
        for rule in prod.rules() {
            // Skip targets the earlier checks already reported.
            let already_flagged = match rule.target() {
                ONode::Attr(o) => {
                    o.pos as usize > arity
                        || g.attr(o.attr).phylum() != prod.phylum_at(o.pos)
                        || !g.is_output(pid, o)
                }
                ONode::Local(l) => l.index() >= prod.locals().len(),
            };
            if !already_flagged && !outputs.contains(&rule.target()) {
                errors.push(GrammarError::RuleDefinesInput {
                    production: prod.name().to_string(),
                    target: g.occ_name(pid, rule.target()),
                });
            }
        }
    }
    for ph in g.phyla() {
        if g.phylum(ph).productions().is_empty() {
            errors.push(GrammarError::NoProduction {
                phylum: g.phylum(ph).name().to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::ids::Occ;

    use super::*;

    #[test]
    fn missing_rule_is_rejected() {
        let mut g = GrammarBuilder::new("bad");
        let s = g.phylum("S");
        let _v = g.syn(s, "v");
        g.production("leaf", s, &[]);
        match g.finish() {
            Err(GrammarError::MissingRule { target, .. }) => assert_eq!(target, "S.v"),
            other => panic!("expected MissingRule, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_rule_is_rejected() {
        let mut g = GrammarBuilder::new("bad");
        let s = g.phylum("S");
        let v = g.syn(s, "v");
        let leaf = g.production("leaf", s, &[]);
        g.constant(leaf, Occ::lhs(v), Value::Int(0));
        g.constant(leaf, Occ::lhs(v), Value::Int(1));
        assert!(matches!(
            g.finish(),
            Err(GrammarError::DuplicateRule { .. })
        ));
    }

    #[test]
    fn defining_input_is_rejected() {
        let mut g = GrammarBuilder::new("bad");
        let s = g.phylum("S");
        let i = g.inh(s, "i");
        let leaf = g.production("leaf", s, &[]);
        // Defining the LHS *inherited* attribute is illegal.
        g.constant(leaf, Occ::lhs(i), Value::Int(0));
        assert!(matches!(
            g.finish(),
            Err(GrammarError::RuleDefinesInput { .. })
        ));
    }

    #[test]
    fn unknown_function_is_rejected() {
        let mut g = GrammarBuilder::new("bad");
        let s = g.phylum("S");
        let v = g.syn(s, "v");
        let leaf = g.production("leaf", s, &[]);
        g.call(leaf, Occ::lhs(v), "nope", []);
        assert!(matches!(g.finish(), Err(GrammarError::UnknownName { .. })));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut g = GrammarBuilder::new("bad");
        let s = g.phylum("S");
        let v = g.syn(s, "v");
        let leaf = g.production("leaf", s, &[]);
        g.func("two", 2, |a| a[0].clone());
        g.call(leaf, Occ::lhs(v), "two", []);
        assert!(matches!(
            g.finish(),
            Err(GrammarError::ArityMismatch {
                expected: 2,
                found: 0,
                ..
            })
        ));
    }

    #[test]
    fn unproductive_phylum_is_rejected() {
        let mut g = GrammarBuilder::new("bad");
        let _s = g.phylum("S");
        assert!(matches!(g.finish(), Err(GrammarError::NoProduction { .. })));
    }

    #[test]
    fn empty_grammar_is_rejected() {
        let g = GrammarBuilder::new("empty");
        assert!(matches!(g.finish(), Err(GrammarError::Empty)));
    }

    #[test]
    fn attr_on_wrong_phylum_is_rejected() {
        let mut g = GrammarBuilder::new("bad");
        let s = g.phylum("S");
        let t = g.phylum("T");
        let v = g.syn(s, "v");
        let w = g.syn(t, "w");
        let leaf_t = g.production("leaft", t, &[]);
        g.constant(leaf_t, Occ::lhs(w), Value::Int(0));
        let leaf = g.production("leaf", s, &[]);
        // `w` belongs to T, not S.
        g.copy(leaf, Occ::lhs(v), Occ::lhs(w));
        assert!(matches!(
            g.finish(),
            Err(GrammarError::AttrNotOnPhylum { .. })
        ));
    }

    #[test]
    fn locals_must_be_defined() {
        let mut g = GrammarBuilder::new("bad");
        let s = g.phylum("S");
        let v = g.syn(s, "v");
        let leaf = g.production("leaf", s, &[]);
        let l = g.local(leaf, "tmp");
        g.copy(leaf, Occ::lhs(v), ONode::Local(l));
        assert!(matches!(g.finish(), Err(GrammarError::MissingRule { .. })));
    }

    /// `finish` historically collapsed multiple violations into the first;
    /// `finish_verbose` must surface every one, deterministically ordered.
    #[test]
    fn finish_verbose_reports_every_violation() {
        let mut g = GrammarBuilder::new("bad");
        let s = g.phylum("S");
        let t = g.phylum("T");
        let _v = g.syn(s, "v"); // never defined in `leaf`
        let _w = g.syn(t, "w"); // never defined in `leaft`
        g.production("leaf", s, &[]);
        g.production("leaft", t, &[]);
        let errs = g.finish_verbose().unwrap_err();
        assert_eq!(errs.len(), 2, "{errs:?}");
        let targets: Vec<String> = errs
            .iter()
            .map(|e| match e {
                GrammarError::MissingRule { target, .. } => target.clone(),
                other => panic!("expected MissingRule, got {other:?}"),
            })
            .collect();
        assert_eq!(targets, vec!["S.v", "T.w"]);
    }

    /// `finish` still returns exactly the first of the verbose errors.
    #[test]
    fn finish_takes_first_verbose_error() {
        let build = || {
            let mut g = GrammarBuilder::new("bad");
            let s = g.phylum("S");
            let _v = g.syn(s, "v");
            let _u = g.syn(s, "u");
            g.production("leaf", s, &[]);
            g
        };
        let first = build().finish().unwrap_err();
        let all = build().finish_verbose().unwrap_err();
        assert_eq!(all.len(), 2);
        assert_eq!(format!("{first:?}"), format!("{:?}", all[0]));
    }

    /// A rule on a wrong-phylum attribute yields one error, not a cascade.
    #[test]
    fn wrong_phylum_target_is_reported_once() {
        let mut g = GrammarBuilder::new("bad");
        let s = g.phylum("S");
        let t = g.phylum("T");
        let v = g.syn(s, "v");
        let w = g.syn(t, "w");
        let leaf_t = g.production("leaft", t, &[]);
        g.constant(leaf_t, Occ::lhs(w), Value::Int(0));
        let leaf = g.production("leaf", s, &[]);
        g.constant(leaf, Occ::lhs(v), Value::Int(1));
        // `w` belongs to T, not S: exactly one AttrNotOnPhylum.
        g.constant(leaf, Occ::lhs(w), Value::Int(2));
        let errs = g.finish_verbose().unwrap_err();
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(matches!(errs[0], GrammarError::AttrNotOnPhylum { .. }));
    }

    #[test]
    fn valid_grammar_with_local() {
        let mut g = GrammarBuilder::new("ok");
        let s = g.phylum("S");
        let v = g.syn(s, "v");
        let leaf = g.production("leaf", s, &[]);
        let l = g.local(leaf, "tmp");
        g.constant(leaf, ONode::Local(l), Value::Int(41));
        g.func("succ", 1, |a| Value::Int(a[0].as_int() + 1));
        g.call(leaf, Occ::lhs(v), "succ", [Arg::Node(ONode::Local(l))]);
        let g = g.finish().unwrap();
        assert_eq!(g.rule_count(), 2);
        assert_eq!(
            g.production(g.production_by_name("leaf").unwrap())
                .locals()
                .len(),
            1
        );
    }
}
