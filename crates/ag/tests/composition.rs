//! Tests for the tree-to-tree composition glue (`term_to_tree`) and
//! grammar/tree API corners not covered by the unit tests.

use fnc2_ag::{term_to_tree, GrammarBuilder, Occ, Term, TreeError, Value};

fn core_grammar() -> fnc2_ag::Grammar {
    let mut g = GrammarBuilder::new("core");
    let c = g.phylum("C");
    let v = g.syn(c, "v");
    g.func("add", 2, |a| Value::Int(a[0].as_int() + a[1].as_int()));
    let lit = g.production("clit", c, &[]);
    g.copy(lit, Occ::lhs(v), fnc2_ag::Arg::Token);
    let add = g.production("cadd", c, &[c, c]);
    g.call(
        add,
        Occ::lhs(v),
        "add",
        [Occ::new(1, v).into(), Occ::new(2, v).into()],
    );
    g.finish().unwrap()
}

#[test]
fn term_to_tree_roundtrip() {
    let g = core_grammar();
    let term = Term {
        op: "cadd".into(),
        children: vec![
            Value::term("clit", [Value::Int(1)]),
            Value::term(
                "cadd",
                [
                    Value::term("clit", [Value::Int(2)]),
                    Value::term("clit", [Value::Int(3)]),
                ],
            ),
        ],
    };
    let tree = term_to_tree(&g, &term).unwrap();
    assert_eq!(tree.size(), 5);
    // Tokens landed on the leaves.
    let tokens: Vec<i64> = tree
        .preorder()
        .filter_map(|(n, _)| tree.node(n).token().map(Value::as_int))
        .collect();
    assert_eq!(tokens, vec![1, 2, 3]);
    // And the tree evaluates.
    let ev = fnc2_visit::DynamicEvaluator::new(&g);
    let (vals, _) = ev.evaluate(&tree, &Default::default()).unwrap();
    let c = g.phylum_by_name("C").unwrap();
    let v = g.attr_by_name(c, "v").unwrap();
    assert_eq!(vals.get(&g, tree.root(), v), Some(&Value::Int(6)));
}

#[test]
fn term_to_tree_rejects_unknown_operator() {
    let g = core_grammar();
    let term = Term {
        op: "nosuch".into(),
        children: vec![],
    };
    assert!(term_to_tree(&g, &term).is_err());
}

#[test]
fn term_to_tree_rejects_wrong_arity() {
    let g = core_grammar();
    let term = Term {
        op: "cadd".into(),
        children: vec![Value::term("clit", [Value::Int(1)])],
    };
    assert!(matches!(
        term_to_tree(&g, &term),
        Err(TreeError::ChildCount {
            expected: 2,
            found: 1,
            ..
        })
    ));
}

#[test]
fn grammar_display_and_occ_names_with_repeats() {
    let g = core_grammar();
    let add = g.production_by_name("cadd").unwrap();
    let c = g.phylum_by_name("C").unwrap();
    let v = g.attr_by_name(c, "v").unwrap();
    // Repeated phylum occurrences get $k names including the LHS.
    assert_eq!(g.occ_name(add, fnc2_ag::ONode::Attr(Occ::lhs(v))), "C$1.v");
    assert_eq!(
        g.occ_name(add, fnc2_ag::ONode::Attr(Occ::new(2, v))),
        "C$3.v"
    );
}

#[test]
fn arena_len_tracks_detached_nodes() {
    let g = core_grammar();
    let term = Term {
        op: "clit".into(),
        children: vec![Value::Int(9)],
    };
    let mut tree = term_to_tree(&g, &term).unwrap();
    let before_arena = tree.arena_len();
    let replacement = term_to_tree(
        &g,
        &Term {
            op: "cadd".into(),
            children: vec![
                Value::term("clit", [Value::Int(1)]),
                Value::term("clit", [Value::Int(2)]),
            ],
        },
    )
    .unwrap();
    tree.replace_subtree(&g, tree.root(), &replacement).unwrap();
    assert_eq!(tree.size(), 3, "live nodes");
    assert_eq!(tree.arena_len(), before_arena + 3, "old root detached");
}
