//! # fnc2 — the FNC-2 attribute grammar system, end to end
//!
//! The facade crate mirroring the paper's Figure 2: the OLGA front-end,
//! the evaluator generator (Figure 3's cascade: SNC test → DNC test →
//! OAG(k) test → SNC-to-l-ordered transformation → visit-sequence
//! generation → space optimization), the generated evaluators (plain,
//! space-optimized, demand-driven, incremental), and the translators
//! (to C and to Lisp).
//!
//! ```
//! use fnc2::Pipeline;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let compiled = Pipeline::new().compile_olga(r#"
//!     attribute grammar count;
//!       phylum S;
//!       operator leaf : S ::= ;
//!       operator node : S ::= S;
//!       synthesized n : int of S;
//!       for leaf { S.n := 0; }
//!       for node { S$1.n := S$2.n + 1; }
//!     end
//! "#)?;
//! assert_eq!(compiled.report.class.to_string(), "OAG(0)");
//!
//! let mut tb = fnc2::ag::TreeBuilder::new(&compiled.grammar);
//! let a = tb.op("leaf", &[])?;
//! let b = tb.op("node", &[a])?;
//! let tree = tb.finish_root(b)?;
//! let (values, _) = compiled.evaluate(&tree, &Default::default())?;
//! let s = compiled.grammar.phylum_by_name("S").unwrap();
//! let n = compiled.grammar.attr_by_name(s, "n").unwrap();
//! assert_eq!(values.get(&compiled.grammar, tree.root(), n),
//!            Some(&fnc2::ag::Value::Int(1)));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use fnc2_ag::{
    AttrId, AttrValues, Grammar, NodeId, PhylumId, ProductionId, Tree, TreeBuilder, Value,
};
use fnc2_analysis::{classify_recorded, AgClass, Classification, Inclusion};
use fnc2_guard::EvalBudget;
use fnc2_obs::{Json, Key, Obs, Recorder, Resolver};
use fnc2_space::{analyze_space, FlatProgram, Lifetimes, ObjectIndex, SpacePlan};
use fnc2_visit::{build_visit_seqs, EvalError, EvalStats, Evaluator, RootInputs, VisitSeqs};

pub use fnc2_ag as ag;
pub use fnc2_analysis as analysis;
pub use fnc2_codegen as codegen;
pub use fnc2_fuzz as fuzz;
pub use fnc2_gfa as gfa;
pub use fnc2_guard as guard;
pub use fnc2_incremental as incremental;
pub use fnc2_lint as lint;
pub use fnc2_obs as obs;
pub use fnc2_olga as olga;
pub use fnc2_par as par;
pub use fnc2_space as space;
pub use fnc2_syntax as syntax;
pub use fnc2_tables as tables;
pub use fnc2_tools as tools;
pub use fnc2_vfs as vfs;
pub use fnc2_visit as visit;

pub mod artifact;

/// Pipeline configuration (the knobs of the paper's §3.1).
#[derive(Clone, Debug)]
pub struct Pipeline {
    /// Largest `k` tried by the OAG(k) cascade.
    pub max_oag_k: usize,
    /// Partition-reuse strategy for the transformation.
    pub inclusion: Inclusion,
    /// Whether to run the space optimizer.
    pub optimize_space: bool,
    /// Whether the generated evaluators hash-cons the values they build
    /// (the `--no-intern` escape hatch turns this off).
    pub intern: bool,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline {
            max_oag_k: 1,
            inclusion: Inclusion::Long,
            optimize_space: true,
            intern: true,
        }
    }
}

/// Per-phase wall-clock times of one generator run (the Table 1 "time"
/// column, split by phase).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Class tests + transformation.
    pub analysis: Duration,
    /// Visit-sequence generation.
    pub visit_sequences: Duration,
    /// Space optimization.
    pub space: Duration,
    /// Grammar-level lint pass.
    pub lint: Duration,
}

impl PhaseTimes {
    /// Total generator time.
    pub fn total(&self) -> Duration {
        self.analysis + self.visit_sequences + self.space + self.lint
    }
}

/// The generator's summary for one AG (one Table 1 row).
#[derive(Clone, Debug)]
pub struct Report {
    /// Smallest class found.
    pub class: AgClass,
    /// Phyla count.
    pub phyla: usize,
    /// Operator (production) count.
    pub operators: usize,
    /// Attribute occurrences (sum over phyla of attached attributes).
    pub occurrences: usize,
    /// Semantic rule count.
    pub rules: usize,
    /// Transformation statistics (partitions per phylum, plans).
    pub transform: Option<fnc2_analysis::TransformStats>,
    /// Space statistics (storage classes, packing, copy elimination).
    pub space: Option<fnc2_space::SpaceStats>,
    /// Per-phase times.
    pub times: PhaseTimes,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "class {}; {} phyla, {} operators, {} occurrences, {} rules",
            self.class, self.phyla, self.operators, self.occurrences, self.rules
        )?;
        if let Some(t) = &self.transform {
            writeln!(
                f,
                "partitions/phylum avg {:.2} max {}; {} visit-sequences",
                t.avg_partitions(),
                t.max_partitions(),
                t.plans
            )?;
        }
        if let Some(s) = &self.space {
            writeln!(
                f,
                "storage: {:.0}% vars, {:.0}% stacks, {:.0}% nodes; {} vars, {} stacks; copies eliminated {:.0}% (of possible {:.0}%)",
                s.pct_variables(),
                s.pct_stacks(),
                s.pct_node(),
                s.variables_after,
                s.stacks_after,
                s.pct_eliminated_of_copies(),
                s.pct_eliminated_of_possible()
            )?;
        }
        write!(f, "generator time {:?}", self.times.total())
    }
}

/// Errors of the end-to-end pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// The OLGA front-end rejected the source.
    Olga(fnc2_olga::OlgaError),
    /// The AG is not strongly non-circular; the payload holds the
    /// circularity trace (paper §3.1's interactive trace, rendered).
    NotSnc(String),
    /// Internal transformation failure (cannot happen for SNC grammars).
    Transform(fnc2_analysis::TransformError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Olga(e) => write!(f, "{e}"),
            PipelineError::NotSnc(trace) => {
                write!(f, "grammar is not strongly non-circular:\n{trace}")
            }
            PipelineError::Transform(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<fnc2_olga::OlgaError> for PipelineError {
    fn from(e: fnc2_olga::OlgaError) -> Self {
        PipelineError::Olga(e)
    }
}

/// A fully generated evaluator with all its artifacts.
#[derive(Debug)]
pub struct Compiled {
    /// The (abstract) grammar.
    pub grammar: Grammar,
    /// The classification, including IO/OI/DS relations.
    pub classification: Classification,
    /// The visit sequences.
    pub seqs: VisitSeqs,
    /// The flattened program (when space optimization ran).
    pub flat: Option<FlatProgram>,
    /// Object index (when space optimization ran).
    pub objects: Option<ObjectIndex>,
    /// Lifetimes (when space optimization ran).
    pub lifetimes: Option<Lifetimes>,
    /// The storage plan (when space optimization ran).
    pub space_plan: Option<SpacePlan>,
    /// The lint findings (grammar-level static analyses; see
    /// [`fnc2_lint`]). Loaded artifacts replay these from the cache.
    pub lint: fnc2_lint::LintReport,
    /// The generator's summary.
    pub report: Report,
    /// Whether the evaluators hash-cons the values they build (on by
    /// default; `--no-intern` turns it off).
    pub intern: bool,
}

/// Result of [`Compiled::smoke_evaluate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SmokeOutcome {
    /// The plain evaluation ran to completion.
    Ok,
    /// No smoke tree exists or evaluation failed for a non-semantic reason
    /// (missing typed token, sandboxed panic); run counters stay empty.
    Skipped,
    /// A semantic function aborted — user-level AG code called the OLGA
    /// `error` builtin (or hit a partial builtin out of domain).
    SemanticFailure(String),
    /// The evaluation tripped an [`EvalBudget`] limit (or an injected
    /// fault); the payload is the classified diagnostic.
    BudgetExceeded(String),
}

impl Compiled {
    /// Evaluates `tree` with the plain (node-storage) evaluator.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn evaluate(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
    ) -> Result<(AttrValues, EvalStats), EvalError> {
        Evaluator::new(&self.grammar, &self.seqs)
            .with_interning(self.intern)
            .evaluate(tree, inputs)
    }

    /// Evaluates `tree` with the space-optimized evaluator.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    ///
    /// # Panics
    ///
    /// Panics if the pipeline was configured without space optimization.
    pub fn evaluate_optimized(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
    ) -> Result<fnc2_space::SpaceOutcome, EvalError> {
        let fp = self.flat.as_ref().expect("space optimization enabled");
        let plan = self
            .space_plan
            .as_ref()
            .expect("space optimization enabled");
        fnc2_space::SpaceEvaluator::new(&self.grammar, &self.seqs, fp, plan)
            .with_interning(self.intern)
            .evaluate(tree, inputs)
    }

    /// [`evaluate`](Self::evaluate), instrumented: run counters are
    /// replayed into `rec` under the `eval.*` keys and, when tracing is
    /// on, visits and rule firings emit events.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn evaluate_recorded<R: Recorder>(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
        rec: &mut R,
    ) -> Result<(AttrValues, EvalStats), EvalError> {
        Evaluator::new(&self.grammar, &self.seqs)
            .with_interning(self.intern)
            .evaluate_recorded(tree, inputs, rec)
    }

    /// [`evaluate_optimized`](Self::evaluate_optimized), instrumented
    /// with the `space.*` counters and `AttrStored` events.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    ///
    /// # Panics
    ///
    /// Panics if the pipeline was configured without space optimization.
    pub fn evaluate_optimized_recorded<R: Recorder>(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
        rec: &mut R,
    ) -> Result<fnc2_space::SpaceOutcome, EvalError> {
        let fp = self.flat.as_ref().expect("space optimization enabled");
        let plan = self
            .space_plan
            .as_ref()
            .expect("space optimization enabled");
        fnc2_space::SpaceEvaluator::new(&self.grammar, &self.seqs, fp, plan)
            .with_interning(self.intern)
            .evaluate_recorded(tree, inputs, rec)
    }

    /// Runs the generated evaluators once on a minimal derivation of the
    /// grammar so the `eval.*` (and, with space optimization, `space.*`)
    /// run counters are non-zero in a report. Tokens default to `0` and
    /// root inherited attributes to `Int(0)`; evaluation is sandboxed, so
    /// grammars whose minimal tree needs typed tokens simply contribute no
    /// run counters. A semantic failure (user-level AG code calling the
    /// OLGA `error` builtin) is reported distinctly so callers can turn it
    /// into a diagnostic.
    pub fn smoke_evaluate<R: Recorder>(&self, rec: &mut R) -> SmokeOutcome {
        self.smoke_evaluate_guarded(&EvalBudget::default(), rec)
    }

    /// [`smoke_evaluate`](Self::smoke_evaluate) under an explicit
    /// [`EvalBudget`]: a tripped budget is reported as
    /// [`SmokeOutcome::BudgetExceeded`] instead of being folded into
    /// `Skipped`, so callers can map it to the budget exit code.
    pub fn smoke_evaluate_guarded<R: Recorder>(
        &self,
        budget: &EvalBudget,
        rec: &mut R,
    ) -> SmokeOutcome {
        let Some(tree) = smoke_tree(&self.grammar) else {
            return SmokeOutcome::Skipped;
        };
        let mut inputs = RootInputs::new();
        for attr in self.grammar.inherited(self.grammar.root()) {
            inputs.insert(attr, Value::Int(0));
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let ev = Evaluator::new(&self.grammar, &self.seqs).with_interning(self.intern);
            match ev.evaluate_recorded_guarded(&tree, &inputs, budget, None, rec) {
                Ok(_) => SmokeOutcome::Ok,
                Err(EvalError::SemanticFailure { message, .. }) => {
                    SmokeOutcome::SemanticFailure(message)
                }
                Err(e) if e.is_budget() => SmokeOutcome::BudgetExceeded(e.to_string()),
                Err(_) => SmokeOutcome::Skipped,
            }
        }))
        .unwrap_or(SmokeOutcome::Skipped);
        if matches!(outcome, SmokeOutcome::Ok) {
            if let (Some(fp), Some(plan)) = (self.flat.as_ref(), self.space_plan.as_ref()) {
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    let _ = fnc2_space::SpaceEvaluator::new(&self.grammar, &self.seqs, fp, plan)
                        .with_interning(self.intern)
                        .evaluate_recorded_guarded(&tree, &inputs, budget, None, rec);
                }));
            }
        }
        outcome
    }

    /// Re-validates the space plan from first principles and checks it
    /// against a plan-time budget bound. On failure the plan is dropped —
    /// subsequent evaluation (including [`smoke_evaluate`](Self::smoke_evaluate))
    /// degrades to the exhaustive node-storage evaluator — the degradation
    /// is counted under [`Key::GuardDegraded`], and the reason is returned
    /// for logging. `None` means the plan stands (or none was built).
    ///
    /// The plan-time budget check: a plan that allocates more global
    /// variable/stack slots than the budget's value-cell allowance cannot
    /// possibly run to completion within it, so it is rejected before any
    /// evaluation starts.
    pub fn degrade_to_exhaustive_recorded<R: Recorder>(
        &mut self,
        budget: &EvalBudget,
        rec: &mut R,
    ) -> Option<String> {
        let (Some(fp), Some(ox), Some(lt), Some(plan)) = (
            self.flat.as_ref(),
            self.objects.as_ref(),
            self.lifetimes.as_ref(),
            self.space_plan.as_ref(),
        ) else {
            return None;
        };
        let reason = match fnc2_space::validate_plan(&self.grammar, &self.seqs, fp, ox, lt, plan) {
            Err(e) => Some(format!("space plan failed re-validation: {e}")),
            Ok(()) => {
                let slots = (plan.stats.variables_after + plan.stats.stacks_after) as u64;
                if slots > budget.max_value_cells {
                    Some(format!(
                        "space plan needs {slots} storage slots but the budget \
                         allows {} value cells",
                        budget.max_value_cells
                    ))
                } else {
                    None
                }
            }
        };
        let reason = reason?;
        self.flat = None;
        self.objects = None;
        self.lifetimes = None;
        self.space_plan = None;
        let mut counters = fnc2_obs::Counters::new();
        counters.add(Key::GuardDegraded, 1);
        counters.replay(rec);
        Some(reason)
    }

    /// The report and the instrumentation layer's view of the run as one
    /// JSON document: grammar sizes and class, per-phase durations,
    /// counters, histograms, and the event trace when one was captured.
    pub fn report_json(&self, obs: &Obs) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("grammar".into(), Json::str(self.grammar.name())),
            ("class".into(), Json::str(self.report.class.to_string())),
            ("phyla".into(), Json::Int(self.report.phyla as i64)),
            ("operators".into(), Json::Int(self.report.operators as i64)),
            (
                "occurrences".into(),
                Json::Int(self.report.occurrences as i64),
            ),
            ("rules".into(), Json::Int(self.report.rules as i64)),
        ];
        if let Some(t) = &self.report.transform {
            pairs.push((
                "transform".into(),
                Json::obj([
                    ("plans", Json::Int(t.plans as i64)),
                    ("reuses", Json::Int(t.reuses as i64)),
                    ("fresh", Json::Int(t.fresh as i64)),
                    ("max_partitions", Json::Int(t.max_partitions() as i64)),
                ]),
            ));
        }
        if let Some(s) = &self.report.space {
            pairs.push((
                "space".into(),
                Json::obj([
                    ("variables", Json::Int(s.variables_after as i64)),
                    ("stacks", Json::Int(s.stacks_after as i64)),
                    ("node_occurrences", Json::Int(s.occ_node as i64)),
                    ("copies_eliminated", Json::Int(s.copies_eliminated as i64)),
                    ("copies_total", Json::Int(s.copies_total as i64)),
                ]),
            ));
        }
        if let Json::Obj(obs_pairs) = obs.to_json() {
            pairs.extend(obs_pairs);
        }
        Json::Obj(pairs)
    }
}

/// A [`Resolver`] that maps the raw indices carried by trace events back
/// to grammar names, for pretty-printed traces.
#[derive(Clone, Copy, Debug)]
pub struct GrammarResolver<'g>(pub &'g Grammar);

impl Resolver for GrammarResolver<'_> {
    fn production(&self, production: u32) -> String {
        self.0
            .production(ProductionId::from_raw(production))
            .name()
            .to_string()
    }

    fn attribute(&self, attr: u32) -> String {
        self.0.attr(AttrId::from_raw(attr)).name().to_string()
    }

    fn rule(&self, production: u32, rule: u32) -> String {
        let p = ProductionId::from_raw(production);
        let prod = self.0.production(p);
        match prod.rules().get(rule as usize) {
            Some(r) => self.0.occ_name(p, r.target()),
            None => format!("r{rule}"),
        }
    }
}

/// Builds a minimal derivation of the grammar's axiom: for every phylum
/// the production of least derivation height, tokens defaulting to
/// `Int(0)`. Returns `None` if some phylum on the minimal path derives no
/// finite tree (useless phyla elsewhere don't matter).
pub fn smoke_tree(grammar: &Grammar) -> Option<Tree> {
    // Least derivation height per phylum (a small fixpoint).
    let nph = grammar.phylum_count();
    let mut height: Vec<Option<usize>> = vec![None; nph];
    let prod_height = |height: &[Option<usize>], p: ProductionId| -> Option<usize> {
        let prod = grammar.production(p);
        let mut h = 0;
        for ph in prod.rhs() {
            h = h.max(height[ph.index()]?);
        }
        Some(h + 1)
    };
    loop {
        let mut changed = false;
        for p in grammar.productions() {
            if let Some(h) = prod_height(&height, p) {
                let lhs = grammar.production(p).lhs().index();
                if height[lhs].is_none_or(|old| h < old) {
                    height[lhs] = Some(h);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // The height-minimal production of each phylum.
    let mut best: Vec<Option<ProductionId>> = vec![None; nph];
    for p in grammar.productions() {
        let lhs = grammar.production(p).lhs().index();
        if best[lhs].is_none() && prod_height(&height, p) == height[lhs] {
            best[lhs] = Some(p);
        }
    }

    fn build(
        grammar: &Grammar,
        best: &[Option<ProductionId>],
        tb: &mut TreeBuilder<'_>,
        ph: PhylumId,
    ) -> Option<NodeId> {
        let p = best[ph.index()]?;
        let children: Option<Vec<NodeId>> = grammar
            .production(p)
            .rhs()
            .iter()
            .map(|&c| build(grammar, best, tb, c))
            .collect();
        tb.node_with_token(p, &children?, Some(Value::Int(0))).ok()
    }

    let mut tb = TreeBuilder::new(grammar);
    let root = build(grammar, &best, &mut tb, grammar.root())?;
    tb.finish_root(root).ok()
}

impl Pipeline {
    /// A pipeline with the default configuration (OAG(k≤1), long
    /// inclusion, space optimization on).
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Runs the full generator on an already-built grammar.
    ///
    /// # Errors
    ///
    /// Fails with the circularity trace if the grammar is not SNC.
    pub fn compile(&self, grammar: Grammar) -> Result<Compiled, PipelineError> {
        self.compile_recorded(grammar, &mut Obs::new())
    }

    /// [`compile`](Self::compile), instrumented: every Figure-3 cascade
    /// stage runs inside a phase span (`analysis` with its nested
    /// `analysis.snc`/`analysis.dnc`/`analysis.oag`/`analysis.transform`
    /// children, then `visit.sequences` and `space.analysis`), the GFA
    /// fixpoints feed the `gfa.*` counters, and the storage plan feeds the
    /// `space.plan.*` counters.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`compile`](Self::compile).
    pub fn compile_recorded(
        &self,
        grammar: Grammar,
        obs: &mut Obs,
    ) -> Result<Compiled, PipelineError> {
        obs.phases.enter("analysis");
        let classified = classify_recorded(&grammar, self.max_oag_k, self.inclusion, obs);
        obs.phases.leave();
        let classification = classified.map_err(PipelineError::Transform)?;
        if !classification.is_evaluable() {
            let w = classification
                .snc
                .witness
                .as_ref()
                .expect("not evaluable implies a witness");
            return Err(PipelineError::NotSnc(fnc2_analysis::explain(&grammar, w)));
        }
        let lo = classification
            .l_ordered
            .as_ref()
            .expect("evaluable grammars have plans");

        obs.phases.enter("lint");
        let lint = fnc2_lint::lint_grammar_recorded(&grammar, Some(&classification), obs);
        obs.phases.leave();

        obs.phases.enter("visit.sequences");
        let seqs = build_visit_seqs(&grammar, lo);
        obs.phases.leave();

        obs.phases.enter("space.analysis");
        let (flat, objects, lifetimes, space_plan) = if self.optimize_space {
            let (fp, ox, lt, plan) = analyze_space(&grammar, &seqs);
            (Some(fp), Some(ox), Some(lt), Some(plan))
        } else {
            (None, None, None, None)
        };
        if let Some(plan) = &space_plan {
            obs.count(Key::SpacePlanVariables, plan.stats.variables_after as u64);
            obs.count(Key::SpacePlanStacks, plan.stats.stacks_after as u64);
            obs.count(Key::SpacePlanNode, plan.stats.occ_node as u64);
            obs.count(
                Key::SpacePlanCopiesEliminated,
                plan.stats.copies_eliminated as u64,
            );
        }
        obs.phases.leave();

        let nanos = |name| Duration::from_nanos(obs.phases.nanos_of(name) as u64);
        let analysis_time = nanos("analysis");
        let vs_time = nanos("visit.sequences");
        let space_time = nanos("space.analysis");
        let lint_time = nanos("lint");

        let report = Report {
            class: classification.class,
            phyla: grammar.phylum_count(),
            operators: grammar.production_count(),
            occurrences: grammar.attr_count(),
            rules: grammar.rule_count(),
            transform: classification.l_ordered.as_ref().map(|l| l.stats.clone()),
            space: space_plan.as_ref().map(|p| p.stats.clone()),
            times: PhaseTimes {
                analysis: analysis_time,
                visit_sequences: vs_time,
                space: space_time,
                lint: lint_time,
            },
        };
        Ok(Compiled {
            grammar,
            classification,
            seqs,
            flat,
            objects,
            lifetimes,
            space_plan,
            lint,
            report,
            intern: self.intern,
        })
    }

    /// Parses, checks and lowers OLGA source, then runs the generator.
    ///
    /// # Errors
    ///
    /// Front-end errors carry positions; non-SNC grammars carry the trace.
    pub fn compile_olga(&self, source: &str) -> Result<Compiled, PipelineError> {
        self.compile_olga_recorded(source, &mut Obs::new())
    }

    /// [`compile_olga`](Self::compile_olga), instrumented: the front-end
    /// runs inside the `olga.parse`/`olga.check`/`olga.lower` phase spans
    /// before the [`compile_recorded`](Self::compile_recorded) cascade.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`compile_olga`](Self::compile_olga).
    pub fn compile_olga_recorded(
        &self,
        source: &str,
        obs: &mut Obs,
    ) -> Result<Compiled, PipelineError> {
        let grammar = olga_front_end_recorded(source, obs)?;
        self.compile_recorded(grammar, obs)
    }

    /// [`lint_olga_recorded`](Self::lint_olga_recorded) without
    /// instrumentation.
    pub fn lint_olga(&self, source: &str) -> fnc2_lint::LintReport {
        self.lint_olga_recorded(source, &mut Obs::new())
    }

    /// Runs the lint pass over OLGA `source` and never fails: front-end
    /// rejections become `L100`–`L102` diagnostics in the report, and a
    /// grammar that lowers gets the full grammar-level lint — including
    /// the circularity lints `L010`–`L012` — even when it is not
    /// evaluable (which is exactly when the witnesses matter most).
    pub fn lint_olga_recorded(&self, source: &str, obs: &mut Obs) -> fnc2_lint::LintReport {
        use fnc2_lint::{Code, Diagnostic, LintReport, Span};

        let grammar = match olga_front_end_recorded(source, obs) {
            Ok(grammar) => grammar,
            Err(e) => {
                let diags = match e {
                    PipelineError::Olga(fnc2_olga::OlgaError::Parse(pe)) => {
                        vec![Diagnostic::new(
                            Code::FrontSyntax,
                            Span::at(pe.pos.line, pe.pos.col, "olga source"),
                            pe.message,
                        )]
                    }
                    PipelineError::Olga(fnc2_olga::OlgaError::Check(ce)) => {
                        vec![Diagnostic::new(
                            Code::FrontCheck,
                            Span::at(ce.pos.line, ce.pos.col, "olga source"),
                            ce.message,
                        )]
                    }
                    PipelineError::Olga(fnc2_olga::OlgaError::Lower(le)) => {
                        let gerrs = le.grammar_errors();
                        if gerrs.is_empty() {
                            vec![Diagnostic::new(
                                Code::FrontCheck,
                                Span::anchor("lowering"),
                                le.to_string(),
                            )]
                        } else {
                            gerrs
                                .iter()
                                .map(|ge| {
                                    Diagnostic::new(
                                        Code::WellFormedness,
                                        Span::anchor("lowered grammar"),
                                        ge.to_string(),
                                    )
                                })
                                .collect()
                        }
                    }
                    other => vec![Diagnostic::new(
                        Code::FrontCheck,
                        Span::anchor("front end"),
                        other.to_string(),
                    )],
                };
                let report = LintReport::new(diags);
                fnc2_lint::record_report(&report, obs);
                return report;
            }
        };
        // Classification feeds the circularity lints; a transform failure
        // (impossible for SNC grammars) just drops them.
        obs.phases.enter("analysis");
        let class = classify_recorded(&grammar, self.max_oag_k, self.inclusion, obs).ok();
        obs.phases.leave();
        obs.phases.enter("lint");
        let report = fnc2_lint::lint_grammar_recorded(&grammar, class.as_ref(), obs);
        obs.phases.leave();
        report
    }
}

/// Runs the OLGA front end alone (parse, check, lower) inside its phase
/// spans and returns the lowered grammar. This is the cheap, linear part
/// of the pipeline — the artifact loader re-runs it to rebuild semantic
/// closures while the cascade results are deserialized.
pub(crate) fn olga_front_end_recorded(
    source: &str,
    obs: &mut Obs,
) -> Result<Grammar, PipelineError> {
    use fnc2_olga::ast::Unit;

    obs.phases.enter("olga.parse");
    let parsed = fnc2_olga::parse_units(source);
    obs.phases.leave();
    let units = parsed.map_err(|e| PipelineError::Olga(e.into()))?;

    obs.phases.enter("olga.check");
    let checked = (|| {
        let mut compiler = fnc2_olga::Compiler::new();
        let mut ag = None;
        for unit in units {
            match unit {
                Unit::Module(m) => compiler.add_module(m)?,
                Unit::Ag(a) => {
                    if ag.is_some() {
                        return Err(fnc2_olga::OlgaError::Parse(fnc2_olga::ParseError {
                            message: "source contains more than one attribute grammar".into(),
                            pos: fnc2_olga::Pos { line: 1, col: 1 },
                        }));
                    }
                    ag = Some(a);
                }
            }
        }
        let Some(ag) = ag else {
            return Err(fnc2_olga::OlgaError::Parse(fnc2_olga::ParseError {
                message: "source contains no attribute grammar".into(),
                pos: fnc2_olga::Pos { line: 1, col: 1 },
            }));
        };
        Ok(compiler.check_ag(ag)?)
    })();
    obs.phases.leave();
    let checked = checked.map_err(PipelineError::Olga)?;

    obs.phases.enter("olga.lower");
    let lowered = fnc2_olga::lower(&checked);
    obs.phases.leave();
    let (grammar, _) = lowered.map_err(|e| PipelineError::Olga(e.into()))?;
    Ok(grammar)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_on_builder_grammar() {
        let g = fnc2_corpus::binary();
        let compiled = Pipeline::new().compile(g).unwrap();
        assert_eq!(compiled.report.class, AgClass::Oag0);
        assert!(compiled.report.space.is_some());
        let tree = fnc2_corpus::binary_tree(&compiled.grammar, "1101");
        let (vals, _) = compiled.evaluate(&tree, &Default::default()).unwrap();
        let number = compiled.grammar.phylum_by_name("Number").unwrap();
        let value = compiled.grammar.attr_by_name(number, "value").unwrap();
        assert_eq!(
            vals.get(&compiled.grammar, tree.root(), value),
            Some(&fnc2_ag::Value::Real(13.0))
        );
        // Optimized evaluator agrees on the root output.
        let outcome = compiled
            .evaluate_optimized(&tree, &Default::default())
            .unwrap();
        assert_eq!(
            outcome
                .node_values
                .get(&compiled.grammar, tree.root(), value),
            Some(&fnc2_ag::Value::Real(13.0))
        );
    }

    #[test]
    fn pipeline_reports_circularity_with_trace() {
        let g = fnc2_corpus::circular();
        match Pipeline::new().compile(g) {
            Err(PipelineError::NotSnc(trace)) => {
                assert!(trace.contains("circular dependency"), "{trace}");
            }
            other => panic!("expected NotSnc, got {other:?}"),
        }
    }

    #[test]
    fn report_renders() {
        let compiled = Pipeline::new().compile(fnc2_corpus::desk()).unwrap();
        let text = compiled.report.to_string();
        assert!(text.contains("class OAG(0)"), "{text}");
        assert!(text.contains("storage:"), "{text}");
    }
}
