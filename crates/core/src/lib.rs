//! # fnc2 — the FNC-2 attribute grammar system, end to end
//!
//! The facade crate mirroring the paper's Figure 2: the OLGA front-end,
//! the evaluator generator (Figure 3's cascade: SNC test → DNC test →
//! OAG(k) test → SNC-to-l-ordered transformation → visit-sequence
//! generation → space optimization), the generated evaluators (plain,
//! space-optimized, demand-driven, incremental), and the translators
//! (to C and to Lisp).
//!
//! ```
//! use fnc2::Pipeline;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let compiled = Pipeline::new().compile_olga(r#"
//!     attribute grammar count;
//!       phylum S;
//!       operator leaf : S ::= ;
//!       operator node : S ::= S;
//!       synthesized n : int of S;
//!       for leaf { S.n := 0; }
//!       for node { S$1.n := S$2.n + 1; }
//!     end
//! "#)?;
//! assert_eq!(compiled.report.class.to_string(), "OAG(0)");
//!
//! let mut tb = fnc2::ag::TreeBuilder::new(&compiled.grammar);
//! let a = tb.op("leaf", &[])?;
//! let b = tb.op("node", &[a])?;
//! let tree = tb.finish_root(b)?;
//! let (values, _) = compiled.evaluate(&tree, &Default::default())?;
//! let s = compiled.grammar.phylum_by_name("S").unwrap();
//! let n = compiled.grammar.attr_by_name(s, "n").unwrap();
//! assert_eq!(values.get(&compiled.grammar, tree.root(), n),
//!            Some(&fnc2::ag::Value::Int(1)));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::time::{Duration, Instant};

use fnc2_ag::{AttrValues, Grammar, Tree};
use fnc2_analysis::{classify, AgClass, Classification, Inclusion};
use fnc2_space::{analyze_space, FlatProgram, Lifetimes, ObjectIndex, SpacePlan};
use fnc2_visit::{build_visit_seqs, EvalError, EvalStats, Evaluator, RootInputs, VisitSeqs};

pub use fnc2_ag as ag;
pub use fnc2_analysis as analysis;
pub use fnc2_codegen as codegen;
pub use fnc2_gfa as gfa;
pub use fnc2_incremental as incremental;
pub use fnc2_olga as olga;
pub use fnc2_space as space;
pub use fnc2_syntax as syntax;
pub use fnc2_tools as tools;
pub use fnc2_visit as visit;

/// Pipeline configuration (the knobs of the paper's §3.1).
#[derive(Clone, Debug)]
pub struct Pipeline {
    /// Largest `k` tried by the OAG(k) cascade.
    pub max_oag_k: usize,
    /// Partition-reuse strategy for the transformation.
    pub inclusion: Inclusion,
    /// Whether to run the space optimizer.
    pub optimize_space: bool,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline {
            max_oag_k: 1,
            inclusion: Inclusion::Long,
            optimize_space: true,
        }
    }
}

/// Per-phase wall-clock times of one generator run (the Table 1 "time"
/// column, split by phase).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Class tests + transformation.
    pub analysis: Duration,
    /// Visit-sequence generation.
    pub visit_sequences: Duration,
    /// Space optimization.
    pub space: Duration,
}

impl PhaseTimes {
    /// Total generator time.
    pub fn total(&self) -> Duration {
        self.analysis + self.visit_sequences + self.space
    }
}

/// The generator's summary for one AG (one Table 1 row).
#[derive(Clone, Debug)]
pub struct Report {
    /// Smallest class found.
    pub class: AgClass,
    /// Phyla count.
    pub phyla: usize,
    /// Operator (production) count.
    pub operators: usize,
    /// Attribute occurrences (sum over phyla of attached attributes).
    pub occurrences: usize,
    /// Semantic rule count.
    pub rules: usize,
    /// Transformation statistics (partitions per phylum, plans).
    pub transform: Option<fnc2_analysis::TransformStats>,
    /// Space statistics (storage classes, packing, copy elimination).
    pub space: Option<fnc2_space::SpaceStats>,
    /// Per-phase times.
    pub times: PhaseTimes,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "class {}; {} phyla, {} operators, {} occurrences, {} rules",
            self.class, self.phyla, self.operators, self.occurrences, self.rules
        )?;
        if let Some(t) = &self.transform {
            writeln!(
                f,
                "partitions/phylum avg {:.2} max {}; {} visit-sequences",
                t.avg_partitions(),
                t.max_partitions(),
                t.plans
            )?;
        }
        if let Some(s) = &self.space {
            writeln!(
                f,
                "storage: {:.0}% vars, {:.0}% stacks, {:.0}% nodes; {} vars, {} stacks; copies eliminated {:.0}% (of possible {:.0}%)",
                s.pct_variables(),
                s.pct_stacks(),
                s.pct_node(),
                s.variables_after,
                s.stacks_after,
                s.pct_eliminated_of_copies(),
                s.pct_eliminated_of_possible()
            )?;
        }
        write!(f, "generator time {:?}", self.times.total())
    }
}

/// Errors of the end-to-end pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// The OLGA front-end rejected the source.
    Olga(fnc2_olga::OlgaError),
    /// The AG is not strongly non-circular; the payload holds the
    /// circularity trace (paper §3.1's interactive trace, rendered).
    NotSnc(String),
    /// Internal transformation failure (cannot happen for SNC grammars).
    Transform(fnc2_analysis::TransformError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Olga(e) => write!(f, "{e}"),
            PipelineError::NotSnc(trace) => {
                write!(f, "grammar is not strongly non-circular:\n{trace}")
            }
            PipelineError::Transform(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<fnc2_olga::OlgaError> for PipelineError {
    fn from(e: fnc2_olga::OlgaError) -> Self {
        PipelineError::Olga(e)
    }
}

/// A fully generated evaluator with all its artifacts.
#[derive(Debug)]
pub struct Compiled {
    /// The (abstract) grammar.
    pub grammar: Grammar,
    /// The classification, including IO/OI/DS relations.
    pub classification: Classification,
    /// The visit sequences.
    pub seqs: VisitSeqs,
    /// The flattened program (when space optimization ran).
    pub flat: Option<FlatProgram>,
    /// Object index (when space optimization ran).
    pub objects: Option<ObjectIndex>,
    /// Lifetimes (when space optimization ran).
    pub lifetimes: Option<Lifetimes>,
    /// The storage plan (when space optimization ran).
    pub space_plan: Option<SpacePlan>,
    /// The generator's summary.
    pub report: Report,
}

impl Compiled {
    /// Evaluates `tree` with the plain (node-storage) evaluator.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn evaluate(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
    ) -> Result<(AttrValues, EvalStats), EvalError> {
        Evaluator::new(&self.grammar, &self.seqs).evaluate(tree, inputs)
    }

    /// Evaluates `tree` with the space-optimized evaluator.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    ///
    /// # Panics
    ///
    /// Panics if the pipeline was configured without space optimization.
    pub fn evaluate_optimized(
        &self,
        tree: &Tree,
        inputs: &RootInputs,
    ) -> Result<fnc2_space::SpaceOutcome, EvalError> {
        let fp = self.flat.as_ref().expect("space optimization enabled");
        let plan = self
            .space_plan
            .as_ref()
            .expect("space optimization enabled");
        fnc2_space::SpaceEvaluator::new(&self.grammar, &self.seqs, fp, plan).evaluate(tree, inputs)
    }
}

impl Pipeline {
    /// A pipeline with the default configuration (OAG(k≤1), long
    /// inclusion, space optimization on).
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Runs the full generator on an already-built grammar.
    ///
    /// # Errors
    ///
    /// Fails with the circularity trace if the grammar is not SNC.
    pub fn compile(&self, grammar: Grammar) -> Result<Compiled, PipelineError> {
        let t0 = Instant::now();
        let classification = classify(&grammar, self.max_oag_k, self.inclusion)
            .map_err(PipelineError::Transform)?;
        let analysis_time = t0.elapsed();
        if !classification.is_evaluable() {
            let w = classification
                .snc
                .witness
                .as_ref()
                .expect("not evaluable implies a witness");
            return Err(PipelineError::NotSnc(fnc2_analysis::explain(&grammar, w)));
        }
        let lo = classification
            .l_ordered
            .as_ref()
            .expect("evaluable grammars have plans");

        let t1 = Instant::now();
        let seqs = build_visit_seqs(&grammar, lo);
        let vs_time = t1.elapsed();

        let t2 = Instant::now();
        let (flat, objects, lifetimes, space_plan) = if self.optimize_space {
            let (fp, ox, lt, plan) = analyze_space(&grammar, &seqs);
            (Some(fp), Some(ox), Some(lt), Some(plan))
        } else {
            (None, None, None, None)
        };
        let space_time = t2.elapsed();

        let report = Report {
            class: classification.class,
            phyla: grammar.phylum_count(),
            operators: grammar.production_count(),
            occurrences: grammar.attr_count(),
            rules: grammar.rule_count(),
            transform: classification.l_ordered.as_ref().map(|l| l.stats.clone()),
            space: space_plan.as_ref().map(|p| p.stats.clone()),
            times: PhaseTimes {
                analysis: analysis_time,
                visit_sequences: vs_time,
                space: space_time,
            },
        };
        Ok(Compiled {
            grammar,
            classification,
            seqs,
            flat,
            objects,
            lifetimes,
            space_plan,
            report,
        })
    }

    /// Parses, checks and lowers OLGA source, then runs the generator.
    ///
    /// # Errors
    ///
    /// Front-end errors carry positions; non-SNC grammars carry the trace.
    pub fn compile_olga(&self, source: &str) -> Result<Compiled, PipelineError> {
        let (grammar, _) = fnc2_olga::compile_ag_source(source)?;
        self.compile(grammar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_on_builder_grammar() {
        let g = fnc2_corpus::binary();
        let compiled = Pipeline::new().compile(g).unwrap();
        assert_eq!(compiled.report.class, AgClass::Oag0);
        assert!(compiled.report.space.is_some());
        let tree = fnc2_corpus::binary_tree(&compiled.grammar, "1101");
        let (vals, _) = compiled.evaluate(&tree, &Default::default()).unwrap();
        let number = compiled.grammar.phylum_by_name("Number").unwrap();
        let value = compiled.grammar.attr_by_name(number, "value").unwrap();
        assert_eq!(
            vals.get(&compiled.grammar, tree.root(), value),
            Some(&fnc2_ag::Value::Real(13.0))
        );
        // Optimized evaluator agrees on the root output.
        let outcome = compiled
            .evaluate_optimized(&tree, &Default::default())
            .unwrap();
        assert_eq!(
            outcome.node_values.get(&compiled.grammar, tree.root(), value),
            Some(&fnc2_ag::Value::Real(13.0))
        );
    }

    #[test]
    fn pipeline_reports_circularity_with_trace() {
        let g = fnc2_corpus::circular();
        match Pipeline::new().compile(g) {
            Err(PipelineError::NotSnc(trace)) => {
                assert!(trace.contains("circular dependency"), "{trace}");
            }
            other => panic!("expected NotSnc, got {other:?}"),
        }
    }

    #[test]
    fn report_renders() {
        let compiled = Pipeline::new().compile(fnc2_corpus::desk()).unwrap();
        let text = compiled.report.to_string();
        assert!(text.contains("class OAG(0)"), "{text}");
        assert!(text.contains("storage:"), "{text}");
    }
}
