//! `fnc2c` — the command-line front door of the reproduction.
//!
//! ```text
//! fnc2c report  <file.olga>       # class, sizes, partitions, storage plan
//! fnc2c check   <file.olga>       # front-end + well-definedness only
//! fnc2c lint    <file.olga>       # grammar-level static analyses (L001..L102)
//! fnc2c c       <file.olga>       # translate the AG to C on stdout
//! fnc2c lisp    <file.olga>       # translate the AG to Lisp on stdout
//! fnc2c seqs    <file.olga>       # print the visit sequences
//! fnc2c compile --emit-tables FILE <file.olga>
//!                                 # persist the compiled tables artifact
//! fnc2c profile <file.olga>       # ranked per-(production, rule) cost profile
//! fnc2c explain <attr@node> <file.olga>
//!                                 # dynamic dependency slice of one instance
//! fnc2c fuzz [--seed N] [--cases N] [--front N] [--fault N] [--crash N] [--lint N]
//!            [--no-shrink]
//!                                 # differential fuzzing oracle (no input file)
//! fnc2c batch [--seed N] [--grammars N] [--trees N] [--threads N]
//!             [--repeat N] [--retries N] [--fault-seed N] [--metrics]
//!             [--checkpoint FILE [--resume]] [--backoff-ms N]
//!                                 # parallel batch evaluation over synthetic AGs
//! fnc2c cache-gc <dir>            # sweep orphaned temps + quarantined artifacts
//! ```
//!
//! Instrumentation flags (any command that runs the generator):
//!
//! ```text
//! --report json|text   report format (json bundles phases+counters+trace)
//! --metrics            print phase times and counters (stderr for c/lisp/seqs)
//! --trace[=N]          capture an event trace (ring of N entries, default 4096)
//! --chrome-trace FILE  write a Chrome trace-event JSON (open in Perfetto)
//! --no-intern          disable hash-consed value interning (on by default;
//!                      the escape hatch for differential comparison)
//! ```
//!
//! Tables flags (report/c/lisp/seqs/profile/explain; mutually exclusive):
//!
//! ```text
//! --tables FILE        load the compiled tables artifact FILE instead of
//!                      re-running the generator cascade; a stale or
//!                      corrupt artifact falls back to full recompilation
//! --cache-dir DIR      consult (and populate) an on-disk artifact cache
//!                      keyed by the source + configuration fingerprint
//! ```
//!
//! Budget flags (any command that evaluates):
//!
//! ```text
//! --max-steps N        rule-evaluation step budget
//! --max-depth N        visit/demand nesting depth budget
//! --max-value-bytes N  aggregate produced-value size budget
//! --deadline-ms N      wall-clock deadline
//! ```
//!
//! Exit codes, uniform across every subcommand:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success |
//! | 1    | diagnostics: bad usage, front-end/class errors, fuzz findings |
//! | 2    | a budget was exceeded, an injected fault surfaced, or a storage fault was classified |
//! | 101  | never — panics and I/O errors are caught and classified, not propagated |
//!
//! With flags but no command, `report` is assumed, so
//! `fnc2c --report json grammar.olga` emits the single-document JSON
//! report. The input is an OLGA text: any number of modules followed by
//! one attribute grammar (`-` reads standard input).

use std::io::Read as _;
use std::process::ExitCode;

use fnc2::guard::{Deadline, EvalBudget};
use fnc2::obs::Obs;
use fnc2::vfs::Vfs as _;
use fnc2::{GrammarResolver, Pipeline, PipelineError};

/// Exit code for ordinary diagnostics (usage, front-end, class errors).
const EXIT_DIAGNOSTICS: u8 = 1;
/// Exit code for budget exhaustion and injected/classified faults.
const EXIT_BUDGET: u8 = 2;

#[derive(Clone, Debug, Default)]
struct Opts {
    metrics: bool,
    trace: Option<usize>,
    report_json: bool,
    budget: Option<EvalBudget>,
    chrome_trace: Option<String>,
    /// `--tables FILE`: load the compiled tables artifact instead of
    /// running the cascade (falls back to recompilation when rejected).
    tables: Option<String>,
    /// `--cache-dir DIR`: consult/populate an on-disk artifact cache.
    cache_dir: Option<String>,
    /// `--emit-tables FILE` (compile command only): artifact destination.
    emit_tables: Option<String>,
    /// `--no-intern`: disable hash-consed value interning.
    no_intern: bool,
}

const DEFAULT_TRACE_CAPACITY: usize = 4096;

fn usage() -> String {
    "usage: fnc2c [--metrics] [--trace[=N]] [--report json|text] [--chrome-trace FILE] \
     [--tables FILE | --cache-dir DIR] [--no-intern] [budget flags] <report|check|c|lisp|seqs> \
     <file.olga | ->\n\
     \u{20}      fnc2c lint [--deny warnings] [--report json|text] \
     [--tables FILE | --cache-dir DIR] <file.olga | ->\n\
     \u{20}      fnc2c compile --emit-tables FILE <file.olga | ->\n\
     \u{20}      fnc2c profile [--repeat N] [--sample-every N] [--top N] [--report json|text] \
     [--tables FILE | --cache-dir DIR] [--no-intern] [budget flags] <file.olga | ->\n\
     \u{20}      fnc2c explain [--trace=N] [--report json|text] \
     [--tables FILE | --cache-dir DIR] [--no-intern] <[Phylum.]attr@node> \
     <file.olga | ->\n\
     \u{20}      fnc2c fuzz [--seed N] [--cases N] [--front N] [--fault N] [--crash N] \
     [--lint N] [--no-shrink]\n\
     \u{20}      fnc2c batch [--seed N] [--grammars N] [--trees N] [--threads N] \
     [--repeat N] [--retries N] [--fault-seed N] [--metrics] [--chrome-trace FILE] \
     [--no-intern] [--checkpoint FILE [--resume]] [--backoff-ms N] [budget flags]\n\
     \u{20}      fnc2c cache-gc <dir>\n\
     budget flags: --max-steps N --max-depth N --max-value-bytes N --deadline-ms N"
        .to_string()
}

/// Applies one `--max-*`/`--deadline-ms` flag to `budget`. Returns `None`
/// when `flag` is not a budget flag; `Some(Err)` on a malformed value.
fn apply_budget_flag(
    flag: &str,
    value: Option<&str>,
    budget: &mut EvalBudget,
) -> Option<Result<(), String>> {
    let numeric = |name: &str| -> Result<u64, String> {
        value
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| format!("fnc2c: {name} takes a number\n{}", usage()))
    };
    let r = match flag {
        "--max-steps" => numeric("--max-steps").map(|n| budget.max_steps = n),
        "--max-depth" => numeric("--max-depth").map(|n| budget.max_depth = n as usize),
        "--max-value-bytes" => numeric("--max-value-bytes").map(|n| {
            budget.max_value_cells = (n / std::mem::size_of::<fnc2::ag::Value>() as u64).max(1);
        }),
        "--deadline-ms" => {
            numeric("--deadline-ms").map(|n| budget.deadline = Some(Deadline::after_ms(n)))
        }
        _ => return None,
    };
    Some(r)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("fuzz") {
        return run_fuzz(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("lint") {
        return run_lint(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("batch") {
        return run_batch(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("profile") {
        return run_profile(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("explain") {
        return run_explain(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("cache-gc") {
        return run_cache_gc(&args[1..]);
    }
    let mut opts = Opts::default();
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--metrics" => opts.metrics = true,
            "--no-intern" => opts.no_intern = true,
            "--trace" => opts.trace = Some(DEFAULT_TRACE_CAPACITY),
            "--chrome-trace" => match it.next() {
                Some(path) => opts.chrome_trace = Some(path),
                None => {
                    eprintln!("fnc2c: --chrome-trace takes a file path\n{}", usage());
                    return ExitCode::from(EXIT_DIAGNOSTICS);
                }
            },
            "--tables" => match it.next() {
                Some(path) => opts.tables = Some(path),
                None => {
                    eprintln!("fnc2c: --tables takes a file path\n{}", usage());
                    return ExitCode::from(EXIT_DIAGNOSTICS);
                }
            },
            "--cache-dir" => match it.next() {
                Some(dir) => opts.cache_dir = Some(dir),
                None => {
                    eprintln!("fnc2c: --cache-dir takes a directory path\n{}", usage());
                    return ExitCode::from(EXIT_DIAGNOSTICS);
                }
            },
            "--emit-tables" => match it.next() {
                Some(path) => opts.emit_tables = Some(path),
                None => {
                    eprintln!("fnc2c: --emit-tables takes a file path\n{}", usage());
                    return ExitCode::from(EXIT_DIAGNOSTICS);
                }
            },
            "--report" => match it.next().as_deref() {
                Some("json") => opts.report_json = true,
                Some("text") => opts.report_json = false,
                _ => {
                    eprintln!("fnc2c: --report takes `json` or `text`\n{}", usage());
                    return ExitCode::from(EXIT_DIAGNOSTICS);
                }
            },
            flag @ ("--max-steps" | "--max-depth" | "--max-value-bytes" | "--deadline-ms") => {
                let mut budget = opts.budget.unwrap_or_default();
                let value = it.next();
                match apply_budget_flag(flag, value.as_deref(), &mut budget) {
                    Some(Ok(())) => opts.budget = Some(budget),
                    Some(Err(msg)) => {
                        eprintln!("{msg}");
                        return ExitCode::from(EXIT_DIAGNOSTICS);
                    }
                    None => unreachable!("matched budget flags only"),
                }
            }
            other if other.starts_with("--trace=") => {
                match other["--trace=".len()..].parse::<usize>() {
                    Ok(n) if n > 0 => opts.trace = Some(n),
                    _ => {
                        eprintln!("fnc2c: --trace=N needs a positive count\n{}", usage());
                        return ExitCode::from(EXIT_DIAGNOSTICS);
                    }
                }
            }
            other if other.starts_with("--") => {
                eprintln!("fnc2c: unknown flag `{other}`\n{}", usage());
                return ExitCode::from(EXIT_DIAGNOSTICS);
            }
            _ => positional.push(arg),
        }
    }
    let (cmd, path) = match positional.as_slice() {
        [cmd, path] => (cmd.clone(), path.clone()),
        // Flags-only invocations default to the report command.
        [path] => ("report".to_string(), path.clone()),
        _ => {
            eprintln!("{}", usage());
            return ExitCode::from(EXIT_DIAGNOSTICS);
        }
    };
    if let Err(msg) = validate_tables_flags(&cmd, &opts) {
        eprintln!("{msg}");
        return ExitCode::from(EXIT_DIAGNOSTICS);
    }
    let source = match read_source(&path) {
        Ok(s) => s,
        Err((msg, code)) => {
            eprintln!("{msg}");
            return ExitCode::from(code);
        }
    };

    match run(&cmd, &source, opts) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err((msg, code)) => {
            eprintln!("{msg}");
            ExitCode::from(code)
        }
    }
}

/// A diagnostic message plus the exit code it maps to.
type CliError = (String, u8);

fn diag(msg: impl Into<String>) -> CliError {
    (msg.into(), EXIT_DIAGNOSTICS)
}

/// Reads an OLGA source file (`-` reads standard input).
fn read_source(path: &str) -> Result<String, CliError> {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|_| diag("fnc2c: cannot read standard input"))?;
        Ok(s)
    } else {
        std::fs::read_to_string(path).map_err(|e| diag(format!("fnc2c: {path}: {e}")))
    }
}

/// Maps a classified storage fault onto the budget/fault exit code: the
/// output path was valid, the work was done, and the disk failed — that
/// is an environmental fault, not a usage diagnostic, and it must never
/// surface as a panic.
fn storage_fault(e: fnc2::vfs::VfsError) -> CliError {
    (format!("fnc2c: {e}"), EXIT_BUDGET)
}

/// Writes `bytes` to `path` through the storage layer, classifying any
/// fault (full disk, failed rename, interrupted write) as exit code 2.
fn write_artifact(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    fnc2::vfs::RealVfs
        .write(std::path::Path::new(path), bytes)
        .map_err(storage_fault)
}

/// Writes the Chrome trace-event JSON collected in `obs` to `path`
/// (load the file in Perfetto / `chrome://tracing`).
fn write_chrome_trace(path: &str, obs: &Obs) -> Result<(), CliError> {
    write_artifact(path, format!("{}\n", obs.chrome_trace()).as_bytes())
}

/// The `cache-gc` subcommand: sweeps orphaned temp files left by crashed
/// writers and deletes quarantined artifacts under the given cache
/// directory. Storage faults during the sweep exit with the fault code.
fn run_cache_gc(args: &[String]) -> ExitCode {
    let [dir] = args else {
        eprintln!(
            "fnc2c: cache-gc takes exactly one cache directory\n{}",
            usage()
        );
        return ExitCode::from(EXIT_DIAGNOSTICS);
    };
    let vfs = fnc2::vfs::RealVfs;
    let store = fnc2::artifact::TableStore::new(std::path::Path::new(dir.as_str()), &vfs);
    match store.gc() {
        Ok(report) => {
            println!(
                "cache-gc: {dir}: removed {} orphaned temp file(s), {} quarantined artifact(s)",
                report.temps_removed, report.quarantined_removed
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            let (msg, code) = storage_fault(e);
            eprintln!("{msg}");
            ExitCode::from(code)
        }
    }
}

fn run(cmd: &str, source: &str, opts: Opts) -> Result<String, CliError> {
    let mut obs = match opts.trace {
        Some(n) => Obs::with_trace(n),
        None => Obs::new(),
    };
    if opts.chrome_trace.is_some() {
        obs.enable_spans();
    }
    let r = run_cmd(cmd, source, &opts, &mut obs);
    // The trace is written even when the command failed — a budget trip
    // mid-cascade is exactly when the timeline is most interesting.
    if let Some(path) = &opts.chrome_trace {
        write_chrome_trace(path, &obs)?;
    }
    r
}

fn run_cmd(cmd: &str, source: &str, opts: &Opts, obs: &mut Obs) -> Result<String, CliError> {
    // The checked AG is needed for the translators.
    let checked = || -> Result<fnc2::olga::CheckedAg, CliError> {
        let units = fnc2::olga::parse_units(source).map_err(|e| diag(e.to_string()))?;
        let mut compiler = fnc2::olga::Compiler::new();
        let mut ag = None;
        for u in units {
            match u {
                fnc2::olga::ast::Unit::Module(m) => {
                    compiler.add_module(m).map_err(|e| diag(e.to_string()))?
                }
                fnc2::olga::ast::Unit::Ag(a) => ag = Some(a),
            }
        }
        let ag = ag.ok_or_else(|| diag("fnc2c: source contains no attribute grammar"))?;
        compiler.check_ag(ag).map_err(|e| diag(e.to_string()))
    };

    match cmd {
        "check" => {
            let checked = checked()?;
            let (grammar, info) = fnc2::olga::lower(&checked).map_err(|e| diag(e.to_string()))?;
            Ok(format!(
                "ok: {} phyla, {} operators, {} rules ({} explicit copies, {} auto copies)\n",
                grammar.phylum_count(),
                grammar.production_count(),
                grammar.rule_count(),
                info.explicit_copies,
                info.auto_copies
            ))
        }
        "report" => {
            let mut compiled = compile_via(
                source,
                opts.tables.as_deref(),
                opts.cache_dir.as_deref(),
                opts.no_intern,
                obs,
            )?;
            let budget = opts.budget.unwrap_or_default();
            // Graceful degradation: a space plan that fails re-validation
            // or the plan-time budget check is dropped — the report falls
            // back to the exhaustive evaluator instead of failing.
            if let Some(reason) = compiled.degrade_to_exhaustive_recorded(&budget, obs) {
                eprintln!("fnc2c: warning: degrading to exhaustive evaluator: {reason}");
            }
            // Exercise the generated evaluators on a minimal tree so the
            // run counters (visits, evals, copies, storage classes) are
            // populated alongside the static generator statistics.
            match compiled.smoke_evaluate_guarded(&budget, obs) {
                fnc2::SmokeOutcome::SemanticFailure(msg) => {
                    return Err(diag(format!(
                        "fnc2c: error: semantic rule aborted during evaluation: {msg}"
                    )));
                }
                fnc2::SmokeOutcome::BudgetExceeded(msg) => {
                    return Err((format!("fnc2c: error: {msg}"), EXIT_BUDGET));
                }
                fnc2::SmokeOutcome::Ok | fnc2::SmokeOutcome::Skipped => {}
            }
            if opts.report_json {
                Ok(format!("{}\n", compiled.report_json(obs)))
            } else {
                let mut out = format!("{}\n", compiled.report);
                if opts.metrics || opts.trace.is_some() {
                    out.push_str(&obs.render(&GrammarResolver(&compiled.grammar)));
                }
                Ok(out)
            }
        }
        "c" => {
            let checked = checked()?;
            let compiled = compile_via(
                source,
                opts.tables.as_deref(),
                opts.cache_dir.as_deref(),
                opts.no_intern,
                obs,
            )?;
            let out = fnc2::codegen::to_c(&checked, &compiled.grammar, &compiled.seqs);
            emit_side_channel(opts, obs, &compiled.grammar);
            Ok(out)
        }
        "lisp" => {
            let checked = checked()?;
            let compiled = compile_via(
                source,
                opts.tables.as_deref(),
                opts.cache_dir.as_deref(),
                opts.no_intern,
                obs,
            )?;
            let out = fnc2::codegen::to_lisp(&checked, &compiled.grammar, &compiled.seqs);
            emit_side_channel(opts, obs, &compiled.grammar);
            Ok(out)
        }
        "seqs" => {
            let compiled = compile_via(
                source,
                opts.tables.as_deref(),
                opts.cache_dir.as_deref(),
                opts.no_intern,
                obs,
            )?;
            let mut out = String::new();
            for (p, pi) in compiled.seqs.keys() {
                let seq = compiled.seqs.seq(p, pi);
                let prod = compiled.grammar.production(p);
                out.push_str(&format!("{} (partition {pi}):\n", prod.name()));
                for (v, segment) in seq.segments.iter().enumerate() {
                    out.push_str(&format!("  BEGIN {}\n", v + 1));
                    for instr in segment {
                        match instr {
                            fnc2::visit::Instr::Eval(t) => out.push_str(&format!(
                                "    EVAL  {}\n",
                                compiled.grammar.occ_name(p, *t)
                            )),
                            fnc2::visit::Instr::Visit {
                                child,
                                visit,
                                partition,
                            } => out.push_str(&format!(
                                "    VISIT {visit},{child} (partition {partition})\n"
                            )),
                        }
                    }
                    out.push_str(&format!("  LEAVE {}\n", v + 1));
                }
            }
            emit_side_channel(opts, obs, &compiled.grammar);
            Ok(out)
        }
        "compile" => {
            let compiled = compile(source, opts.no_intern, obs)?;
            let out_path = opts
                .emit_tables
                .as_deref()
                .expect("validated by validate_tables_flags");
            let pipeline = pipeline(opts.no_intern);
            let bytes = fnc2::artifact::emit_tables(&compiled, &pipeline, source);
            write_artifact(out_path, &bytes)?;
            let fp = fnc2::tables::fingerprint_source(source, &pipeline.tables_config());
            Ok(format!(
                "wrote compiled tables to {out_path}: {} bytes, fingerprint {fp:016x}, class {}\n",
                bytes.len(),
                compiled.report.class
            ))
        }
        other => Err(diag(format!("fnc2c: unknown command `{other}`"))),
    }
}

/// The `profile` subcommand: compiles the grammar, runs the generated
/// evaluators repeatedly over the smoke tree with the rule profiler
/// enabled, and prints the ranked hot-`(production, rule)` report —
/// firing counts, copy shares, and estimated total time from periodic
/// wall-clock samples.
fn run_profile(args: &[String]) -> ExitCode {
    let mut repeat = 64u64;
    let mut sample_every = fnc2::obs::DEFAULT_SAMPLE_EVERY;
    let mut top = 20usize;
    let mut json = false;
    let mut tables: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut no_intern = false;
    let mut budget = EvalBudget::default();
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut numeric = |name: &str| -> Result<u64, String> {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| format!("fnc2c: {name} takes a number\n{}", usage()))
        };
        let r = match arg.as_str() {
            "--repeat" => numeric("--repeat").map(|n| repeat = n.max(1)),
            "--sample-every" => numeric("--sample-every").map(|n| sample_every = (n as u32).max(1)),
            "--top" => numeric("--top").map(|n| top = (n as usize).max(1)),
            "--no-intern" => {
                no_intern = true;
                Ok(())
            }
            "--tables" => match it.next() {
                Some(path) => {
                    tables = Some(path.clone());
                    Ok(())
                }
                None => Err(format!("fnc2c: --tables takes a file path\n{}", usage())),
            },
            "--cache-dir" => match it.next() {
                Some(dir) => {
                    cache_dir = Some(dir.clone());
                    Ok(())
                }
                None => Err(format!(
                    "fnc2c: --cache-dir takes a directory path\n{}",
                    usage()
                )),
            },
            "--report" => match it.next().map(String::as_str) {
                Some("json") => {
                    json = true;
                    Ok(())
                }
                Some("text") => {
                    json = false;
                    Ok(())
                }
                _ => Err(format!(
                    "fnc2c: --report takes `json` or `text`\n{}",
                    usage()
                )),
            },
            flag @ ("--max-steps" | "--max-depth" | "--max-value-bytes" | "--deadline-ms") => {
                let value = it.next().cloned();
                match apply_budget_flag(flag, value.as_deref(), &mut budget) {
                    Some(r) => r,
                    None => unreachable!("matched budget flags only"),
                }
            }
            other if other.starts_with("--") => Err(format!(
                "fnc2c: unknown profile flag `{other}`\n{}",
                usage()
            )),
            _ => {
                positional.push(arg);
                Ok(())
            }
        };
        if let Err(msg) = r {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_DIAGNOSTICS);
        }
    }
    let [path] = positional.as_slice() else {
        eprintln!("{}", usage());
        return ExitCode::from(EXIT_DIAGNOSTICS);
    };
    if tables.is_some() && cache_dir.is_some() {
        eprintln!(
            "fnc2c: --tables and --cache-dir are mutually exclusive\n{}",
            usage()
        );
        return ExitCode::from(EXIT_DIAGNOSTICS);
    }

    match profile_source(
        path,
        repeat,
        sample_every,
        top,
        json,
        tables.as_deref(),
        cache_dir.as_deref(),
        no_intern,
        &budget,
    ) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err((msg, code)) => {
            eprintln!("{msg}");
            ExitCode::from(code)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn profile_source(
    path: &str,
    repeat: u64,
    sample_every: u32,
    top: usize,
    json: bool,
    tables: Option<&str>,
    cache_dir: Option<&str>,
    no_intern: bool,
    budget: &EvalBudget,
) -> Result<String, CliError> {
    let source = read_source(path)?;
    let mut obs = Obs::new();
    let mut compiled = compile_via(&source, tables, cache_dir, no_intern, &mut obs)?;
    if let Some(reason) = compiled.degrade_to_exhaustive_recorded(budget, &mut obs) {
        eprintln!("fnc2c: warning: degrading to exhaustive evaluator: {reason}");
    }
    obs.enable_profile(sample_every);
    for _ in 0..repeat {
        match compiled.smoke_evaluate_guarded(budget, &mut obs) {
            fnc2::SmokeOutcome::SemanticFailure(msg) => {
                return Err(diag(format!(
                    "fnc2c: error: semantic rule aborted during evaluation: {msg}"
                )));
            }
            fnc2::SmokeOutcome::BudgetExceeded(msg) => {
                return Err((format!("fnc2c: error: {msg}"), EXIT_BUDGET));
            }
            fnc2::SmokeOutcome::Ok | fnc2::SmokeOutcome::Skipped => {}
        }
    }
    let profile = obs.profile.as_ref().expect("profiling enabled above");
    if profile.is_empty() {
        return Err(diag(
            "fnc2c: no rule firings recorded (the grammar has no evaluable smoke tree)",
        ));
    }
    let resolver = GrammarResolver(&compiled.grammar);
    if json {
        let doc = fnc2::obs::Json::obj([
            ("grammar", fnc2::obs::Json::str(compiled.grammar.name())),
            ("repeat", fnc2::obs::Json::Int(repeat as i64)),
            ("profile", profile.to_json(&resolver)),
        ]);
        Ok(format!("{doc}\n"))
    } else {
        Ok(profile.render(&resolver, top))
    }
}

/// The `explain` subcommand: evaluates the grammar's smoke tree with the
/// event trace on, then reconstructs and prints the dynamic dependency
/// slice of `attr@node` — which firings, in which visits, fed the value.
fn run_explain(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut capacity: usize = 1 << 20;
    let mut tables: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut no_intern = false;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let r = match arg.as_str() {
            "--no-intern" => {
                no_intern = true;
                Ok(())
            }
            "--tables" => match it.next() {
                Some(path) => {
                    tables = Some(path.clone());
                    Ok(())
                }
                None => Err(format!("fnc2c: --tables takes a file path\n{}", usage())),
            },
            "--cache-dir" => match it.next() {
                Some(dir) => {
                    cache_dir = Some(dir.clone());
                    Ok(())
                }
                None => Err(format!(
                    "fnc2c: --cache-dir takes a directory path\n{}",
                    usage()
                )),
            },
            "--report" => match it.next().map(String::as_str) {
                Some("json") => {
                    json = true;
                    Ok(())
                }
                Some("text") => {
                    json = false;
                    Ok(())
                }
                _ => Err(format!(
                    "fnc2c: --report takes `json` or `text`\n{}",
                    usage()
                )),
            },
            other if other.starts_with("--trace=") => {
                match other["--trace=".len()..].parse::<usize>() {
                    Ok(n) if n > 0 => {
                        capacity = n;
                        Ok(())
                    }
                    _ => Err(format!(
                        "fnc2c: --trace=N needs a positive count\n{}",
                        usage()
                    )),
                }
            }
            other if other.starts_with("--") => Err(format!(
                "fnc2c: unknown explain flag `{other}`\n{}",
                usage()
            )),
            _ => {
                positional.push(arg);
                Ok(())
            }
        };
        if let Err(msg) = r {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_DIAGNOSTICS);
        }
    }
    let [target, path] = positional.as_slice() else {
        eprintln!("{}", usage());
        return ExitCode::from(EXIT_DIAGNOSTICS);
    };
    if tables.is_some() && cache_dir.is_some() {
        eprintln!(
            "fnc2c: --tables and --cache-dir are mutually exclusive\n{}",
            usage()
        );
        return ExitCode::from(EXIT_DIAGNOSTICS);
    }

    match explain_source(
        target,
        path,
        capacity,
        json,
        tables.as_deref(),
        cache_dir.as_deref(),
        no_intern,
    ) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err((msg, code)) => {
            eprintln!("{msg}");
            ExitCode::from(code)
        }
    }
}

/// Resolves `[Phylum.]attr` against the grammar. Without a phylum
/// qualifier the attribute name must be unambiguous across phyla.
fn resolve_attr(grammar: &fnc2::ag::Grammar, spec: &str) -> Result<fnc2::ag::AttrId, CliError> {
    if let Some((ph_name, attr_name)) = spec.split_once('.') {
        let ph = grammar
            .phylum_by_name(ph_name)
            .ok_or_else(|| diag(format!("fnc2c: no phylum named `{ph_name}`")))?;
        return grammar.attr_by_name(ph, attr_name).ok_or_else(|| {
            diag(format!(
                "fnc2c: phylum `{ph_name}` has no attribute `{attr_name}`"
            ))
        });
    }
    let matches: Vec<_> = grammar
        .phyla()
        .filter_map(|ph| grammar.attr_by_name(ph, spec))
        .collect();
    match matches.as_slice() {
        [a] => Ok(*a),
        [] => Err(diag(format!("fnc2c: no attribute named `{spec}`"))),
        _ => Err(diag(format!(
            "fnc2c: attribute `{spec}` is ambiguous; qualify it as `Phylum.{spec}`"
        ))),
    }
}

#[allow(clippy::too_many_arguments)]
fn explain_source(
    target: &str,
    path: &str,
    capacity: usize,
    json: bool,
    tables: Option<&str>,
    cache_dir: Option<&str>,
    no_intern: bool,
) -> Result<String, CliError> {
    let source = read_source(path)?;
    let mut obs = Obs::new();
    let compiled = compile_via(&source, tables, cache_dir, no_intern, &mut obs)?;
    let g = &compiled.grammar;

    let (attr_spec, node_spec) = target.split_once('@').ok_or_else(|| {
        diag(format!(
            "fnc2c: explain target `{target}` must look like `attr@node` or `Phylum.attr@node`"
        ))
    })?;
    let attr = resolve_attr(g, attr_spec)?;
    let node_ix: usize = node_spec
        .parse()
        .map_err(|_| diag(format!("fnc2c: `{node_spec}` is not a node index")))?;

    let tree = fnc2::smoke_tree(g)
        .ok_or_else(|| diag("fnc2c: the grammar's axiom derives no finite tree"))?;
    if node_ix >= tree.arena_len() {
        return Err(diag(format!(
            "fnc2c: node {node_ix} is out of range (the smoke tree has {} nodes; \
             rerun with a node index below that)",
            tree.arena_len()
        )));
    }

    let mut trace_obs = Obs::with_trace(capacity);
    let mut inputs = fnc2::visit::RootInputs::new();
    for a in g.inherited(g.root()) {
        inputs.insert(a, fnc2::ag::Value::Int(0));
    }
    compiled
        .evaluate_recorded(&tree, &inputs, &mut trace_obs)
        .map_err(|e| diag(format!("fnc2c: evaluation failed: {e}")))?;

    let buf = trace_obs.events.as_ref().expect("trace enabled above");
    if let Some((from, to)) = buf.dropped_span() {
        eprintln!(
            "fnc2c: warning: the trace ring wrapped (events {from}..{to} discarded); \
             the slice may bottom out early — rerun with --trace=N larger than {capacity}"
        );
    }
    let node = fnc2::ag::NodeId::from_raw(node_ix as u32);
    let slice = fnc2::visit::dependency_slice(g, &tree, buf.iter(), node, attr);
    if json {
        Ok(format!("{}\n", slice.to_json(g, &tree)))
    } else {
        Ok(slice.render(g, &tree))
    }
}

/// The `lint` subcommand: runs the grammar-level static analyses over an
/// OLGA source and prints the diagnostic report. Front-end rejections are
/// diagnostics (`L100`–`L102`), not hard errors, so the exit contract is
/// uniform: 0 when the report is clean (no errors; warnings allowed
/// unless `--deny warnings`), 1 when findings deny the grammar, 2 only
/// for environmental faults (an unreadable input).
fn run_lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut deny_warnings = false;
    let mut tables: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let r = match arg.as_str() {
            "--deny" => match it.next().map(String::as_str) {
                Some("warnings") => {
                    deny_warnings = true;
                    Ok(())
                }
                _ => Err(format!("fnc2c: --deny takes `warnings`\n{}", usage())),
            },
            "--report" => match it.next().map(String::as_str) {
                Some("json") => {
                    json = true;
                    Ok(())
                }
                Some("text") => {
                    json = false;
                    Ok(())
                }
                _ => Err(format!(
                    "fnc2c: --report takes `json` or `text`\n{}",
                    usage()
                )),
            },
            "--tables" => match it.next() {
                Some(path) => {
                    tables = Some(path.clone());
                    Ok(())
                }
                None => Err(format!("fnc2c: --tables takes a file path\n{}", usage())),
            },
            "--cache-dir" => match it.next() {
                Some(dir) => {
                    cache_dir = Some(dir.clone());
                    Ok(())
                }
                None => Err(format!(
                    "fnc2c: --cache-dir takes a directory path\n{}",
                    usage()
                )),
            },
            other if other.starts_with("--") => {
                Err(format!("fnc2c: unknown lint flag `{other}`\n{}", usage()))
            }
            _ => {
                positional.push(arg);
                Ok(())
            }
        };
        if let Err(msg) = r {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_DIAGNOSTICS);
        }
    }
    let [path] = positional.as_slice() else {
        eprintln!("{}", usage());
        return ExitCode::from(EXIT_DIAGNOSTICS);
    };
    if tables.is_some() && cache_dir.is_some() {
        eprintln!(
            "fnc2c: --tables and --cache-dir are mutually exclusive\n{}",
            usage()
        );
        return ExitCode::from(EXIT_DIAGNOSTICS);
    }
    let source = match read_source(path) {
        Ok(s) => s,
        Err((msg, code)) => {
            eprintln!("{msg}");
            // An unreadable input is environmental, not a lint finding.
            return ExitCode::from(if code == EXIT_DIAGNOSTICS {
                EXIT_BUDGET
            } else {
                code
            });
        }
    };

    let mut obs = Obs::new();
    let pipeline = Pipeline::new();
    // With an artifact source the diagnostics are replayed from the
    // embedded lint section (no re-analysis on a cache hit); anything
    // that prevents that — a rejected artifact, a source that no longer
    // compiles — falls back to the full never-failing lint path.
    let report = match (tables.as_deref(), cache_dir.as_deref()) {
        (None, None) => pipeline.lint_olga_recorded(&source, &mut obs),
        (t, c) => match compile_via(&source, t, c, false, &mut obs) {
            Ok(compiled) => compiled.lint,
            Err(_) => pipeline.lint_olga_recorded(&source, &mut obs),
        },
    };

    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    let denied = report.errors() > 0 || (deny_warnings && report.warnings() > 0);
    if denied {
        if report.errors() == 0 {
            eprintln!("fnc2c: denying warnings (--deny warnings)");
        }
        ExitCode::from(EXIT_DIAGNOSTICS)
    } else {
        ExitCode::SUCCESS
    }
}

/// The `fuzz` subcommand: runs the differential oracle with the given
/// seed and budgets, prints the counter summary, and on failure prints
/// the (shrunk) reproducer to stderr and exits nonzero.
fn run_fuzz(args: &[String]) -> ExitCode {
    let mut cfg = fnc2::fuzz::FuzzConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut numeric = |name: &str| -> Result<u64, String> {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| format!("fnc2c: {name} takes a number\n{}", usage()))
        };
        let r = match arg.as_str() {
            "--seed" => numeric("--seed").map(|n| cfg.seed = n),
            "--cases" => numeric("--cases").map(|n| cfg.grammar_cases = n),
            "--front" => numeric("--front").map(|n| cfg.front_cases = n),
            "--fault" => numeric("--fault").map(|n| cfg.fault_cases = n),
            "--crash" => numeric("--crash").map(|n| cfg.crash_cases = n),
            "--lint" => numeric("--lint").map(|n| cfg.lint_cases = n),
            "--no-shrink" => {
                cfg.shrink = false;
                Ok(())
            }
            other => Err(format!("fnc2c: unknown fuzz flag `{other}`\n{}", usage())),
        };
        if let Err(msg) = r {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_DIAGNOSTICS);
        }
    }

    let mut obs = Obs::new();
    let report = fnc2::fuzz::run(&cfg, &mut obs);
    println!(
        "fuzz: seed {}: {} grammar cases ({} tree nodes, {} edits), \
         {} front-end cases ({} accepted, {} rejected), \
         {} fault cases ({} faults injected, {} panics caught), \
         {} crash cases ({} storage faults, {} records resumed), \
         {} lint cases ({} L001 + {} L002 verdicts checked, {} flips, {} witnesses replayed)",
        cfg.seed,
        report.grammar_cases,
        report.nodes,
        report.edits,
        report.front_cases,
        report.front_accepted,
        report.front_rejected,
        report.fault_cases,
        report.faults_injected,
        report.panics_caught,
        report.crash_cases,
        report.io_faults,
        report.crash_resumed,
        report.lint_cases,
        report.lint_unused_checked,
        report.lint_dead_checked,
        report.lint_flips,
        report.lint_witnesses
    );
    match report.failure {
        None => {
            println!(
                "fuzz: no divergence, no panic, no fault escape, no crash inconsistency, \
                 no unsound lint"
            );
            ExitCode::SUCCESS
        }
        Some(fnc2::fuzz::FuzzFailure::Divergence(d)) => {
            eprintln!("fuzz: DIVERGENCE at stage `{}`", d.stage);
            eprint!("{}", fnc2::fuzz::render_reproducer(&d));
            ExitCode::from(EXIT_DIAGNOSTICS)
        }
        Some(fnc2::fuzz::FuzzFailure::FrontPanic(f)) => {
            eprintln!(
                "fuzz: FRONT-END PANIC on case {} (base {}, mutations: {}): {}",
                f.case, f.base, f.mutations, f.panic
            );
            eprintln!("-- mutated source --\n{}", f.source);
            ExitCode::from(EXIT_DIAGNOSTICS)
        }
        Some(fnc2::fuzz::FuzzFailure::Fault(f)) => {
            eprintln!("fuzz: FAULT-ISOLATION VIOLATION: {f}");
            ExitCode::from(EXIT_BUDGET)
        }
        Some(fnc2::fuzz::FuzzFailure::Crash(f)) => {
            eprintln!("fuzz: CRASH-CONSISTENCY VIOLATION: {f}");
            ExitCode::from(EXIT_BUDGET)
        }
        Some(fnc2::fuzz::FuzzFailure::Lint(f)) => {
            eprintln!("fuzz: LINT-SOUNDNESS VIOLATION: {f}");
            ExitCode::from(EXIT_DIAGNOSTICS)
        }
    }
}

/// FNV-1a over everything that determines a batch's work-list and
/// outcomes. The checkpoint journal is bound to this, so `--resume`
/// against a different seed, shape, fault plan, interning mode, or
/// budget is rejected instead of silently skipping the wrong trees.
fn batch_fingerprint(
    seed: u64,
    grammars: u64,
    trees: usize,
    fault_seed: Option<u64>,
    no_intern: bool,
    budget: &EvalBudget,
) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for chunk in [
        b"fnc2c-batch-v1".as_slice(),
        &seed.to_le_bytes(),
        &grammars.to_le_bytes(),
        &(trees as u64).to_le_bytes(),
        &[u8::from(fault_seed.is_some())],
        &fault_seed.unwrap_or(0).to_le_bytes(),
        &[u8::from(no_intern)],
        &budget.max_steps.to_le_bytes(),
        &(budget.max_depth as u64).to_le_bytes(),
        &budget.max_value_cells.to_le_bytes(),
        &[u8::from(budget.deadline.is_some())],
    ] {
        for &b in chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// The `batch` subcommand: generates synthetic SNC grammars (the fuzz
/// generator's, so a seed line is a full reproducer), builds a batch of
/// random trees per grammar, and decorates them through the guarded
/// work-stealing parallel driver, printing trees/sec, steal counts and the
/// per-batch outcome report. A failed or poisoned tree never aborts the
/// batch: the other trees' results are kept, the failure is classified,
/// and the run exits with the budget/fault code.
fn run_batch(args: &[String]) -> ExitCode {
    let mut seed = 0u64;
    let mut grammars = 4u64;
    let mut trees = 64usize;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut repeat = 1usize;
    let mut retries = 0u32;
    let mut fault_seed: Option<u64> = None;
    let mut metrics = false;
    let mut no_intern = false;
    let mut chrome_trace: Option<String> = None;
    let mut checkpoint: Option<String> = None;
    let mut resume = false;
    let mut backoff_ms = 0u64;
    let mut budget = EvalBudget::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut numeric = |name: &str| -> Result<u64, String> {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| format!("fnc2c: {name} takes a number\n{}", usage()))
        };
        let r = match arg.as_str() {
            "--seed" => numeric("--seed").map(|n| seed = n),
            "--grammars" => numeric("--grammars").map(|n| grammars = n),
            "--trees" => numeric("--trees").map(|n| trees = n as usize),
            "--threads" => numeric("--threads").map(|n| threads = (n as usize).max(1)),
            "--repeat" => numeric("--repeat").map(|n| repeat = (n as usize).max(1)),
            "--retries" => numeric("--retries").map(|n| retries = n as u32),
            "--fault-seed" => numeric("--fault-seed").map(|n| fault_seed = Some(n)),
            "--metrics" => {
                metrics = true;
                Ok(())
            }
            "--no-intern" => {
                no_intern = true;
                Ok(())
            }
            "--chrome-trace" => match it.next() {
                Some(path) => {
                    chrome_trace = Some(path.clone());
                    Ok(())
                }
                None => Err(format!(
                    "fnc2c: --chrome-trace takes a file path\n{}",
                    usage()
                )),
            },
            "--checkpoint" => match it.next() {
                Some(path) => {
                    checkpoint = Some(path.clone());
                    Ok(())
                }
                None => Err(format!(
                    "fnc2c: --checkpoint takes a file path\n{}",
                    usage()
                )),
            },
            "--resume" => {
                resume = true;
                Ok(())
            }
            "--backoff-ms" => numeric("--backoff-ms").map(|n| backoff_ms = n),
            flag @ ("--max-steps" | "--max-depth" | "--max-value-bytes" | "--deadline-ms") => {
                let value = it.next().cloned();
                match apply_budget_flag(flag, value.as_deref(), &mut budget) {
                    Some(r) => r,
                    None => unreachable!("matched budget flags only"),
                }
            }
            other => Err(format!("fnc2c: unknown batch flag `{other}`\n{}", usage())),
        };
        if let Err(msg) = r {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_DIAGNOSTICS);
        }
    }

    if resume && checkpoint.is_none() {
        eprintln!("fnc2c: --resume requires --checkpoint FILE\n{}", usage());
        return ExitCode::from(EXIT_DIAGNOSTICS);
    }
    if checkpoint.is_some() && repeat > 1 {
        eprintln!(
            "fnc2c: --checkpoint conflicts with --repeat (a journaled tree is never re-run, \
             so repeated passes would measure nothing)\n{}",
            usage()
        );
        return ExitCode::from(EXIT_DIAGNOSTICS);
    }

    let vfs = fnc2::vfs::RealVfs;
    // The journal is bound to everything that determines the batch's
    // work-list, so a resume against a different configuration is a
    // crisp fingerprint-mismatch diagnostic instead of silent skips.
    let batch_fp = batch_fingerprint(seed, grammars, trees, fault_seed, no_intern, &budget);
    let mut ckpt = match &checkpoint {
        None => None,
        Some(path) => {
            let p = std::path::Path::new(path);
            let opened = if resume && vfs.exists(p) {
                fnc2::par::Checkpoint::open(&vfs, p, batch_fp).map(|(c, info)| {
                    println!(
                        "batch: checkpoint {path}: resumed {} record(s){}",
                        info.resumed,
                        if info.compacted {
                            format!(" (dropped {} torn byte(s))", info.torn_bytes)
                        } else {
                            String::new()
                        }
                    );
                    c
                })
            } else {
                fnc2::par::Checkpoint::create(&vfs, p, batch_fp)
            };
            match opened {
                Ok(c) => Some(c),
                Err(fnc2::par::CkptError::Io(e)) => {
                    eprintln!("fnc2c: {e}");
                    return ExitCode::from(EXIT_BUDGET);
                }
                Err(e) => {
                    eprintln!("fnc2c: checkpoint {path}: {e}");
                    return ExitCode::from(EXIT_DIAGNOSTICS);
                }
            }
        }
    };

    let mut obs = Obs::new();
    if chrome_trace.is_some() {
        obs.enable_spans();
    }
    let mut total_trees = 0u64;
    let mut total_steals = 0u64;
    let mut total_secs = 0f64;
    let mut any_lost = false;
    for gi in 0..grammars {
        let params = fnc2::fuzz::CaseParams::for_case(seed, gi);
        let gg = fnc2::fuzz::gen::build_grammar(&params);
        let g = &gg.grammar;
        let cls = match fnc2::analysis::classify(g, 2, fnc2::analysis::Inclusion::Long) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("fnc2c: batch grammar {gi}: transformation failed: {e}");
                return ExitCode::from(EXIT_DIAGNOSTICS);
            }
        };
        let Some(lo) = cls.l_ordered.as_ref() else {
            eprintln!("fnc2c: batch grammar {gi}: generated grammar rejected as non-SNC");
            return ExitCode::from(EXIT_DIAGNOSTICS);
        };
        let seqs = fnc2::visit::build_visit_seqs(g, lo);
        let ev = fnc2::visit::Evaluator::new(g, &seqs).with_interning(!no_intern);
        let batch: Vec<fnc2::ag::Tree> = (0..trees)
            .map(|t| {
                let tp = fnc2::fuzz::CaseParams {
                    seed: params
                        .seed
                        .wrapping_add((t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                    ..params
                };
                fnc2::fuzz::build_tree(&gg, &tp)
            })
            .collect();
        let plan = fault_seed.map(|fs| fnc2::guard::FaultPlan::from_seed(fs ^ gi, batch.len()));
        let inputs = fnc2::visit::RootInputs::new();
        let start = std::time::Instant::now();
        if let Some(ckpt) = ckpt.as_mut() {
            // Checkpointed leg: every terminal outcome is journaled as it
            // lands; trees already in the journal are not re-evaluated.
            let index_base = gi * trees as u64;
            let report = match fnc2::par::batch_evaluate_checkpointed_recorded(
                &ev,
                &batch,
                &inputs,
                threads,
                &budget,
                retries,
                plan.as_ref(),
                backoff_ms,
                &vfs,
                ckpt,
                index_base,
                &mut obs,
            ) {
                Ok(r) => r,
                Err(fnc2::par::CkptError::Io(e)) => {
                    eprintln!("fnc2c: {e}");
                    return ExitCode::from(EXIT_BUDGET);
                }
                Err(e) => {
                    eprintln!("fnc2c: checkpoint: {e}");
                    return ExitCode::from(EXIT_DIAGNOSTICS);
                }
            };
            let dt = start.elapsed().as_secs_f64();
            let n = trees as u64;
            let (ok, failed, panicked, budget_trips) = report.counts();
            println!(
                "batch: grammar {gi}: {n} trees in {:.2}ms ({:.0} trees/s, {} steals, \
                 {} resumed); outcomes: {ok} ok, {failed} failed, {panicked} panicked, \
                 {budget_trips} budget-exceeded; {} retries, {} panics caught",
                dt * 1e3,
                n as f64 / dt.max(1e-9),
                report.stats.steals,
                report.resumed,
                report.retries,
                report.panics_caught
            );
            // The per-tree classification is printed from the journal
            // records, so the lines are bit-identical between an
            // uninterrupted run and any kill -> resume sequence.
            for r in &report.records {
                if r.outcome != fnc2::par::CkptOutcome::Ok {
                    println!(
                        "batch: grammar {gi} tree {}: {} (digest {:016x})",
                        r.index - index_base,
                        r.outcome,
                        r.digest
                    );
                }
            }
            for (i, o) in report.fresh.iter().enumerate() {
                let Some(o) = o else { continue };
                if let Some(e) = o.error() {
                    eprintln!("fnc2c: batch grammar {gi} tree {i}: {e}");
                } else if let Some(m) = o.panic_message() {
                    eprintln!("fnc2c: batch grammar {gi} tree {i}: panicked: {m}");
                }
            }
            any_lost |= ok != report.records.len();
            total_trees += n;
            total_steals += report.stats.steals;
            total_secs += dt;
            continue;
        }
        let mut steals = 0u64;
        let mut last_report = None;
        for _ in 0..repeat {
            let report = fnc2::par::batch_evaluate_guarded_recorded(
                &ev,
                &batch,
                &inputs,
                threads,
                &budget,
                retries,
                plan.as_ref(),
                &mut obs,
            );
            steals += report.stats.steals;
            last_report = Some(report);
        }
        let dt = start.elapsed().as_secs_f64();
        let n = (trees * repeat) as u64;
        let report = last_report.expect("repeat >= 1");
        let (ok, failed, panicked) = report.counts();
        println!(
            "batch: grammar {gi}: {n} trees in {:.2}ms ({:.0} trees/s, {steals} steals); \
             outcomes: {ok} ok, {failed} failed, {panicked} panicked; \
             {} retries, {} panics caught, {} budget trips",
            dt * 1e3,
            n as f64 / dt.max(1e-9),
            report.retries,
            report.panics_caught,
            report.budget_exceeded
        );
        for (i, o) in report.outcomes.iter().enumerate() {
            if let Some(e) = o.error() {
                eprintln!("fnc2c: batch grammar {gi} tree {i}: {e}");
            } else if let Some(m) = o.panic_message() {
                eprintln!("fnc2c: batch grammar {gi} tree {i}: panicked: {m}");
            }
        }
        any_lost |= !report.all_ok();
        total_trees += n;
        total_steals += steals;
        total_secs += dt;
    }
    println!(
        "batch: seed {seed}: {total_trees} trees over {grammars} grammars in {:.2}ms \
         ({:.0} trees/s, {total_steals} steals, {threads} threads)",
        total_secs * 1e3,
        total_trees as f64 / total_secs.max(1e-9)
    );
    if metrics {
        eprint!("{}", obs.render(&fnc2::obs::RawResolver));
    }
    if let Some(path) = &chrome_trace {
        if let Err((msg, code)) = write_chrome_trace(path, &obs) {
            eprintln!("{msg}");
            return ExitCode::from(code);
        }
    }
    if any_lost {
        ExitCode::from(EXIT_BUDGET)
    } else {
        ExitCode::SUCCESS
    }
}

/// Prints the instrumentation report to stderr for commands whose stdout
/// is a generated artifact (C, Lisp, visit sequences).
fn emit_side_channel(opts: &Opts, obs: &Obs, grammar: &fnc2::ag::Grammar) {
    if opts.metrics || opts.trace.is_some() {
        eprint!("{}", obs.render(&GrammarResolver(grammar)));
    }
}

fn pipeline_diag(e: PipelineError) -> CliError {
    match e {
        PipelineError::NotSnc(trace) => diag(format!("fnc2c: grammar is not SNC\n{trace}")),
        other => diag(format!("fnc2c: {other}")),
    }
}

/// The pipeline configuration honoring `--no-intern`.
fn pipeline(no_intern: bool) -> Pipeline {
    Pipeline {
        intern: !no_intern,
        ..Pipeline::new()
    }
}

fn compile(source: &str, no_intern: bool, obs: &mut Obs) -> Result<fnc2::Compiled, CliError> {
    pipeline(no_intern)
        .compile_olga_recorded(source, obs)
        .map_err(pipeline_diag)
}

/// Rejects flag combinations that contradict each other before any work
/// starts, so every conflict is a crisp exit-1 diagnostic instead of a
/// silently ignored flag.
fn validate_tables_flags(cmd: &str, opts: &Opts) -> Result<(), String> {
    if opts.tables.is_some() && opts.cache_dir.is_some() {
        return Err(format!(
            "fnc2c: --tables and --cache-dir are mutually exclusive\n{}",
            usage()
        ));
    }
    if cmd == "compile" {
        if opts.emit_tables.is_none() {
            return Err(format!(
                "fnc2c: the compile command requires --emit-tables FILE\n{}",
                usage()
            ));
        }
        if opts.tables.is_some() {
            return Err(format!(
                "fnc2c: --tables conflicts with the compile command (it would skip \
                 the very cascade being persisted)\n{}",
                usage()
            ));
        }
        if opts.cache_dir.is_some() {
            return Err(format!(
                "fnc2c: --cache-dir conflicts with the compile command; use \
                 --emit-tables for an explicit artifact\n{}",
                usage()
            ));
        }
    } else {
        if opts.emit_tables.is_some() {
            return Err(format!(
                "fnc2c: --emit-tables is only valid with the compile command\n{}",
                usage()
            ));
        }
        if cmd == "check" && (opts.tables.is_some() || opts.cache_dir.is_some()) {
            return Err(format!(
                "fnc2c: check runs the front end only; --tables/--cache-dir do not apply\n{}",
                usage()
            ));
        }
    }
    Ok(())
}

/// Obtains a [`fnc2::Compiled`], honoring `--tables` (load the artifact,
/// falling back to recompilation with a warning when it is rejected) and
/// `--cache-dir` (fingerprint-keyed on-disk cache). Plain compilation
/// otherwise.
fn compile_via(
    source: &str,
    tables: Option<&str>,
    cache_dir: Option<&str>,
    no_intern: bool,
    obs: &mut Obs,
) -> Result<fnc2::Compiled, CliError> {
    use fnc2::artifact::{self, CacheOutcome, TablesError};
    use fnc2::obs::{Key, Recorder as _};

    if let Some(path) = tables {
        let bytes = std::fs::read(path).map_err(|e| diag(format!("fnc2c: {path}: {e}")))?;
        match artifact::load_tables_recorded(&bytes, source, &pipeline(no_intern), obs) {
            Ok(compiled) => {
                obs.count(Key::TablesCacheHit, 1);
                return Ok(compiled);
            }
            Err(TablesError::Source(e)) => return Err(pipeline_diag(*e)),
            Err(TablesError::Rejected(e)) => {
                obs.count(Key::TablesCacheRejected, 1);
                eprintln!("fnc2c: warning: ignoring tables artifact {path}: {e}; recompiling");
            }
        }
        compile(source, no_intern, obs)
    } else if let Some(dir) = cache_dir {
        let (compiled, outcome) = artifact::compile_olga_cached(
            &pipeline(no_intern),
            source,
            std::path::Path::new(dir),
            obs,
        )
        .map_err(pipeline_diag)?;
        if let CacheOutcome::Rejected(e) = outcome {
            eprintln!("fnc2c: warning: rejected cached tables artifact: {e}; recompiled");
        }
        Ok(compiled)
    } else {
        compile(source, no_intern, obs)
    }
}
