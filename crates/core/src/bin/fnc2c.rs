//! `fnc2c` — the command-line front door of the reproduction.
//!
//! ```text
//! fnc2c report  <file.olga>       # class, sizes, partitions, storage plan
//! fnc2c check   <file.olga>       # front-end + well-definedness only
//! fnc2c c       <file.olga>       # translate the AG to C on stdout
//! fnc2c lisp    <file.olga>       # translate the AG to Lisp on stdout
//! fnc2c seqs    <file.olga>       # print the visit sequences
//! fnc2c fuzz [--seed N] [--cases N] [--front N] [--fault N] [--no-shrink]
//!                                 # differential fuzzing oracle (no input file)
//! fnc2c batch [--seed N] [--grammars N] [--trees N] [--threads N]
//!             [--repeat N] [--retries N] [--fault-seed N] [--metrics]
//!                                 # parallel batch evaluation over synthetic AGs
//! ```
//!
//! Instrumentation flags (any command that runs the generator):
//!
//! ```text
//! --report json|text   report format (json bundles phases+counters+trace)
//! --metrics            print phase times and counters (stderr for c/lisp/seqs)
//! --trace[=N]          capture an event trace (ring of N entries, default 4096)
//! ```
//!
//! Budget flags (any command that evaluates):
//!
//! ```text
//! --max-steps N        rule-evaluation step budget
//! --max-depth N        visit/demand nesting depth budget
//! --max-value-bytes N  aggregate produced-value size budget
//! --deadline-ms N      wall-clock deadline
//! ```
//!
//! Exit codes, uniform across every subcommand:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success |
//! | 1    | diagnostics: bad usage, front-end/class errors, fuzz findings |
//! | 2    | a budget was exceeded or an injected fault surfaced |
//! | 101  | never — panics are caught and classified, not propagated |
//!
//! With flags but no command, `report` is assumed, so
//! `fnc2c --report json grammar.olga` emits the single-document JSON
//! report. The input is an OLGA text: any number of modules followed by
//! one attribute grammar (`-` reads standard input).

use std::io::Read as _;
use std::process::ExitCode;

use fnc2::guard::{Deadline, EvalBudget};
use fnc2::obs::Obs;
use fnc2::{GrammarResolver, Pipeline, PipelineError};

/// Exit code for ordinary diagnostics (usage, front-end, class errors).
const EXIT_DIAGNOSTICS: u8 = 1;
/// Exit code for budget exhaustion and injected/classified faults.
const EXIT_BUDGET: u8 = 2;

#[derive(Clone, Copy, Debug, Default)]
struct Opts {
    metrics: bool,
    trace: Option<usize>,
    report_json: bool,
    budget: Option<EvalBudget>,
}

const DEFAULT_TRACE_CAPACITY: usize = 4096;

fn usage() -> String {
    "usage: fnc2c [--metrics] [--trace[=N]] [--report json|text] [budget flags] \
     <report|check|c|lisp|seqs> <file.olga | ->\n\
     \u{20}      fnc2c fuzz [--seed N] [--cases N] [--front N] [--fault N] [--no-shrink]\n\
     \u{20}      fnc2c batch [--seed N] [--grammars N] [--trees N] [--threads N] \
     [--repeat N] [--retries N] [--fault-seed N] [--metrics] [budget flags]\n\
     budget flags: --max-steps N --max-depth N --max-value-bytes N --deadline-ms N"
        .to_string()
}

/// Applies one `--max-*`/`--deadline-ms` flag to `budget`. Returns `None`
/// when `flag` is not a budget flag; `Some(Err)` on a malformed value.
fn apply_budget_flag(
    flag: &str,
    value: Option<&str>,
    budget: &mut EvalBudget,
) -> Option<Result<(), String>> {
    let numeric = |name: &str| -> Result<u64, String> {
        value
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| format!("fnc2c: {name} takes a number\n{}", usage()))
    };
    let r = match flag {
        "--max-steps" => numeric("--max-steps").map(|n| budget.max_steps = n),
        "--max-depth" => numeric("--max-depth").map(|n| budget.max_depth = n as usize),
        "--max-value-bytes" => numeric("--max-value-bytes").map(|n| {
            budget.max_value_cells = (n / std::mem::size_of::<fnc2::ag::Value>() as u64).max(1);
        }),
        "--deadline-ms" => {
            numeric("--deadline-ms").map(|n| budget.deadline = Some(Deadline::after_ms(n)))
        }
        _ => return None,
    };
    Some(r)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("fuzz") {
        return run_fuzz(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("batch") {
        return run_batch(&args[1..]);
    }
    let mut opts = Opts::default();
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--metrics" => opts.metrics = true,
            "--trace" => opts.trace = Some(DEFAULT_TRACE_CAPACITY),
            "--report" => match it.next().as_deref() {
                Some("json") => opts.report_json = true,
                Some("text") => opts.report_json = false,
                _ => {
                    eprintln!("fnc2c: --report takes `json` or `text`\n{}", usage());
                    return ExitCode::from(EXIT_DIAGNOSTICS);
                }
            },
            flag @ ("--max-steps" | "--max-depth" | "--max-value-bytes" | "--deadline-ms") => {
                let mut budget = opts.budget.unwrap_or_default();
                let value = it.next();
                match apply_budget_flag(flag, value.as_deref(), &mut budget) {
                    Some(Ok(())) => opts.budget = Some(budget),
                    Some(Err(msg)) => {
                        eprintln!("{msg}");
                        return ExitCode::from(EXIT_DIAGNOSTICS);
                    }
                    None => unreachable!("matched budget flags only"),
                }
            }
            other if other.starts_with("--trace=") => {
                match other["--trace=".len()..].parse::<usize>() {
                    Ok(n) if n > 0 => opts.trace = Some(n),
                    _ => {
                        eprintln!("fnc2c: --trace=N needs a positive count\n{}", usage());
                        return ExitCode::from(EXIT_DIAGNOSTICS);
                    }
                }
            }
            other if other.starts_with("--") => {
                eprintln!("fnc2c: unknown flag `{other}`\n{}", usage());
                return ExitCode::from(EXIT_DIAGNOSTICS);
            }
            _ => positional.push(arg),
        }
    }
    let (cmd, path) = match positional.as_slice() {
        [cmd, path] => (cmd.clone(), path.clone()),
        // Flags-only invocations default to the report command.
        [path] => ("report".to_string(), path.clone()),
        _ => {
            eprintln!("{}", usage());
            return ExitCode::from(EXIT_DIAGNOSTICS);
        }
    };
    let source = if path == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("fnc2c: cannot read standard input");
            return ExitCode::from(EXIT_DIAGNOSTICS);
        }
        s
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fnc2c: {path}: {e}");
                return ExitCode::from(EXIT_DIAGNOSTICS);
            }
        }
    };

    match run(&cmd, &source, opts) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err((msg, code)) => {
            eprintln!("{msg}");
            ExitCode::from(code)
        }
    }
}

/// A diagnostic message plus the exit code it maps to.
type CliError = (String, u8);

fn diag(msg: impl Into<String>) -> CliError {
    (msg.into(), EXIT_DIAGNOSTICS)
}

fn run(cmd: &str, source: &str, opts: Opts) -> Result<String, CliError> {
    // The checked AG is needed for the translators.
    let checked = || -> Result<fnc2::olga::CheckedAg, CliError> {
        let units = fnc2::olga::parse_units(source).map_err(|e| diag(e.to_string()))?;
        let mut compiler = fnc2::olga::Compiler::new();
        let mut ag = None;
        for u in units {
            match u {
                fnc2::olga::ast::Unit::Module(m) => {
                    compiler.add_module(m).map_err(|e| diag(e.to_string()))?
                }
                fnc2::olga::ast::Unit::Ag(a) => ag = Some(a),
            }
        }
        let ag = ag.ok_or_else(|| diag("fnc2c: source contains no attribute grammar"))?;
        compiler.check_ag(ag).map_err(|e| diag(e.to_string()))
    };

    let mut obs = match opts.trace {
        Some(n) => Obs::with_trace(n),
        None => Obs::new(),
    };

    match cmd {
        "check" => {
            let checked = checked()?;
            let (grammar, info) = fnc2::olga::lower(&checked).map_err(|e| diag(e.to_string()))?;
            Ok(format!(
                "ok: {} phyla, {} operators, {} rules ({} explicit copies, {} auto copies)\n",
                grammar.phylum_count(),
                grammar.production_count(),
                grammar.rule_count(),
                info.explicit_copies,
                info.auto_copies
            ))
        }
        "report" => {
            let mut compiled = compile(source, &mut obs)?;
            let budget = opts.budget.unwrap_or_default();
            // Graceful degradation: a space plan that fails re-validation
            // or the plan-time budget check is dropped — the report falls
            // back to the exhaustive evaluator instead of failing.
            if let Some(reason) = compiled.degrade_to_exhaustive_recorded(&budget, &mut obs) {
                eprintln!("fnc2c: warning: degrading to exhaustive evaluator: {reason}");
            }
            // Exercise the generated evaluators on a minimal tree so the
            // run counters (visits, evals, copies, storage classes) are
            // populated alongside the static generator statistics.
            match compiled.smoke_evaluate_guarded(&budget, &mut obs) {
                fnc2::SmokeOutcome::SemanticFailure(msg) => {
                    return Err(diag(format!(
                        "fnc2c: error: semantic rule aborted during evaluation: {msg}"
                    )));
                }
                fnc2::SmokeOutcome::BudgetExceeded(msg) => {
                    return Err((format!("fnc2c: error: {msg}"), EXIT_BUDGET));
                }
                fnc2::SmokeOutcome::Ok | fnc2::SmokeOutcome::Skipped => {}
            }
            if opts.report_json {
                Ok(format!("{}\n", compiled.report_json(&obs)))
            } else {
                let mut out = format!("{}\n", compiled.report);
                if opts.metrics || opts.trace.is_some() {
                    out.push_str(&obs.render(&GrammarResolver(&compiled.grammar)));
                }
                Ok(out)
            }
        }
        "c" => {
            let checked = checked()?;
            let compiled = compile(source, &mut obs)?;
            let out = fnc2::codegen::to_c(&checked, &compiled.grammar, &compiled.seqs);
            emit_side_channel(&opts, &obs, &compiled.grammar);
            Ok(out)
        }
        "lisp" => {
            let checked = checked()?;
            let compiled = compile(source, &mut obs)?;
            let out = fnc2::codegen::to_lisp(&checked, &compiled.grammar, &compiled.seqs);
            emit_side_channel(&opts, &obs, &compiled.grammar);
            Ok(out)
        }
        "seqs" => {
            let compiled = compile(source, &mut obs)?;
            let mut out = String::new();
            for (p, pi) in compiled.seqs.keys() {
                let seq = compiled.seqs.seq(p, pi);
                let prod = compiled.grammar.production(p);
                out.push_str(&format!("{} (partition {pi}):\n", prod.name()));
                for (v, segment) in seq.segments.iter().enumerate() {
                    out.push_str(&format!("  BEGIN {}\n", v + 1));
                    for instr in segment {
                        match instr {
                            fnc2::visit::Instr::Eval(t) => out.push_str(&format!(
                                "    EVAL  {}\n",
                                compiled.grammar.occ_name(p, *t)
                            )),
                            fnc2::visit::Instr::Visit {
                                child,
                                visit,
                                partition,
                            } => out.push_str(&format!(
                                "    VISIT {visit},{child} (partition {partition})\n"
                            )),
                        }
                    }
                    out.push_str(&format!("  LEAVE {}\n", v + 1));
                }
            }
            emit_side_channel(&opts, &obs, &compiled.grammar);
            Ok(out)
        }
        other => Err(diag(format!("fnc2c: unknown command `{other}`"))),
    }
}

/// The `fuzz` subcommand: runs the differential oracle with the given
/// seed and budgets, prints the counter summary, and on failure prints
/// the (shrunk) reproducer to stderr and exits nonzero.
fn run_fuzz(args: &[String]) -> ExitCode {
    let mut cfg = fnc2::fuzz::FuzzConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut numeric = |name: &str| -> Result<u64, String> {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| format!("fnc2c: {name} takes a number\n{}", usage()))
        };
        let r = match arg.as_str() {
            "--seed" => numeric("--seed").map(|n| cfg.seed = n),
            "--cases" => numeric("--cases").map(|n| cfg.grammar_cases = n),
            "--front" => numeric("--front").map(|n| cfg.front_cases = n),
            "--fault" => numeric("--fault").map(|n| cfg.fault_cases = n),
            "--no-shrink" => {
                cfg.shrink = false;
                Ok(())
            }
            other => Err(format!("fnc2c: unknown fuzz flag `{other}`\n{}", usage())),
        };
        if let Err(msg) = r {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_DIAGNOSTICS);
        }
    }

    let mut obs = Obs::new();
    let report = fnc2::fuzz::run(&cfg, &mut obs);
    println!(
        "fuzz: seed {}: {} grammar cases ({} tree nodes, {} edits), \
         {} front-end cases ({} accepted, {} rejected), \
         {} fault cases ({} faults injected, {} panics caught)",
        cfg.seed,
        report.grammar_cases,
        report.nodes,
        report.edits,
        report.front_cases,
        report.front_accepted,
        report.front_rejected,
        report.fault_cases,
        report.faults_injected,
        report.panics_caught
    );
    match report.failure {
        None => {
            println!("fuzz: no divergence, no panic, no fault escape");
            ExitCode::SUCCESS
        }
        Some(fnc2::fuzz::FuzzFailure::Divergence(d)) => {
            eprintln!("fuzz: DIVERGENCE at stage `{}`", d.stage);
            eprint!("{}", fnc2::fuzz::render_reproducer(&d));
            ExitCode::from(EXIT_DIAGNOSTICS)
        }
        Some(fnc2::fuzz::FuzzFailure::FrontPanic(f)) => {
            eprintln!(
                "fuzz: FRONT-END PANIC on case {} (base {}, mutations: {}): {}",
                f.case, f.base, f.mutations, f.panic
            );
            eprintln!("-- mutated source --\n{}", f.source);
            ExitCode::from(EXIT_DIAGNOSTICS)
        }
        Some(fnc2::fuzz::FuzzFailure::Fault(f)) => {
            eprintln!("fuzz: FAULT-ISOLATION VIOLATION: {f}");
            ExitCode::from(EXIT_BUDGET)
        }
    }
}

/// The `batch` subcommand: generates synthetic SNC grammars (the fuzz
/// generator's, so a seed line is a full reproducer), builds a batch of
/// random trees per grammar, and decorates them through the guarded
/// work-stealing parallel driver, printing trees/sec, steal counts and the
/// per-batch outcome report. A failed or poisoned tree never aborts the
/// batch: the other trees' results are kept, the failure is classified,
/// and the run exits with the budget/fault code.
fn run_batch(args: &[String]) -> ExitCode {
    let mut seed = 0u64;
    let mut grammars = 4u64;
    let mut trees = 64usize;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut repeat = 1usize;
    let mut retries = 0u32;
    let mut fault_seed: Option<u64> = None;
    let mut metrics = false;
    let mut budget = EvalBudget::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut numeric = |name: &str| -> Result<u64, String> {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| format!("fnc2c: {name} takes a number\n{}", usage()))
        };
        let r = match arg.as_str() {
            "--seed" => numeric("--seed").map(|n| seed = n),
            "--grammars" => numeric("--grammars").map(|n| grammars = n),
            "--trees" => numeric("--trees").map(|n| trees = n as usize),
            "--threads" => numeric("--threads").map(|n| threads = (n as usize).max(1)),
            "--repeat" => numeric("--repeat").map(|n| repeat = (n as usize).max(1)),
            "--retries" => numeric("--retries").map(|n| retries = n as u32),
            "--fault-seed" => numeric("--fault-seed").map(|n| fault_seed = Some(n)),
            "--metrics" => {
                metrics = true;
                Ok(())
            }
            flag @ ("--max-steps" | "--max-depth" | "--max-value-bytes" | "--deadline-ms") => {
                let value = it.next().cloned();
                match apply_budget_flag(flag, value.as_deref(), &mut budget) {
                    Some(r) => r,
                    None => unreachable!("matched budget flags only"),
                }
            }
            other => Err(format!("fnc2c: unknown batch flag `{other}`\n{}", usage())),
        };
        if let Err(msg) = r {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_DIAGNOSTICS);
        }
    }

    let mut obs = Obs::new();
    let mut total_trees = 0u64;
    let mut total_steals = 0u64;
    let mut total_secs = 0f64;
    let mut any_lost = false;
    for gi in 0..grammars {
        let params = fnc2::fuzz::CaseParams::for_case(seed, gi);
        let gg = fnc2::fuzz::gen::build_grammar(&params);
        let g = &gg.grammar;
        let cls = match fnc2::analysis::classify(g, 2, fnc2::analysis::Inclusion::Long) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("fnc2c: batch grammar {gi}: transformation failed: {e}");
                return ExitCode::from(EXIT_DIAGNOSTICS);
            }
        };
        let Some(lo) = cls.l_ordered.as_ref() else {
            eprintln!("fnc2c: batch grammar {gi}: generated grammar rejected as non-SNC");
            return ExitCode::from(EXIT_DIAGNOSTICS);
        };
        let seqs = fnc2::visit::build_visit_seqs(g, lo);
        let ev = fnc2::visit::Evaluator::new(g, &seqs);
        let batch: Vec<fnc2::ag::Tree> = (0..trees)
            .map(|t| {
                let tp = fnc2::fuzz::CaseParams {
                    seed: params
                        .seed
                        .wrapping_add((t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                    ..params
                };
                fnc2::fuzz::build_tree(&gg, &tp)
            })
            .collect();
        let plan = fault_seed.map(|fs| fnc2::guard::FaultPlan::from_seed(fs ^ gi, batch.len()));
        let inputs = fnc2::visit::RootInputs::new();
        let start = std::time::Instant::now();
        let mut steals = 0u64;
        let mut last_report = None;
        for _ in 0..repeat {
            let report = fnc2::par::batch_evaluate_guarded_recorded(
                &ev,
                &batch,
                &inputs,
                threads,
                &budget,
                retries,
                plan.as_ref(),
                &mut obs,
            );
            steals += report.stats.steals;
            last_report = Some(report);
        }
        let dt = start.elapsed().as_secs_f64();
        let n = (trees * repeat) as u64;
        let report = last_report.expect("repeat >= 1");
        let (ok, failed, panicked) = report.counts();
        println!(
            "batch: grammar {gi}: {n} trees in {:.2}ms ({:.0} trees/s, {steals} steals); \
             outcomes: {ok} ok, {failed} failed, {panicked} panicked; \
             {} retries, {} panics caught, {} budget trips",
            dt * 1e3,
            n as f64 / dt.max(1e-9),
            report.retries,
            report.panics_caught,
            report.budget_exceeded
        );
        for (i, o) in report.outcomes.iter().enumerate() {
            if let Some(e) = o.error() {
                eprintln!("fnc2c: batch grammar {gi} tree {i}: {e}");
            } else if let Some(m) = o.panic_message() {
                eprintln!("fnc2c: batch grammar {gi} tree {i}: panicked: {m}");
            }
        }
        any_lost |= !report.all_ok();
        total_trees += n;
        total_steals += steals;
        total_secs += dt;
    }
    println!(
        "batch: seed {seed}: {total_trees} trees over {grammars} grammars in {:.2}ms \
         ({:.0} trees/s, {total_steals} steals, {threads} threads)",
        total_secs * 1e3,
        total_trees as f64 / total_secs.max(1e-9)
    );
    if metrics {
        eprint!("{}", obs.render(&fnc2::obs::RawResolver));
    }
    if any_lost {
        ExitCode::from(EXIT_BUDGET)
    } else {
        ExitCode::SUCCESS
    }
}

/// Prints the instrumentation report to stderr for commands whose stdout
/// is a generated artifact (C, Lisp, visit sequences).
fn emit_side_channel(opts: &Opts, obs: &Obs, grammar: &fnc2::ag::Grammar) {
    if opts.metrics || opts.trace.is_some() {
        eprint!("{}", obs.render(&GrammarResolver(grammar)));
    }
}

fn compile(source: &str, obs: &mut Obs) -> Result<fnc2::Compiled, CliError> {
    Pipeline::new()
        .compile_olga_recorded(source, obs)
        .map_err(|e| match e {
            PipelineError::NotSnc(trace) => diag(format!("fnc2c: grammar is not SNC\n{trace}")),
            other => diag(format!("fnc2c: {other}")),
        })
}
