//! `fnc2c` — the command-line front door of the reproduction.
//!
//! ```text
//! fnc2c report  <file.olga>       # class, sizes, partitions, storage plan
//! fnc2c check   <file.olga>       # front-end + well-definedness only
//! fnc2c c       <file.olga>       # translate the AG to C on stdout
//! fnc2c lisp    <file.olga>       # translate the AG to Lisp on stdout
//! fnc2c seqs    <file.olga>       # print the visit sequences
//! ```
//!
//! The input is an OLGA text: any number of modules followed by one
//! attribute grammar (`-` reads standard input).

use std::io::Read as _;
use std::process::ExitCode;

use fnc2::{Pipeline, PipelineError};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match args.as_slice() {
        [cmd, path] => (cmd.as_str(), path.as_str()),
        _ => {
            eprintln!("usage: fnc2c <report|check|c|lisp|seqs> <file.olga | ->");
            return ExitCode::from(2);
        }
    };
    let source = if path == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("fnc2c: cannot read standard input");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fnc2c: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    match run(cmd, &source) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(cmd: &str, source: &str) -> Result<String, String> {
    // The checked AG is needed for the translators.
    let checked = || -> Result<fnc2::olga::CheckedAg, String> {
        let units = fnc2::olga::parse_units(source).map_err(|e| e.to_string())?;
        let mut compiler = fnc2::olga::Compiler::new();
        let mut ag = None;
        for u in units {
            match u {
                fnc2::olga::ast::Unit::Module(m) => {
                    compiler.add_module(m).map_err(|e| e.to_string())?
                }
                fnc2::olga::ast::Unit::Ag(a) => ag = Some(a),
            }
        }
        let ag = ag.ok_or_else(|| "fnc2c: source contains no attribute grammar".to_string())?;
        compiler.check_ag(ag).map_err(|e| e.to_string())
    };

    match cmd {
        "check" => {
            let checked = checked()?;
            let (grammar, info) = fnc2::olga::lower(&checked).map_err(|e| e.to_string())?;
            Ok(format!(
                "ok: {} phyla, {} operators, {} rules ({} explicit copies, {} auto copies)\n",
                grammar.phylum_count(),
                grammar.production_count(),
                grammar.rule_count(),
                info.explicit_copies,
                info.auto_copies
            ))
        }
        "report" => {
            let compiled = compile(source)?;
            Ok(format!("{}\n", compiled.report))
        }
        "c" => {
            let checked = checked()?;
            let compiled = compile(source)?;
            Ok(fnc2::codegen::to_c(&checked, &compiled.grammar, &compiled.seqs))
        }
        "lisp" => {
            let checked = checked()?;
            let compiled = compile(source)?;
            Ok(fnc2::codegen::to_lisp(
                &checked,
                &compiled.grammar,
                &compiled.seqs,
            ))
        }
        "seqs" => {
            let compiled = compile(source)?;
            let mut out = String::new();
            for (p, pi) in compiled.seqs.keys() {
                let seq = compiled.seqs.seq(p, pi);
                let prod = compiled.grammar.production(p);
                out.push_str(&format!("{} (partition {pi}):\n", prod.name()));
                for (v, segment) in seq.segments.iter().enumerate() {
                    out.push_str(&format!("  BEGIN {}\n", v + 1));
                    for instr in segment {
                        match instr {
                            fnc2::visit::Instr::Eval(t) => out.push_str(&format!(
                                "    EVAL  {}\n",
                                compiled.grammar.occ_name(p, *t)
                            )),
                            fnc2::visit::Instr::Visit {
                                child,
                                visit,
                                partition,
                            } => out.push_str(&format!(
                                "    VISIT {visit},{child} (partition {partition})\n"
                            )),
                        }
                    }
                    out.push_str(&format!("  LEAVE {}\n", v + 1));
                }
            }
            Ok(out)
        }
        other => Err(format!("fnc2c: unknown command `{other}`")),
    }
}

fn compile(source: &str) -> Result<fnc2::Compiled, String> {
    Pipeline::new().compile_olga(source).map_err(|e| match e {
        PipelineError::NotSnc(trace) => format!("fnc2c: grammar is not SNC\n{trace}"),
        other => format!("fnc2c: {other}"),
    })
}
