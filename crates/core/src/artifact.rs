//! Persistent compiled-table artifacts: emit, load, and cache.
//!
//! FNC-2 is generate-once / evaluate-many. This module makes the "once"
//! hold across process boundaries: [`emit_tables`] serializes everything
//! downstream of the OLGA front end into a fingerprinted binary artifact
//! (see [`fnc2_tables`]), and [`load_tables`] turns such an artifact back
//! into a [`Compiled`] — re-running only the cheap front end to rebuild
//! the semantic closures, while the expensive Figure-3 cascade results
//! (classification, visit sequences, storage plan) are deserialized.
//!
//! [`compile_olga_cached`] wraps the two in an on-disk cache keyed by the
//! content fingerprint. The cache is never trusted: a stale, corrupt,
//! truncated or version-skewed artifact is rejected with a classified
//! [`ArtifactError`], counted under `tables.cache_rejected`, and silently
//! replaced by a full recompilation — never a panic, never a wrong
//! answer.

use std::fmt;
use std::path::{Path, PathBuf};

use fnc2_obs::{Key, Obs, Recorder as _};
use fnc2_space::ObjectIndex;
use fnc2_tables::fingerprint_source;
pub use fnc2_tables::store::{GcReport, TableStore};
pub use fnc2_tables::{ArtifactError, Tables, TablesConfig};
use fnc2_vfs::{RealVfs, Vfs};

use crate::{olga_front_end_recorded, Compiled, PhaseTimes, Pipeline, PipelineError, Report};

impl Pipeline {
    /// The artifact-facing view of this configuration (the knobs that
    /// change analysis results and therefore partake in the fingerprint).
    pub fn tables_config(&self) -> TablesConfig {
        TablesConfig {
            max_oag_k: self.max_oag_k,
            inclusion: self.inclusion,
            optimize_space: self.optimize_space,
        }
    }
}

/// Why loading an artifact did not produce a [`Compiled`].
#[derive(Debug)]
pub enum TablesError {
    /// The artifact is unusable — stale fingerprint, version skew,
    /// corruption, or a configuration mismatch. The caller should fall
    /// back to full recompilation.
    Rejected(ArtifactError),
    /// The source itself fails the OLGA front end. This is a user
    /// diagnostic that a recompilation would reproduce, not an artifact
    /// problem, so callers surface it instead of falling back.
    Source(Box<PipelineError>),
}

impl fmt::Display for TablesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TablesError::Rejected(e) => write!(f, "{e}"),
            TablesError::Source(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TablesError {}

/// Serializes a finished compilation into artifact bytes for `source`
/// under `pipeline`'s configuration.
pub fn emit_tables(compiled: &Compiled, pipeline: &Pipeline, source: &str) -> Vec<u8> {
    Tables::build(
        &compiled.grammar,
        pipeline.tables_config(),
        Some(source),
        &compiled.classification,
        &compiled.seqs,
        compiled.flat.as_ref(),
        compiled.lifetimes.as_ref(),
        compiled.space_plan.as_ref(),
        &compiled.lint.diags,
    )
    .to_bytes()
}

/// [`load_tables_recorded`] without instrumentation.
///
/// # Errors
///
/// See [`TablesError`].
pub fn load_tables(
    bytes: &[u8],
    source: &str,
    pipeline: &Pipeline,
) -> Result<Compiled, TablesError> {
    load_tables_recorded(bytes, source, pipeline, &mut Obs::new())
}

/// Loads a compiled grammar from artifact bytes: verifies header,
/// checksum, configuration and fingerprint, re-runs the OLGA front end on
/// `source` to rebuild the grammar (with its semantic closures), verifies
/// the artifact's grammar-shape and compiled-program sections against it,
/// and assembles a [`Compiled`] from the deserialized cascade results.
///
/// The whole load runs inside a `tables.load` phase span, with the
/// nested `olga.*` front-end spans inside it.
///
/// # Errors
///
/// [`TablesError::Rejected`] for every artifact defect (fall back to
/// recompilation); [`TablesError::Source`] when `source` itself does not
/// compile.
pub fn load_tables_recorded(
    bytes: &[u8],
    source: &str,
    pipeline: &Pipeline,
    obs: &mut Obs,
) -> Result<Compiled, TablesError> {
    obs.phases.enter("tables.load");
    let r = load_inner(bytes, source, pipeline, obs);
    obs.phases.leave();
    r
}

fn load_inner(
    bytes: &[u8],
    source: &str,
    pipeline: &Pipeline,
    obs: &mut Obs,
) -> Result<Compiled, TablesError> {
    let config = pipeline.tables_config();
    let (tables, found) = Tables::from_bytes(bytes).map_err(TablesError::Rejected)?;
    if tables.config != config {
        return Err(TablesError::Rejected(ArtifactError::ConfigMismatch));
    }
    let expected = fingerprint_source(source, &config);
    if found != expected {
        return Err(TablesError::Rejected(ArtifactError::FingerprintMismatch {
            found,
            expected,
        }));
    }
    // The space sections must be present exactly when the configuration
    // says the optimizer ran.
    let space_sections = [
        tables.flat.is_some(),
        tables.lifetimes.is_some(),
        tables.space_plan.is_some(),
    ];
    if space_sections != [config.optimize_space; 3] {
        return Err(TablesError::Rejected(ArtifactError::Corrupt(
            "space sections do not match the recorded configuration".into(),
        )));
    }
    let grammar =
        olga_front_end_recorded(source, obs).map_err(|e| TablesError::Source(Box::new(e)))?;
    tables
        .verify_against(&grammar)
        .map_err(TablesError::Rejected)?;

    let Tables {
        classification,
        seqs,
        flat,
        lifetimes,
        space_plan,
        lint,
        ..
    } = tables;
    // Replay the cached diagnostics: cached startups report the same
    // lint findings (and feed the same `lint.*` counters) as a full
    // compile, without re-running the analyses.
    let lint = fnc2_lint::LintReport::new(lint);
    fnc2_lint::record_report(&lint, obs);
    // The object index is a cheap deterministic function of the grammar;
    // it is rebuilt rather than serialized.
    let objects = flat.is_some().then(|| ObjectIndex::new(&grammar));
    let report = Report {
        class: classification.class,
        phyla: grammar.phylum_count(),
        operators: grammar.production_count(),
        occurrences: grammar.attr_count(),
        rules: grammar.rule_count(),
        transform: classification.l_ordered.as_ref().map(|l| l.stats.clone()),
        space: space_plan.as_ref().map(|p| p.stats.clone()),
        // The cascade did not run, so the generator phase times are zero.
        times: PhaseTimes::default(),
    };
    Ok(Compiled {
        grammar,
        classification,
        seqs,
        flat,
        objects,
        lifetimes,
        space_plan,
        lint,
        report,
        intern: pipeline.intern,
    })
}

/// Outcome of one consultation of the artifact cache.
#[derive(Debug)]
pub enum CacheOutcome {
    /// A valid artifact was found and loaded; the cascade was skipped.
    Hit,
    /// No artifact existed for this fingerprint; the grammar was compiled
    /// and the result stored.
    Miss,
    /// An artifact existed but was rejected for the carried reason; the
    /// grammar was recompiled and the artifact replaced.
    Rejected(ArtifactError),
}

/// The file an artifact for `fingerprint` is cached under.
pub fn cache_path(dir: &Path, fingerprint: u64) -> PathBuf {
    dir.join(format!("fnc2-{fingerprint:016x}.tbl"))
}

/// Compiles OLGA source through an on-disk artifact cache: on a hit the
/// Figure-3 cascade is skipped entirely; on a miss (or a rejected stale /
/// corrupt artifact) the source is compiled in full and the artifact
/// (re)written. All disk traffic goes through [`RealVfs`]; see
/// [`compile_olga_cached_vfs`] for the injectable-backend variant the
/// crash harness drives.
///
/// # Errors
///
/// Exactly the failure modes of
/// [`compile_olga`](Pipeline::compile_olga) — cache trouble is never an
/// error.
pub fn compile_olga_cached(
    pipeline: &Pipeline,
    source: &str,
    cache_dir: &Path,
    obs: &mut Obs,
) -> Result<(Compiled, CacheOutcome), PipelineError> {
    compile_olga_cached_vfs(pipeline, source, cache_dir, &RealVfs, obs)
}

/// [`compile_olga_cached`] over an explicit [`Vfs`] backend.
///
/// Cache consultation bumps exactly one of the `tables.cache_hit` /
/// `tables.cache_miss` / `tables.cache_rejected` counters. Crash
/// consistency:
///
/// - orphaned temp files from earlier crashed writers are swept before
///   the cache is consulted (counted under `tables.temps_swept`);
/// - a rejected artifact is moved to the `quarantine/` subdirectory —
///   tagged with the rejection class, counted under `tables.quarantined`
///   — instead of being silently overwritten, so the evidence survives;
/// - cache writes are best-effort and atomic (temp file + rename): a
///   full, faulty or unwritable cache directory never fails the
///   compilation.
pub fn compile_olga_cached_vfs(
    pipeline: &Pipeline,
    source: &str,
    cache_dir: &Path,
    vfs: &dyn Vfs,
    obs: &mut Obs,
) -> Result<(Compiled, CacheOutcome), PipelineError> {
    let fingerprint = fingerprint_source(source, &pipeline.tables_config());
    let store = TableStore::new(cache_dir, vfs);
    if let Ok(swept @ 1..) = store.sweep_temps() {
        obs.count(Key::TablesTempsSwept, swept as u64);
    }
    let outcome = match store.load(fingerprint) {
        Ok(Some(bytes)) => match load_tables_recorded(&bytes, source, pipeline, obs) {
            Ok(compiled) => {
                obs.count(Key::TablesCacheHit, 1);
                return Ok((compiled, CacheOutcome::Hit));
            }
            Err(TablesError::Source(e)) => return Err(*e),
            Err(TablesError::Rejected(e)) => {
                if let Ok(Some(_)) = store.quarantine(fingerprint, e.tag()) {
                    obs.count(Key::TablesQuarantined, 1);
                }
                CacheOutcome::Rejected(e)
            }
        },
        // A clean miss — or a cache directory too faulty to read, which
        // is the same thing to the compiler.
        Ok(None) | Err(_) => CacheOutcome::Miss,
    };
    match outcome {
        CacheOutcome::Rejected(_) => obs.count(Key::TablesCacheRejected, 1),
        _ => obs.count(Key::TablesCacheMiss, 1),
    }
    let compiled = pipeline.compile_olga_recorded(source, obs)?;
    let bytes = emit_tables(&compiled, pipeline, source);
    let _ = store.store(fingerprint, &bytes);
    Ok((compiled, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNT: &str = r#"
        attribute grammar count;
          phylum S;
          operator leaf : S ::= ;
          operator node : S ::= S;
          synthesized n : int of S;
          for leaf { S.n := 0; }
          for node { S$1.n := S$2.n + 1; }
        end
    "#;

    fn emit(source: &str, pipeline: &Pipeline) -> Vec<u8> {
        let compiled = pipeline.compile_olga(source).unwrap();
        emit_tables(&compiled, pipeline, source)
    }

    #[test]
    fn emit_then_load_round_trips() {
        let pipeline = Pipeline::new();
        let bytes = emit(COUNT, &pipeline);
        let loaded = load_tables(&bytes, COUNT, &pipeline).unwrap();
        let fresh = pipeline.compile_olga(COUNT).unwrap();
        assert_eq!(loaded.report.class, fresh.report.class);
        assert!(loaded.flat.is_some());
        assert!(loaded.objects.is_some());
        // The loaded evaluator computes the same answers.
        let tree = crate::smoke_tree(&loaded.grammar).unwrap();
        let (vals, _) = loaded.evaluate(&tree, &Default::default()).unwrap();
        let (fresh_vals, _) = fresh.evaluate(&tree, &Default::default()).unwrap();
        let s = loaded.grammar.phylum_by_name("S").unwrap();
        let n = loaded.grammar.attr_by_name(s, "n").unwrap();
        assert_eq!(
            vals.get(&loaded.grammar, tree.root(), n),
            fresh_vals.get(&fresh.grammar, tree.root(), n)
        );
    }

    #[test]
    fn stale_source_is_a_fingerprint_mismatch() {
        let pipeline = Pipeline::new();
        let bytes = emit(COUNT, &pipeline);
        let edited = COUNT.replace("+ 1", "+ 2");
        match load_tables(&bytes, &edited, &pipeline) {
            Err(TablesError::Rejected(ArtifactError::FingerprintMismatch { .. })) => {}
            other => panic!("expected FingerprintMismatch, got {other:?}"),
        }
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let pipeline = Pipeline::new();
        let bytes = emit(COUNT, &pipeline);
        let no_space = Pipeline {
            optimize_space: false,
            ..Pipeline::new()
        };
        match load_tables(&bytes, COUNT, &no_space) {
            Err(TablesError::Rejected(ArtifactError::ConfigMismatch)) => {}
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
    }

    #[test]
    fn cache_miss_then_hit_with_counters() {
        let pipeline = Pipeline::new();
        let dir = std::env::temp_dir().join(format!("fnc2-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut obs = Obs::new();
        let (_, first) = compile_olga_cached(&pipeline, COUNT, &dir, &mut obs).unwrap();
        assert!(matches!(first, CacheOutcome::Miss), "{first:?}");
        assert_eq!(obs.metrics.counter("tables.cache_miss"), 1);
        let (_, second) = compile_olga_cached(&pipeline, COUNT, &dir, &mut obs).unwrap();
        assert!(matches!(second, CacheOutcome::Hit), "{second:?}");
        assert_eq!(obs.metrics.counter("tables.cache_hit"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cached_artifact_is_rejected_and_replaced() {
        let pipeline = Pipeline::new();
        let dir = std::env::temp_dir().join(format!("fnc2-cache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut obs = Obs::new();
        compile_olga_cached(&pipeline, COUNT, &dir, &mut obs).unwrap();
        let fp = fingerprint_source(COUNT, &pipeline.tables_config());
        let path = cache_path(&dir, fp);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let (_, outcome) = compile_olga_cached(&pipeline, COUNT, &dir, &mut obs).unwrap();
        assert!(matches!(outcome, CacheOutcome::Rejected(_)), "{outcome:?}");
        assert_eq!(obs.metrics.counter("tables.cache_rejected"), 1);
        // The corrupt artifact went to quarantine, tagged with the
        // rejection class, and a fresh one was written in its place.
        assert_eq!(obs.metrics.counter("tables.quarantined"), 1);
        let store = TableStore::new(&dir, &RealVfs);
        let quarantined = store.quarantined().unwrap();
        assert_eq!(quarantined.len(), 1);
        assert_eq!(std::fs::read(&quarantined[0]).unwrap(), bytes);
        let (_, third) = compile_olga_cached(&pipeline, COUNT, &dir, &mut obs).unwrap();
        assert!(matches!(third, CacheOutcome::Hit), "{third:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crashed_writer_temp_is_swept_on_consultation() {
        let pipeline = Pipeline::new();
        let dir = std::env::temp_dir().join(format!("fnc2-cache-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let stranded = dir.join("fnc2-0000000000000001.tbl.tmp-999-0");
        std::fs::write(&stranded, b"half an artifact").unwrap();
        let mut obs = Obs::new();
        compile_olga_cached(&pipeline, COUNT, &dir, &mut obs).unwrap();
        assert!(!stranded.exists(), "orphaned temp survived the sweep");
        assert_eq!(obs.metrics.counter("tables.temps_swept"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_cache_never_fails_compilation() {
        use fnc2_vfs::{FaultVfs, IoFaultKind, IoFaultPlan, PlannedIoFault};
        let pipeline = Pipeline::new();
        let dir = std::env::temp_dir().join(format!("fnc2-cache-faulty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A permanently full disk: every write fails from op 0 on.
        let vfs = FaultVfs::new(IoFaultPlan::with_faults(vec![PlannedIoFault {
            nth: 0,
            kind: IoFaultKind::NoSpace,
            transient: false,
        }]));
        let mut obs = Obs::new();
        let (compiled, outcome) =
            compile_olga_cached_vfs(&pipeline, COUNT, &dir, &vfs, &mut obs).unwrap();
        assert!(matches!(outcome, CacheOutcome::Miss), "{outcome:?}");
        let tree = crate::smoke_tree(&compiled.grammar).unwrap();
        compiled.evaluate(&tree, &Default::default()).unwrap();
        // Nothing but (possibly) an empty directory was left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .map(|rd| rd.map(|e| e.unwrap().path()).collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "leftovers: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
