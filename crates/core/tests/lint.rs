//! Lint pass vs. the corpus.
//!
//! The classics must come back clean, a deliberately degraded grammar
//! must trip every warning code the structural lints own, the
//! pathological ladder must map onto the circularity codes with
//! verified witnesses, front-end rejections must surface as `L101`/
//! `L102` diagnostics (never a hard failure), the JSON report must be
//! byte-stable run over run, and a compiled-table artifact must replay
//! the exact diagnostics of the compile that produced it.

use fnc2::analysis::{classify, Inclusion};
use fnc2::artifact::{emit_tables, load_tables};
use fnc2::lint::{lint_grammar, Code, Severity};
use fnc2::Pipeline;
use fnc2_corpus::{circular, dnc_not_oag, oag1_not_oag0, snc_only, DESK_OLGA, MINIPASCAL_OLGA};

/// Every structural warning in one small grammar: `scratch` is computed
/// but never read (L001) by a rule that feeds nothing else (L002), `U`
/// is disconnected from the root (L003 for `lost`), `W` only derives
/// itself (L004, plus L003 for `spin`), and `out <- a <- b` is pure
/// copy plumbing (L005).
const DEGRADED: &str = r#"
attribute grammar degraded;
  phylum S, T, V, U, W;
  operator top   : S ::= T;
  operator mid   : T ::= V;
  operator leafv : V ::= ;
  operator lost  : U ::= ;
  operator spin  : W ::= W;

  synthesized out : int of S;
  synthesized a : int of T;
  synthesized b : int of V;
  synthesized scratch : int of T;
  synthesized uv : int of U;
  synthesized wv : int of W;

  for top   { S.out := T.a; }
  for mid   { T.a := V.b;  T.scratch := V.b + 1; }
  for leafv { V.b := 7; }
  for lost  { U.uv := 1; }
  for spin  { W$1.wv := W$2.wv; }
end
"#;

#[test]
fn corpus_classics_lint_clean() {
    let pipeline = Pipeline::new();
    for (name, source) in [("desk", DESK_OLGA), ("minipascal", MINIPASCAL_OLGA)] {
        let report = pipeline.lint_olga(source);
        assert!(
            report.is_clean(),
            "{name} should lint clean, got:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn degraded_grammar_trips_every_structural_code() {
    let report = Pipeline::new().lint_olga(DEGRADED);
    assert_eq!(report.errors(), 0, "{}", report.render_text());
    for code in [
        Code::UnusedAttribute,
        Code::DeadRule,
        Code::UnreachableProduction,
        Code::UnderivablePhylum,
        Code::CopyChain,
    ] {
        assert!(
            report.with_code(code).count() > 0,
            "expected at least one {} finding, got:\n{}",
            code.as_str(),
            report.render_text()
        );
    }
    // Spot-check the stories the messages tell.
    assert!(report
        .with_code(Code::UnusedAttribute)
        .any(|d| d.message.contains("T.scratch")));
    assert!(report
        .with_code(Code::UnreachableProduction)
        .any(|d| d.message.contains("`lost`")));
    assert!(report
        .with_code(Code::UnderivablePhylum)
        .any(|d| d.message.contains("`W`")));
    assert!(report
        .with_code(Code::CopyChain)
        .any(|d| d.message.contains("S.out <- T.a <- V.b")));
}

#[test]
fn pathological_ladder_maps_to_circularity_codes() {
    // Not SNC: the hard stop, an error with a verified witness.
    let g = circular();
    let cls = classify(&g, 2, Inclusion::Long).unwrap();
    let report = lint_grammar(&g, Some(&cls));
    let not_snc: Vec<_> = report.with_code(Code::NotSnc).collect();
    assert_eq!(not_snc.len(), 1, "{}", report.render_text());
    assert_eq!(not_snc[0].severity, Severity::Error);
    assert!(
        not_snc[0]
            .notes
            .iter()
            .any(|n| n.contains("witness verified")),
        "witness must verify: {:?}",
        not_snc[0].notes
    );

    // SNC but not DNC: a warning — the transformation still applies.
    let g = snc_only();
    let cls = classify(&g, 2, Inclusion::Long).unwrap();
    let report = lint_grammar(&g, Some(&cls));
    assert_eq!(
        report.with_code(Code::NotDnc).count(),
        1,
        "{}",
        report.render_text()
    );
    assert_eq!(report.errors(), 0);

    // DNC but not OAG(k): a warning pointing at the ordered test.
    // Three independent conflicts need three repairs, so k = 1 fails.
    let g = dnc_not_oag(3);
    let cls = classify(&g, 1, Inclusion::Long).unwrap();
    let report = lint_grammar(&g, Some(&cls));
    assert_eq!(
        report.with_code(Code::NotOag).count(),
        1,
        "{}",
        report.render_text()
    );
    assert_eq!(report.errors(), 0);

    // OAG(1) passes the circularity lints when k=1 is tested (the
    // ladder grammars still carry incidental copy-chain warnings),
    // L012 when only k=0 is.
    let g = oag1_not_oag0();
    let cls = classify(&g, 1, Inclusion::Long).unwrap();
    let report = lint_grammar(&g, Some(&cls));
    for code in [Code::NotSnc, Code::NotDnc, Code::NotOag] {
        assert_eq!(
            report.with_code(code).count(),
            0,
            "{}",
            report.render_text()
        );
    }
    let cls = classify(&g, 0, Inclusion::Long).unwrap();
    let report = lint_grammar(&g, Some(&cls));
    assert_eq!(
        report.with_code(Code::NotOag).count(),
        1,
        "{}",
        report.render_text()
    );
}

#[test]
fn front_end_rejections_become_diagnostics() {
    let pipeline = Pipeline::new();

    // A parse error: L102 with the source position.
    let report = pipeline.lint_olga("attribute grammar broken;\n  phylum ;\nend\n");
    assert_eq!(report.errors(), 1, "{}", report.render_text());
    let syntax: Vec<_> = report.with_code(Code::FrontSyntax).collect();
    assert_eq!(syntax.len(), 1);
    assert_ne!((syntax[0].span.line, syntax[0].span.col), (0, 0));

    // A check error (undeclared attribute): L101, still not a panic.
    let report = pipeline.lint_olga(
        "attribute grammar broken;\n  phylum S;\n  operator leaf : S ::= ;\n  \
         for leaf { S.ghost := 1; }\nend\n",
    );
    assert!(report.errors() >= 1, "{}", report.render_text());
    assert!(report.with_code(Code::FrontCheck).count() >= 1);
}

#[test]
fn json_report_is_byte_stable() {
    // Two pipelines, two runs: the rendered JSON must be identical
    // byte for byte — the ordering contract `sort_diagnostics` pins.
    let a = Pipeline::new().lint_olga(DEGRADED).to_json().to_string();
    let b = Pipeline::new().lint_olga(DEGRADED).to_json().to_string();
    assert_eq!(a, b);
    let ta = Pipeline::new().lint_olga(DEGRADED).render_text();
    let tb = Pipeline::new().lint_olga(DEGRADED).render_text();
    assert_eq!(ta, tb);
}

#[test]
fn cached_artifact_replays_lint_diagnostics() {
    let pipeline = Pipeline::new();
    let compiled = pipeline.compile_olga(DEGRADED).unwrap();
    assert!(
        !compiled.lint.diags.is_empty(),
        "degraded grammar must warn"
    );

    let bytes = emit_tables(&compiled, &pipeline, DEGRADED);
    let loaded = load_tables(&bytes, DEGRADED, &pipeline).unwrap();
    assert_eq!(
        loaded.lint.diags, compiled.lint.diags,
        "cached startup must replay the compile's diagnostics"
    );
    assert_eq!(
        loaded.lint.to_json().to_string(),
        compiled.lint.to_json().to_string()
    );
}
