//! Dependency-slice (`fnc2c explain`) correctness on the corpus grammars:
//! the dynamic slices reconstructed from evaluation events must match
//! dependency sets computed by hand from the semantic rules.

use std::collections::BTreeSet;

use fnc2::ag::{AttrId, Grammar, NodeId, Tree, TreeBuilder, Value};
use fnc2::obs::Obs;
use fnc2::visit::{dependency_slice, DynamicEvaluator, Inst, RootInputs, Slice};
use fnc2::Pipeline;

fn attr(g: &Grammar, phylum: &str, name: &str) -> AttrId {
    let ph = g.phylum_by_name(phylum).expect("phylum exists");
    g.attr_by_name(ph, name).expect("attr exists")
}

/// Renders the slice's instance set as sorted `attr@node` strings — the
/// stable form the hand-computed sets below are written in.
fn instance_set(slice: &Slice, g: &Grammar, tree: &Tree) -> BTreeSet<String> {
    slice
        .instances()
        .iter()
        .map(|i| i.display(g, tree))
        .collect()
}

/// `let x = 2 in x + 3`, nodes in `TreeBuilder` creation order:
/// 0 `lit(2)`, 1 `var(x)`, 2 `lit(3)`, 3 `add(1, 2)`, 4 `letx(0, 3)`,
/// 5 `prog(4)` (root).
fn desk_let_tree(g: &Grammar) -> Tree {
    let mut tb = TreeBuilder::new(g);
    let bound = tb
        .node_with_token(
            g.production_by_name("lit").unwrap(),
            &[],
            Some(Value::Int(2)),
        )
        .unwrap();
    let var = tb
        .node_with_token(
            g.production_by_name("var").unwrap(),
            &[],
            Some(Value::str("x")),
        )
        .unwrap();
    let three = tb
        .node_with_token(
            g.production_by_name("lit").unwrap(),
            &[],
            Some(Value::Int(3)),
        )
        .unwrap();
    let add = tb.op("add", &[var, three]).unwrap();
    let letx = tb
        .node_with_token(
            g.production_by_name("letx").unwrap(),
            &[bound, add],
            Some(Value::str("x")),
        )
        .unwrap();
    let root = tb.op("prog", &[letx]).unwrap();
    tb.finish_root(root).unwrap()
}

/// The slice of `value@root` on the desk tree above, chased by hand
/// through the grammar's rules:
///
/// ```text
/// value@5 := value@4                    (prog copy)
/// value@4 := value@3                    (letx copies the body value)
/// value@3 := add(value@1, value@2)
/// value@1 := deref(env@1, "x")          (var)
/// value@2 := token 3                    (lit — reads no attribute)
/// env@1   := env@3                      (add distributes env)
/// env@3   := bind(env@4, "x", value@0)  (letx extends the body env)
/// env@4   := {}                         (prog constant)
/// value@0 := token 2                    (lit)
/// ```
///
/// Crucially `env@2` (the env of `lit(3)`) is **absent**: `lit` never
/// reads its environment, so the slice is a strict subset of the
/// decorated tree.
const DESK_VALUE_SLICE: &[&str] = &[
    "value@5", "value@4", "value@3", "value@2", "value@1", "value@0", "env@1", "env@3", "env@4",
];

#[test]
fn desk_value_slice_matches_hand_computed_set() {
    let compiled = Pipeline::new().compile(fnc2_corpus::desk()).unwrap();
    let g = &compiled.grammar;
    let tree = desk_let_tree(g);

    let mut obs = Obs::with_trace(1 << 12);
    compiled
        .evaluate_recorded(&tree, &RootInputs::new(), &mut obs)
        .unwrap();
    let buf = obs.events.as_ref().unwrap();
    let value = attr(g, "Prog", "value");
    let slice = dependency_slice(g, &tree, buf.iter(), tree.root(), value);

    let want: BTreeSet<String> = DESK_VALUE_SLICE.iter().map(|s| s.to_string()).collect();
    assert_eq!(instance_set(&slice, g, &tree), want);
    // Everything in the slice was computed — the desk root has no
    // inherited inputs, so nothing is undefined.
    assert!(slice.undefined.is_empty(), "{:?}", slice.undefined);
    // The target step comes first and carries its visit number
    // (exhaustive runs have visit structure).
    assert_eq!(slice.steps[0].inst, Inst::Attr(tree.root(), value));
    assert!(slice.steps.iter().all(|s| s.visit.is_some()));
    // 9 defined instances, and env@2 is genuinely excluded.
    assert_eq!(slice.steps.len(), 9);
}

#[test]
fn desk_slice_agrees_between_exhaustive_and_demand_evaluation() {
    let compiled = Pipeline::new().compile(fnc2_corpus::desk()).unwrap();
    let g = &compiled.grammar;
    let tree = desk_let_tree(g);
    let value = attr(g, "Prog", "value");

    let mut obs = Obs::with_trace(1 << 12);
    compiled
        .evaluate_recorded(&tree, &RootInputs::new(), &mut obs)
        .unwrap();
    let exhaustive = dependency_slice(
        g,
        &tree,
        obs.events.as_ref().unwrap().iter(),
        tree.root(),
        value,
    );

    let dyn_ev = DynamicEvaluator::new(g);
    let mut obs2 = Obs::with_trace(1 << 12);
    dyn_ev
        .evaluate_recorded(&tree, &RootInputs::new(), &mut obs2)
        .unwrap();
    let demand = dependency_slice(
        g,
        &tree,
        obs2.events.as_ref().unwrap().iter(),
        tree.root(),
        value,
    );

    // Same dynamic dependencies regardless of evaluation order; only the
    // visit annotations differ (demand-driven firings have none).
    assert_eq!(
        instance_set(&exhaustive, g, &tree),
        instance_set(&demand, g, &tree)
    );
    assert!(demand.steps.iter().all(|s| s.visit.is_none()));
}

#[test]
fn minipascal_code_slice_matches_hand_computed_set() {
    let (g, _) = fnc2_corpus::minipascal();
    let compiled = Pipeline::new().compile(g).unwrap();
    let g = &compiled.grammar;
    let tree =
        fnc2_corpus::parse_minipascal(g, "program t; var x : integer; begin x := 1 end.").unwrap();

    let mut obs = Obs::with_trace(1 << 14);
    compiled
        .evaluate_recorded(&tree, &RootInputs::new(), &mut obs)
        .unwrap();
    let code = attr(g, "Prog", "code");
    let slice = dependency_slice(
        g,
        &tree,
        obs.events.as_ref().unwrap().iter(),
        tree.root(),
        code,
    );

    // Name tree nodes by production so the hand-computed set below does
    // not depend on parser creation order.
    let by_prod = |name: &str| -> NodeId {
        let mut found = None;
        for (n, _) in tree.preorder() {
            if g.production(tree.node(n).production()).name() == name {
                assert!(found.is_none(), "production {name} applied twice");
                found = Some(n);
            }
        }
        found.unwrap_or_else(|| panic!("no {name} node"))
    };
    let inst = |prod: &str, attr_name: &str| -> String {
        let n = by_prod(prod);
        let ph = tree.phylum(g, n);
        format!(
            "{}@{}",
            g.attr(g.attr_by_name(ph, attr_name).unwrap()).name(),
            n.index()
        )
    };

    // Hand-computed from the OLGA rules for `program t; var x : integer;
    // begin x := 1 end.`:
    //
    //   code@program := ENT count ++ code(stmts) ++ HLT
    //     -> count@decls_cons -> count@decls_nil
    //     -> code@stmts_cons -> code@assign, code@stmts_nil
    //   code@assign reads code@elit and env@assign (for the STO address)
    //     env@assign <- env@stmts_cons (auto-copy) <- defs@decls_cons
    //     defs@decls_cons := insert(defs@decls_nil, dname@decl,
    //                               (base@decls_cons, dty@decl))
    //     dty@decl <- tname@tint; base@decls_cons := 0
    //
    // `ty@elit`, every `errs`, and the whole labin/labout chain are
    // *not* read on the code path and must be absent.
    let want: BTreeSet<String> = [
        inst("program", "code"),
        inst("decls_cons", "count"),
        inst("decls_nil", "count"),
        inst("stmts_cons", "code"),
        inst("assign", "code"),
        inst("stmts_nil", "code"),
        inst("elit", "code"),
        inst("assign", "env"),
        inst("stmts_cons", "env"),
        inst("decls_cons", "defs"),
        inst("decls_nil", "defs"),
        inst("decl", "dname"),
        inst("decl", "dty"),
        inst("decls_cons", "base"),
        inst("tint", "tname"),
    ]
    .into_iter()
    .collect();
    assert_eq!(instance_set(&slice, g, &tree), want);
    assert!(slice.undefined.is_empty(), "{:?}", slice.undefined);

    // Precision spot-checks: present and absent instances.
    let got = instance_set(&slice, g, &tree);
    assert!(!got.contains(&inst("elit", "ty")));
    assert!(!got.contains(&inst("program", "errs")));
    assert!(!got.contains(&inst("assign", "labin")));
}
