//! Corruption matrix for the compiled-table artifact loader.
//!
//! Every class of damaged artifact — truncated, bit-flipped fingerprint,
//! version skew, checksum failure, artifact for a different grammar —
//! must be *classified* (the right [`ArtifactError`] variant) and must
//! *fall back* to full recompilation when it arrives through the cache:
//! never a panic, never a wrong answer, always the `tables.cache_rejected`
//! counter.

use std::path::PathBuf;

use fnc2::artifact::{
    cache_path, compile_olga_cached, emit_tables, load_tables, CacheOutcome, TablesError,
};
use fnc2::obs::Obs;
use fnc2::tables::{fingerprint_source, ArtifactError, HEADER_LEN};
use fnc2::Pipeline;

const COUNT: &str = r#"
attribute grammar count;
  phylum S;
  operator leaf : S ::= ;
  operator node : S ::= S;
  synthesized n : int of S;
  for leaf { S.n := 0; }
  for node { S$1.n := S$2.n + 1; }
end
"#;

const DEPTH: &str = r#"
attribute grammar depth;
  phylum S;
  operator leaf : S ::= ;
  operator node : S ::= S;
  inherited d : int of S;
  for node { S$2.d := S$1.d + 1; }
end
"#;

fn emit(source: &str) -> Vec<u8> {
    let pipeline = Pipeline::new();
    let compiled = pipeline.compile_olga(source).unwrap();
    emit_tables(&compiled, &pipeline, source)
}

/// Loads `bytes` as an artifact for [`COUNT`] and returns the rejection.
fn rejection(bytes: &[u8]) -> ArtifactError {
    match load_tables(bytes, COUNT, &Pipeline::new()) {
        Err(TablesError::Rejected(e)) => e,
        other => panic!("expected a classified rejection, got {other:?}"),
    }
}

#[test]
fn every_truncation_point_is_classified() {
    let bytes = emit(COUNT);
    // Every prefix must produce a classified error, not a panic. (The
    // loader sees arbitrary prefixes after a crashed or racing writer.)
    for len in 0..bytes.len() {
        let e = rejection(&bytes[..len]);
        assert!(
            matches!(
                e,
                ArtifactError::Truncated
                    | ArtifactError::ChecksumMismatch
                    | ArtifactError::Corrupt(_)
            ),
            "prefix of {len} bytes: unexpected classification {e:?}"
        );
    }
}

#[test]
fn flipped_fingerprint_byte_is_a_fingerprint_mismatch() {
    let bytes = emit(COUNT);
    // The fingerprint field sits at header offsets 12..20 and is
    // deliberately outside the payload checksum, so damage here must be
    // caught by the fingerprint comparison itself.
    for off in 12..20 {
        let mut b = bytes.clone();
        b[off] ^= 0x01;
        match rejection(&b) {
            ArtifactError::FingerprintMismatch { .. } => {}
            other => panic!("offset {off}: expected FingerprintMismatch, got {other:?}"),
        }
    }
    // Sanity: the unflipped artifact still loads.
    assert!(load_tables(&bytes, COUNT, &Pipeline::new()).is_ok());
}

#[test]
fn wrong_format_version_is_version_skew() {
    let mut bytes = emit(COUNT);
    bytes[8] ^= 0xFF; // low byte of the little-endian format version
    match rejection(&bytes) {
        ArtifactError::VersionSkew { found, expected } => {
            assert_eq!(expected, fnc2::tables::FORMAT_VERSION);
            assert_ne!(found, expected);
        }
        other => panic!("expected VersionSkew, got {other:?}"),
    }
}

#[test]
fn payload_damage_is_a_checksum_mismatch() {
    let mut bytes = emit(COUNT);
    let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
    bytes[mid] ^= 0x40;
    match rejection(&bytes) {
        ArtifactError::ChecksumMismatch => {}
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn artifact_for_a_different_grammar_is_rejected() {
    // A perfectly valid artifact — for someone else's grammar. The source
    // fingerprint catches it before any front-end work runs.
    let depth_bytes = emit(DEPTH);
    match rejection(&depth_bytes) {
        ArtifactError::FingerprintMismatch { .. } => {}
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fnc2-tbl-matrix-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Plants `bytes` at the cache slot for [`COUNT`] and runs the cached
/// compile; returns the outcome, the rejected-counter value, and the
/// compiled result of the fallback.
fn run_with_planted(tag: &str, bytes: &[u8]) -> (CacheOutcome, u64) {
    let pipeline = Pipeline::new();
    let dir = scratch_dir(tag);
    std::fs::create_dir_all(&dir).unwrap();
    let fp = fingerprint_source(COUNT, &pipeline.tables_config());
    std::fs::write(cache_path(&dir, fp), bytes).unwrap();
    let mut obs = Obs::new();
    let (compiled, outcome) = compile_olga_cached(&pipeline, COUNT, &dir, &mut obs).unwrap();
    // Whatever the damage, the fallback must produce a working compile.
    let tree = fnc2::smoke_tree(&compiled.grammar).unwrap();
    compiled.evaluate(&tree, &Default::default()).unwrap();
    let rejected = obs.metrics.counter("tables.cache_rejected");
    let _ = std::fs::remove_dir_all(&dir);
    (outcome, rejected)
}

#[test]
fn cache_falls_back_cleanly_on_each_damage_class() {
    let good = emit(COUNT);

    // Truncated mid-payload.
    let (outcome, rejected) = run_with_planted("trunc", &good[..good.len() / 2]);
    assert!(
        matches!(outcome, CacheOutcome::Rejected(ArtifactError::Truncated)),
        "{outcome:?}"
    );
    assert_eq!(rejected, 1);

    // Flipped fingerprint byte.
    let mut b = good.clone();
    b[15] ^= 0x08;
    let (outcome, rejected) = run_with_planted("fp", &b);
    assert!(
        matches!(
            outcome,
            CacheOutcome::Rejected(ArtifactError::FingerprintMismatch { .. })
        ),
        "{outcome:?}"
    );
    assert_eq!(rejected, 1);

    // Wrong format version.
    let mut b = good.clone();
    b[8] = b[8].wrapping_add(1);
    let (outcome, rejected) = run_with_planted("ver", &b);
    assert!(
        matches!(
            outcome,
            CacheOutcome::Rejected(ArtifactError::VersionSkew { .. })
        ),
        "{outcome:?}"
    );
    assert_eq!(rejected, 1);

    // Valid artifact, wrong grammar, planted at COUNT's cache slot.
    let (outcome, rejected) = run_with_planted("xgrammar", &emit(DEPTH));
    assert!(
        matches!(
            outcome,
            CacheOutcome::Rejected(ArtifactError::FingerprintMismatch { .. })
        ),
        "{outcome:?}"
    );
    assert_eq!(rejected, 1);

    // Zero-length file (crashed writer).
    let (outcome, rejected) = run_with_planted("empty", &[]);
    assert!(
        matches!(outcome, CacheOutcome::Rejected(ArtifactError::Truncated)),
        "{outcome:?}"
    );
    assert_eq!(rejected, 1);
}
