//! End-to-end tests of the `fnc2c` command-line driver.

use std::io::Write as _;
use std::process::{Command, Stdio};

const COUNT: &str = r#"
attribute grammar count;
  phylum S;
  operator leaf : S ::= ;
  operator node : S ::= S;
  synthesized n : int of S;
  for leaf { S.n := 0; }
  for node { S$1.n := S$2.n + 1; }
end
"#;

fn fnc2c() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fnc2c"))
}

#[test]
fn report_prints_class_and_sizes() {
    let mut child = fnc2c()
        .args(["report", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(COUNT.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("class OAG(0)"), "{text}");
    assert!(text.contains("2 operators"), "{text}");
}

#[test]
fn seqs_prints_visit_sequences() {
    let mut child = fnc2c()
        .args(["seqs", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(COUNT.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("BEGIN 1"), "{text}");
    assert!(text.contains("VISIT 1,1"), "{text}");
    assert!(text.contains("EVAL  S$1.n"), "{text}");
}

#[test]
fn c_emits_a_translation_unit() {
    let mut child = fnc2c()
        .args(["c", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(COUNT.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("evaluate_root"), "truncated: {text}");
    assert!(text.contains("#include <stdio.h>"));
}

#[test]
fn circular_grammar_fails_with_trace() {
    let mut child = fnc2c()
        .args(["report", "-"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            br#"
attribute grammar bad;
  phylum S, A;
  operator mk : S ::= A;
  operator leaf : A ::= ;
  synthesized out : int of S;
  inherited i : int of A;
  synthesized s : int of A;
  for mk { S.out := A.s; A.i := A.s; }
  for leaf { A.s := A.i; }
end
"#,
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("not SNC"), "{err}");
    assert!(err.contains("circular dependency"), "{err}");
}

#[test]
fn usage_on_bad_arguments() {
    // Bad usage is an ordinary diagnostic (exit 1); exit 2 is reserved
    // for budget exhaustion and injected faults.
    let out = fnc2c().output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn budget_exhaustion_maps_to_exit_2() {
    let mut child = fnc2c()
        .args(["--max-steps", "0", "report", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(COUNT.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("budget exceeded"), "{err}");
}
