//! End-to-end tests of the `fnc2c` command-line driver.

use std::io::Write as _;
use std::process::{Command, Stdio};

const COUNT: &str = r#"
attribute grammar count;
  phylum S;
  operator leaf : S ::= ;
  operator node : S ::= S;
  synthesized n : int of S;
  for leaf { S.n := 0; }
  for node { S$1.n := S$2.n + 1; }
end
"#;

fn fnc2c() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fnc2c"))
}

#[test]
fn report_prints_class_and_sizes() {
    let mut child = fnc2c()
        .args(["report", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(COUNT.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("class OAG(0)"), "{text}");
    assert!(text.contains("2 operators"), "{text}");
}

#[test]
fn seqs_prints_visit_sequences() {
    let mut child = fnc2c()
        .args(["seqs", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(COUNT.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("BEGIN 1"), "{text}");
    assert!(text.contains("VISIT 1,1"), "{text}");
    assert!(text.contains("EVAL  S$1.n"), "{text}");
}

#[test]
fn c_emits_a_translation_unit() {
    let mut child = fnc2c()
        .args(["c", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(COUNT.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("evaluate_root"), "truncated: {text}");
    assert!(text.contains("#include <stdio.h>"));
}

#[test]
fn circular_grammar_fails_with_trace() {
    let mut child = fnc2c()
        .args(["report", "-"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            br#"
attribute grammar bad;
  phylum S, A;
  operator mk : S ::= A;
  operator leaf : A ::= ;
  synthesized out : int of S;
  inherited i : int of A;
  synthesized s : int of A;
  for mk { S.out := A.s; A.i := A.s; }
  for leaf { A.s := A.i; }
end
"#,
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("not SNC"), "{err}");
    assert!(err.contains("circular dependency"), "{err}");
}

#[test]
fn usage_on_bad_arguments() {
    // Bad usage is an ordinary diagnostic (exit 1); exit 2 is reserved
    // for budget exhaustion and injected faults.
    let out = fnc2c().output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn budget_exhaustion_maps_to_exit_2() {
    let mut child = fnc2c()
        .args(["--max-steps", "0", "report", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(COUNT.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("budget exceeded"), "{err}");
}

fn run_with_stdin(args: &[&str], input: &str) -> std::process::Output {
    let mut child = fnc2c()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // Best-effort: a child that rejects its flags exits without reading
    // stdin, and that EPIPE is part of the scenario, not a test failure.
    let _ = child.stdin.take().unwrap().write_all(input.as_bytes());
    child.wait_with_output().unwrap()
}

#[test]
fn conflicting_tables_flags_are_diagnostics() {
    // Every inconsistent flag combination is an ordinary diagnostic
    // (exit 1) with an explanation — not a silent pick-one, not a panic.
    let cases: &[&[&str]] = &[
        // --tables and --cache-dir are mutually exclusive.
        &["report", "--tables", "x.tbl", "--cache-dir", "d", "-"],
        // compile without a destination.
        &["compile", "-"],
        // --emit-tables only makes sense for compile.
        &["report", "--emit-tables", "x.tbl", "-"],
        // compile consumes no tables.
        &[
            "compile",
            "--emit-tables",
            "x.tbl",
            "--tables",
            "y.tbl",
            "-",
        ],
        &["compile", "--emit-tables", "x.tbl", "--cache-dir", "d", "-"],
        // check never builds evaluation tables.
        &["check", "--tables", "x.tbl", "-"],
        &["check", "--cache-dir", "d", "-"],
        // value-taking flags with no value.
        &["report", "--tables"],
        &["report", "--cache-dir"],
    ];
    for args in cases {
        let out = run_with_stdin(args, COUNT);
        assert_eq!(out.status.code(), Some(1), "{args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("fnc2c:"), "{args:?}: {err}");
    }
}

/// Strips the one line that legitimately differs between a full compile
/// and an artifact load: the generator wall-clock.
fn stable_lines(stdout: &[u8]) -> String {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter(|l| !l.contains("generator time"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn report_via_tables_matches_uncached_report() {
    let tbl = std::env::temp_dir().join(format!("fnc2-cli-tables-{}.tbl", std::process::id()));
    let out = run_with_stdin(
        &["compile", "--emit-tables", tbl.to_str().unwrap(), "-"],
        COUNT,
    );
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("wrote compiled tables"), "{text}");
    assert!(text.contains("fingerprint"), "{text}");

    let via_tables = run_with_stdin(&["report", "--tables", tbl.to_str().unwrap(), "-"], COUNT);
    let plain = run_with_stdin(&["report", "-"], COUNT);
    assert_eq!(via_tables.status.code(), Some(0));
    assert_eq!(plain.status.code(), Some(0));
    assert_eq!(
        stable_lines(&via_tables.stdout),
        stable_lines(&plain.stdout)
    );
    let _ = std::fs::remove_file(&tbl);
}

#[test]
fn corrupt_tables_artifact_falls_back_with_warning() {
    let tbl = std::env::temp_dir().join(format!("fnc2-cli-corrupt-{}.tbl", std::process::id()));
    std::fs::write(&tbl, b"not an artifact at all").unwrap();
    let out = run_with_stdin(&["report", "--tables", tbl.to_str().unwrap(), "-"], COUNT);
    // Fallback to recompilation: the run still succeeds...
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("class OAG(0)"), "{text}");
    // ...but the rejection is reported.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("ignoring tables artifact"), "{err}");
    let _ = std::fs::remove_file(&tbl);
}

#[test]
fn stale_tables_artifact_falls_back_with_warning() {
    let tbl = std::env::temp_dir().join(format!("fnc2-cli-stale-{}.tbl", std::process::id()));
    let out = run_with_stdin(
        &["compile", "--emit-tables", tbl.to_str().unwrap(), "-"],
        COUNT,
    );
    assert_eq!(out.status.code(), Some(0));
    // Same artifact, edited source: fingerprint mismatch, clean fallback.
    let edited = COUNT.replace("+ 1", "+ 2");
    let out = run_with_stdin(&["report", "--tables", tbl.to_str().unwrap(), "-"], &edited);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("ignoring tables artifact"), "{err}");
    let _ = std::fs::remove_file(&tbl);
}
