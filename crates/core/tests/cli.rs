//! End-to-end tests of the `fnc2c` command-line driver.

use std::io::Write as _;
use std::process::{Command, Stdio};

const COUNT: &str = r#"
attribute grammar count;
  phylum S;
  operator leaf : S ::= ;
  operator node : S ::= S;
  synthesized n : int of S;
  for leaf { S.n := 0; }
  for node { S$1.n := S$2.n + 1; }
end
"#;

fn fnc2c() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fnc2c"))
}

#[test]
fn report_prints_class_and_sizes() {
    let mut child = fnc2c()
        .args(["report", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(COUNT.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("class OAG(0)"), "{text}");
    assert!(text.contains("2 operators"), "{text}");
}

#[test]
fn seqs_prints_visit_sequences() {
    let mut child = fnc2c()
        .args(["seqs", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(COUNT.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("BEGIN 1"), "{text}");
    assert!(text.contains("VISIT 1,1"), "{text}");
    assert!(text.contains("EVAL  S$1.n"), "{text}");
}

#[test]
fn c_emits_a_translation_unit() {
    let mut child = fnc2c()
        .args(["c", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(COUNT.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("evaluate_root"), "truncated: {text}");
    assert!(text.contains("#include <stdio.h>"));
}

#[test]
fn circular_grammar_fails_with_trace() {
    let mut child = fnc2c()
        .args(["report", "-"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            br#"
attribute grammar bad;
  phylum S, A;
  operator mk : S ::= A;
  operator leaf : A ::= ;
  synthesized out : int of S;
  inherited i : int of A;
  synthesized s : int of A;
  for mk { S.out := A.s; A.i := A.s; }
  for leaf { A.s := A.i; }
end
"#,
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("not SNC"), "{err}");
    assert!(err.contains("circular dependency"), "{err}");
}

#[test]
fn usage_on_bad_arguments() {
    // Bad usage is an ordinary diagnostic (exit 1); exit 2 is reserved
    // for budget exhaustion and injected faults.
    let out = fnc2c().output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn budget_exhaustion_maps_to_exit_2() {
    let mut child = fnc2c()
        .args(["--max-steps", "0", "report", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(COUNT.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("budget exceeded"), "{err}");
}

fn run_with_stdin(args: &[&str], input: &str) -> std::process::Output {
    let mut child = fnc2c()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // Best-effort: a child that rejects its flags exits without reading
    // stdin, and that EPIPE is part of the scenario, not a test failure.
    let _ = child.stdin.take().unwrap().write_all(input.as_bytes());
    child.wait_with_output().unwrap()
}

#[test]
fn conflicting_tables_flags_are_diagnostics() {
    // Every inconsistent flag combination is an ordinary diagnostic
    // (exit 1) with an explanation — not a silent pick-one, not a panic.
    let cases: &[&[&str]] = &[
        // --tables and --cache-dir are mutually exclusive.
        &["report", "--tables", "x.tbl", "--cache-dir", "d", "-"],
        // compile without a destination.
        &["compile", "-"],
        // --emit-tables only makes sense for compile.
        &["report", "--emit-tables", "x.tbl", "-"],
        // compile consumes no tables.
        &[
            "compile",
            "--emit-tables",
            "x.tbl",
            "--tables",
            "y.tbl",
            "-",
        ],
        &["compile", "--emit-tables", "x.tbl", "--cache-dir", "d", "-"],
        // check never builds evaluation tables.
        &["check", "--tables", "x.tbl", "-"],
        &["check", "--cache-dir", "d", "-"],
        // value-taking flags with no value.
        &["report", "--tables"],
        &["report", "--cache-dir"],
    ];
    for args in cases {
        let out = run_with_stdin(args, COUNT);
        assert_eq!(out.status.code(), Some(1), "{args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("fnc2c:"), "{args:?}: {err}");
    }
}

/// Strips the one line that legitimately differs between a full compile
/// and an artifact load: the generator wall-clock.
fn stable_lines(stdout: &[u8]) -> String {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter(|l| !l.contains("generator time"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn report_via_tables_matches_uncached_report() {
    let tbl = std::env::temp_dir().join(format!("fnc2-cli-tables-{}.tbl", std::process::id()));
    let out = run_with_stdin(
        &["compile", "--emit-tables", tbl.to_str().unwrap(), "-"],
        COUNT,
    );
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("wrote compiled tables"), "{text}");
    assert!(text.contains("fingerprint"), "{text}");

    let via_tables = run_with_stdin(&["report", "--tables", tbl.to_str().unwrap(), "-"], COUNT);
    let plain = run_with_stdin(&["report", "-"], COUNT);
    assert_eq!(via_tables.status.code(), Some(0));
    assert_eq!(plain.status.code(), Some(0));
    assert_eq!(
        stable_lines(&via_tables.stdout),
        stable_lines(&plain.stdout)
    );
    let _ = std::fs::remove_file(&tbl);
}

#[test]
fn corrupt_tables_artifact_falls_back_with_warning() {
    let tbl = std::env::temp_dir().join(format!("fnc2-cli-corrupt-{}.tbl", std::process::id()));
    std::fs::write(&tbl, b"not an artifact at all").unwrap();
    let out = run_with_stdin(&["report", "--tables", tbl.to_str().unwrap(), "-"], COUNT);
    // Fallback to recompilation: the run still succeeds...
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("class OAG(0)"), "{text}");
    // ...but the rejection is reported.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("ignoring tables artifact"), "{err}");
    let _ = std::fs::remove_file(&tbl);
}

#[test]
fn stale_tables_artifact_falls_back_with_warning() {
    let tbl = std::env::temp_dir().join(format!("fnc2-cli-stale-{}.tbl", std::process::id()));
    let out = run_with_stdin(
        &["compile", "--emit-tables", tbl.to_str().unwrap(), "-"],
        COUNT,
    );
    assert_eq!(out.status.code(), Some(0));
    // Same artifact, edited source: fingerprint mismatch, clean fallback.
    let edited = COUNT.replace("+ 1", "+ 2");
    let out = run_with_stdin(&["report", "--tables", tbl.to_str().unwrap(), "-"], &edited);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("ignoring tables artifact"), "{err}");
    let _ = std::fs::remove_file(&tbl);
}

/// The per-index classification lines a checkpointed batch prints on
/// stdout: `batch: grammar G tree T: <class> (digest ...)`.
fn classification_lines(stdout: &[u8]) -> Vec<String> {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter(|l| l.starts_with("batch: grammar") && l.contains(" tree "))
        .map(str::to_string)
        .collect()
}

/// One batch can mix all four outcome classes; the per-index
/// classification is deterministic across runs and the process exits
/// with the budget/fault code — the batch is degraded, never aborted.
#[test]
fn batch_mixed_outcomes_are_classified_deterministically() {
    let dir = std::env::temp_dir().join(format!("fnc2-cli-mixed-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let batch_args = |ckpt: &str| {
        vec![
            "batch".to_string(),
            "--seed".into(),
            "2".into(),
            "--grammars".into(),
            "4".into(),
            "--trees".into(),
            "8".into(),
            "--threads".into(),
            "2".into(),
            "--fault-seed".into(),
            "8".into(),
            "--max-steps".into(),
            "3000".into(),
            "--checkpoint".into(),
            dir.join(ckpt).to_str().unwrap().to_string(),
        ]
    };
    let a = fnc2c().args(batch_args("a.ckpt")).output().unwrap();
    let b = fnc2c().args(batch_args("b.ckpt")).output().unwrap();
    // Lost trees map to the budget/fault exit code, not a panic abort.
    assert_eq!(a.status.code(), Some(2), "{a:?}");
    assert_eq!(b.status.code(), Some(2));

    let lines = classification_lines(&a.stdout);
    for class in ["failed", "panicked", "budget-exceeded"] {
        assert!(
            lines
                .iter()
                .any(|l| l.contains(&format!("{class} (digest"))),
            "expected a {class} tree in {lines:?}"
        );
    }
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains(" ok, "), "some trees must survive: {text}");
    // Same seed, same faults, fresh journal: bit-identical classification.
    assert_eq!(lines, classification_lines(&b.stdout));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming a completed journal re-evaluates nothing and reproduces the
/// per-index classification (and digests) bit-identically.
#[test]
fn batch_resume_is_bit_identical() {
    let dir = std::env::temp_dir().join(format!("fnc2-cli-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("j.ckpt");
    let args = |resume: bool| {
        let mut v = vec![
            "batch".to_string(),
            "--seed".into(),
            "2".into(),
            "--grammars".into(),
            "2".into(),
            "--trees".into(),
            "8".into(),
            "--threads".into(),
            "2".into(),
            "--fault-seed".into(),
            "8".into(),
            "--max-steps".into(),
            "3000".into(),
            "--checkpoint".into(),
            ckpt.to_str().unwrap().to_string(),
        ];
        if resume {
            v.push("--resume".into());
        }
        v
    };
    let full = fnc2c().args(args(false)).output().unwrap();
    let resumed = fnc2c().args(args(true)).output().unwrap();
    assert_eq!(full.status.code(), resumed.status.code());
    assert_eq!(
        classification_lines(&full.stdout),
        classification_lines(&resumed.stdout)
    );
    let text = String::from_utf8_lossy(&resumed.stdout);
    assert!(text.contains("resumed 16 record(s)"), "{text}");
    assert!(text.contains("8 resumed"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_checkpoint_flag_conflicts_are_diagnostics() {
    let out = fnc2c().args(["batch", "--resume"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--resume requires --checkpoint"));

    let out = fnc2c()
        .args(["batch", "--checkpoint", "x.ckpt", "--repeat", "2"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--checkpoint conflicts with --repeat"));
}

/// Resuming against a different batch configuration is a crisp
/// fingerprint diagnostic, not a silent skip of the wrong trees.
#[test]
fn batch_resume_config_mismatch_is_a_diagnostic() {
    let dir = std::env::temp_dir().join(format!("fnc2-cli-mismatch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("j.ckpt");
    let ckpt = ckpt.to_str().unwrap();
    let out = fnc2c()
        .args([
            "batch",
            "--seed",
            "1",
            "--grammars",
            "1",
            "--trees",
            "4",
            "--checkpoint",
            ckpt,
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let out = fnc2c()
        .args([
            "batch",
            "--seed",
            "9",
            "--grammars",
            "1",
            "--trees",
            "4",
            "--checkpoint",
            ckpt,
            "--resume",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("fingerprint"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite regression: every write-path storage fault is a classified
/// exit-2 error — never an unwrap panic (exit 101). The fault here is
/// real, not injected: the destination parent is a regular file, so
/// every create under it fails with ENOTDIR.
#[test]
fn storage_faults_exit_classified_never_panic() {
    let dir = std::env::temp_dir().join(format!("fnc2-cli-enotdir-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, b"a regular file, not a directory").unwrap();
    let under = |name: &str| blocker.join(name).to_str().unwrap().to_string();

    // compile --emit-tables into a path under a regular file.
    let out = run_with_stdin(&["compile", "--emit-tables", &under("x.tbl"), "-"], COUNT);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("storage fault"),
        "{out:?}"
    );

    // --chrome-trace into a path under a regular file.
    let out = run_with_stdin(&["report", "--chrome-trace", &under("t.json"), "-"], COUNT);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("storage fault"),
        "{out:?}"
    );

    // batch --checkpoint into a path under a regular file.
    let out = fnc2c()
        .args([
            "batch",
            "--grammars",
            "1",
            "--trees",
            "2",
            "--checkpoint",
            &under("j.ckpt"),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("storage fault"),
        "{out:?}"
    );

    // cache-gc over a "directory" that is a file.
    let out = fnc2c()
        .args(["cache-gc", blocker.join("cache").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("storage fault"),
        "{out:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `cache-gc` sweeps crashed writers' temp files and deletes quarantined
/// artifacts, leaving a clean cache directory.
#[test]
fn cache_gc_sweeps_temps_and_quarantine() {
    let dir = std::env::temp_dir().join(format!("fnc2-cli-gc-{}", std::process::id()));
    let qdir = dir.join("quarantine");
    std::fs::create_dir_all(&qdir).unwrap();
    std::fs::write(dir.join("fnc2-0000000000000001.tbl.tmp-999-0"), b"torn").unwrap();
    std::fs::write(qdir.join("fnc2-0000000000000002.corrupt.tbl"), b"bad").unwrap();
    std::fs::write(dir.join("fnc2-0000000000000003.tbl"), b"keep me").unwrap();

    let out = fnc2c()
        .args(["cache-gc", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("removed 1 orphaned temp file(s), 1 quarantined artifact(s)"),
        "{text}"
    );
    // The live artifact survives; the junk is gone.
    assert!(dir.join("fnc2-0000000000000003.tbl").exists());
    assert!(!dir.join("fnc2-0000000000000001.tbl.tmp-999-0").exists());
    assert!(!qdir.join("fnc2-0000000000000002.corrupt.tbl").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A grammar with findings but no errors: `scratch` is computed and
/// never read, so `lint` reports warnings and the exit code answers to
/// `--deny warnings`.
const SLOPPY: &str = r#"
attribute grammar sloppy;
  phylum S, T;
  operator top  : S ::= T;
  operator leaf : T ::= ;
  synthesized n : int of S;
  synthesized v : int of T;
  synthesized scratch : int of T;
  for top  { S.n := T.v; }
  for leaf { T.v := 1;  T.scratch := 2; }
end
"#;

#[test]
fn lint_exit_codes_follow_the_contract() {
    // Clean grammar: exit 0, summary says so.
    let out = run_with_stdin(&["lint", "-"], COUNT);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("lint: 0 error(s), 0 warning(s)"), "{text}");

    // Warnings alone keep exit 0 — unless the caller denies them.
    let out = run_with_stdin(&["lint", "-"], SLOPPY);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("warning[L001]"), "{text}");
    let out = run_with_stdin(&["lint", "--deny", "warnings", "-"], SLOPPY);
    assert_eq!(out.status.code(), Some(1), "{out:?}");

    // A front-end rejection is a diagnostic (exit 1), not a crash.
    let out = run_with_stdin(
        &["lint", "-"],
        "attribute grammar broken;\n  phylum ;\nend\n",
    );
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("error[L102]"), "{text}");
}

#[test]
fn lint_json_report_is_byte_stable() {
    let a = run_with_stdin(&["lint", "--report", "json", "-"], SLOPPY);
    let b = run_with_stdin(&["lint", "--report", "json", "-"], SLOPPY);
    assert_eq!(a.status.code(), Some(0));
    assert_eq!(a.stdout, b.stdout, "lint --report json must be byte-stable");
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("\"code\":\"L001\""), "{text}");
}

#[test]
fn lint_via_cache_replays_the_same_report() {
    let dir = std::env::temp_dir().join(format!("fnc2-lint-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = dir.to_str().unwrap();

    // Miss (full compile), then hit (artifact replay): identical bytes.
    let miss = run_with_stdin(&["lint", "--cache-dir", cache, "-"], SLOPPY);
    let hit = run_with_stdin(&["lint", "--cache-dir", cache, "-"], SLOPPY);
    assert_eq!(miss.status.code(), Some(0), "{miss:?}");
    assert_eq!(hit.status.code(), Some(0), "{hit:?}");
    assert_eq!(
        miss.stdout, hit.stdout,
        "cached lint must replay identically"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
