//! Codecs for every structure the compiled-table artifact carries.
//!
//! Encoding is canonical: hash maps and sets are written in sorted key
//! order, so the same analysis results always produce the same bytes —
//! which is what lets the loader verify a deserialized artifact against a
//! freshly computed structure by plain byte comparison, and what makes
//! the re-encode-idempotence check in the fuzz oracle meaningful.

use std::collections::{HashMap, HashSet};

use fnc2_ag::{
    Arg, AttrId, AttrKind, FuncId, Grammar, LocalId, ONode, Occ, PhylumId, ProductionId, RuleBody,
    Value,
};
use fnc2_analysis::{
    AgClass, CircWitness, Classification, DncResult, LOrdered, OagResult, PhylumRels, Plan,
    SncResult, TotalOrder, TransformStats, VisitSlot,
};
use fnc2_gfa::{BitMatrix, FixpointStats};
use fnc2_lint::{Code as LintCode, Diagnostic, Severity as LintSeverity, Span};
use fnc2_space::{
    FlatItem, FlatProgram, FlatSeq, Instance, InstanceKind, Lifetimes, Object, ObjectIndex,
    ObjectSet, ReadPath, SeqAccess, SpacePlan, SpaceStats, StepAccess, Storage, WritePath,
};
use fnc2_visit::{CBody, CompiledProgram, FetchOp, Instr, SlotRef, VisitSeq, VisitSeqs};

use crate::wire::{Dec, Enc, WireError, WireResult};

fn invalid(what: &'static str, d: &Dec<'_>) -> WireError {
    WireError::Invalid { what, at: d.pos() }
}

// ---------------------------------------------------------------------------
// Identifiers
// ---------------------------------------------------------------------------

fn enc_phylum(e: &mut Enc, v: PhylumId) {
    e.u32(v.index() as u32);
}
fn dec_phylum(d: &mut Dec<'_>) -> WireResult<PhylumId> {
    Ok(PhylumId::from_raw(d.u32()?))
}
fn enc_production(e: &mut Enc, v: ProductionId) {
    e.u32(v.index() as u32);
}
fn dec_production(d: &mut Dec<'_>) -> WireResult<ProductionId> {
    Ok(ProductionId::from_raw(d.u32()?))
}
fn enc_attr(e: &mut Enc, v: AttrId) {
    e.u32(v.index() as u32);
}
fn dec_attr(d: &mut Dec<'_>) -> WireResult<AttrId> {
    Ok(AttrId::from_raw(d.u32()?))
}
fn enc_local(e: &mut Enc, v: LocalId) {
    e.u32(v.index() as u32);
}
fn dec_local(d: &mut Dec<'_>) -> WireResult<LocalId> {
    Ok(LocalId::from_raw(d.u32()?))
}
fn enc_func(e: &mut Enc, v: FuncId) {
    e.u32(v.index() as u32);
}
#[cfg_attr(not(test), allow(dead_code))] // decode side exercised by the codec tests
fn dec_func(d: &mut Dec<'_>) -> WireResult<FuncId> {
    Ok(FuncId::from_raw(d.u32()?))
}

fn enc_onode(e: &mut Enc, v: ONode) {
    match v {
        ONode::Attr(Occ { pos, attr }) => {
            e.u8(0);
            e.u16(pos);
            enc_attr(e, attr);
        }
        ONode::Local(l) => {
            e.u8(1);
            enc_local(e, l);
        }
    }
}
fn dec_onode(d: &mut Dec<'_>) -> WireResult<ONode> {
    match d.u8()? {
        0 => {
            let pos = d.u16()?;
            let attr = dec_attr(d)?;
            Ok(ONode::Attr(Occ { pos, attr }))
        }
        1 => Ok(ONode::Local(dec_local(d)?)),
        _ => Err(invalid("ONode tag", d)),
    }
}

// ---------------------------------------------------------------------------
// Generic shapes
// ---------------------------------------------------------------------------

fn enc_option<T>(e: &mut Enc, v: Option<&T>, f: impl FnOnce(&mut Enc, &T)) {
    match v {
        Some(x) => {
            e.bool(true);
            f(e, x);
        }
        None => e.bool(false),
    }
}
fn dec_option<T>(
    d: &mut Dec<'_>,
    f: impl FnOnce(&mut Dec<'_>) -> WireResult<T>,
) -> WireResult<Option<T>> {
    if d.bool()? {
        Ok(Some(f(d)?))
    } else {
        Ok(None)
    }
}

fn enc_vec<T>(e: &mut Enc, v: &[T], mut f: impl FnMut(&mut Enc, &T)) {
    e.usize(v.len());
    for x in v {
        f(e, x);
    }
}
fn dec_vec<T>(
    d: &mut Dec<'_>,
    mut f: impl FnMut(&mut Dec<'_>) -> WireResult<T>,
) -> WireResult<Vec<T>> {
    let n = d.seq_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(f(d)?);
    }
    Ok(out)
}

fn enc_usizes(e: &mut Enc, v: &[usize]) {
    enc_vec(e, v, |e, &x| e.usize(x));
}
fn dec_usizes(d: &mut Dec<'_>) -> WireResult<Vec<usize>> {
    dec_vec(d, |d| d.usize())
}

/// Encodes a map in sorted key order, so identical contents yield
/// identical bytes regardless of hash iteration order.
fn enc_map<K: Ord + Copy + std::hash::Hash, V>(
    e: &mut Enc,
    map: &HashMap<K, V>,
    mut key: impl FnMut(&mut Enc, K),
    mut val: impl FnMut(&mut Enc, &V),
) {
    let mut keys: Vec<K> = map.keys().copied().collect();
    keys.sort();
    e.usize(keys.len());
    for k in keys {
        key(e, k);
        val(e, &map[&k]);
    }
}
fn dec_map<K: std::hash::Hash + Eq, V>(
    d: &mut Dec<'_>,
    mut key: impl FnMut(&mut Dec<'_>) -> WireResult<K>,
    mut val: impl FnMut(&mut Dec<'_>) -> WireResult<V>,
) -> WireResult<HashMap<K, V>> {
    let n = d.seq_len()?;
    let mut out = HashMap::with_capacity(n);
    for _ in 0..n {
        let k = key(d)?;
        let v = val(d)?;
        out.insert(k, v);
    }
    Ok(out)
}

fn enc_seq_key(e: &mut Enc, k: (ProductionId, usize)) {
    enc_production(e, k.0);
    e.usize(k.1);
}
fn dec_seq_key(d: &mut Dec<'_>) -> WireResult<(ProductionId, usize)> {
    Ok((dec_production(d)?, d.usize()?))
}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

pub(crate) fn enc_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Unit => e.u8(0),
        Value::Bool(b) => {
            e.u8(1);
            e.bool(*b);
        }
        Value::Int(i) => {
            e.u8(2);
            e.i64(*i);
        }
        Value::Real(r) => {
            e.u8(3);
            e.f64(*r);
        }
        Value::Str(s) => {
            e.u8(4);
            e.str(s);
        }
        Value::List(items) => {
            e.u8(5);
            enc_vec(e, items, enc_value);
        }
        Value::Tuple(items) => {
            e.u8(6);
            enc_vec(e, items, enc_value);
        }
        Value::Map(m) => {
            e.u8(7);
            e.usize(m.len());
            for (k, v) in m.iter() {
                e.str(k);
                enc_value(e, v);
            }
        }
        Value::Term(t) => {
            e.u8(8);
            e.str(&t.op);
            enc_vec(e, &t.children, enc_value);
        }
    }
}

#[cfg_attr(not(test), allow(dead_code))] // decode side exercised by the codec tests
pub(crate) fn dec_value(d: &mut Dec<'_>) -> WireResult<Value> {
    match d.u8()? {
        0 => Ok(Value::Unit),
        1 => Ok(Value::Bool(d.bool()?)),
        2 => Ok(Value::Int(d.i64()?)),
        3 => Ok(Value::Real(d.f64()?)),
        4 => Ok(Value::str(d.str()?)),
        5 => Ok(Value::list(dec_vec(d, dec_value)?)),
        6 => Ok(Value::tuple(dec_vec(d, dec_value)?)),
        7 => {
            let n = d.seq_len()?;
            let mut m = std::collections::BTreeMap::new();
            for _ in 0..n {
                let k = d.str()?;
                let v = dec_value(d)?;
                m.insert(k, v);
            }
            Ok(Value::Map(std::sync::Arc::new(m)))
        }
        8 => {
            let op = d.str()?;
            let children = dec_vec(d, dec_value)?;
            Ok(Value::term(op, children))
        }
        _ => Err(invalid("Value tag", d)),
    }
}

// ---------------------------------------------------------------------------
// Analysis results
// ---------------------------------------------------------------------------

fn enc_bitmatrix(e: &mut Enc, m: &BitMatrix) {
    e.usize(m.len());
    enc_vec(e, m.raw_words(), |e, &w| e.u64(w));
}
fn dec_bitmatrix(d: &mut Dec<'_>) -> WireResult<BitMatrix> {
    let n = d.usize()?;
    let at_words = d.pos();
    let words = dec_vec(d, |d| d.u64())?;
    BitMatrix::from_raw_words(n, words).ok_or(WireError::Invalid {
        what: "BitMatrix word count",
        at: at_words,
    })
}

fn enc_rels(e: &mut Enc, r: &PhylumRels) {
    enc_vec(e, r.rels(), enc_bitmatrix);
}
fn dec_rels(d: &mut Dec<'_>) -> WireResult<PhylumRels> {
    Ok(PhylumRels::from_rels(dec_vec(d, dec_bitmatrix)?))
}

fn enc_fixpoint(e: &mut Enc, s: &FixpointStats) {
    e.usize(s.steps);
    e.usize(s.changes);
}
fn dec_fixpoint(d: &mut Dec<'_>) -> WireResult<FixpointStats> {
    Ok(FixpointStats {
        steps: d.usize()?,
        changes: d.usize()?,
    })
}

fn enc_witness(e: &mut Enc, w: &CircWitness) {
    enc_production(e, w.production);
    enc_vec(e, &w.cycle, |e, &n| enc_onode(e, n));
}
fn dec_witness(d: &mut Dec<'_>) -> WireResult<CircWitness> {
    Ok(CircWitness {
        production: dec_production(d)?,
        cycle: dec_vec(d, dec_onode)?,
    })
}

fn enc_total_order(e: &mut Enc, t: &TotalOrder) {
    enc_phylum(e, t.phylum);
    enc_vec(e, &t.visits, |e, v| {
        enc_vec(e, &v.inh, |e, &a| enc_attr(e, a));
        enc_vec(e, &v.syn, |e, &a| enc_attr(e, a));
    });
}
fn dec_total_order(d: &mut Dec<'_>) -> WireResult<TotalOrder> {
    let phylum = dec_phylum(d)?;
    let visits = dec_vec(d, |d| {
        Ok(VisitSlot {
            inh: dec_vec(d, dec_attr)?,
            syn: dec_vec(d, dec_attr)?,
        })
    })?;
    // Construct literally: the stored partitions are already canonical,
    // and `TotalOrder::new`'s re-canonicalization must not run again (it
    // would merge differently on round-trip if upstream ever changes).
    Ok(TotalOrder { phylum, visits })
}

fn enc_partitions(e: &mut Enc, p: &[Vec<TotalOrder>]) {
    enc_vec(e, p, |e, per| enc_vec(e, per, enc_total_order));
}
fn dec_partitions(d: &mut Dec<'_>) -> WireResult<Vec<Vec<TotalOrder>>> {
    dec_vec(d, |d| dec_vec(d, dec_total_order))
}

fn enc_transform_stats(e: &mut Enc, s: &TransformStats) {
    enc_usizes(e, &s.partitions_per_phylum);
    e.usize(s.plans);
    e.usize(s.reuses);
    e.usize(s.fresh);
}
fn dec_transform_stats(d: &mut Dec<'_>) -> WireResult<TransformStats> {
    Ok(TransformStats {
        partitions_per_phylum: dec_usizes(d)?,
        plans: d.usize()?,
        reuses: d.usize()?,
        fresh: d.usize()?,
    })
}

fn enc_l_ordered(e: &mut Enc, lo: &LOrdered) {
    enc_partitions(e, &lo.partitions);
    enc_map(e, &lo.plans, enc_seq_key, |e, plan| {
        enc_usizes(e, &plan.rhs_partitions);
        enc_vec(e, &plan.linear, |e, &n| enc_onode(e, n));
    });
    enc_transform_stats(e, &lo.stats);
}
fn dec_l_ordered(d: &mut Dec<'_>) -> WireResult<LOrdered> {
    Ok(LOrdered {
        partitions: dec_partitions(d)?,
        plans: dec_map(d, dec_seq_key, |d| {
            Ok(Plan {
                rhs_partitions: dec_usizes(d)?,
                linear: dec_vec(d, dec_onode)?,
            })
        })?,
        stats: dec_transform_stats(d)?,
    })
}

fn enc_class(e: &mut Enc, c: AgClass) {
    match c {
        AgClass::Oag0 => e.u8(0),
        AgClass::OagK(k) => {
            e.u8(1);
            e.usize(k);
        }
        AgClass::Dnc => e.u8(2),
        AgClass::Snc => e.u8(3),
        AgClass::NotSnc => e.u8(4),
    }
}
fn dec_class(d: &mut Dec<'_>) -> WireResult<AgClass> {
    match d.u8()? {
        0 => Ok(AgClass::Oag0),
        1 => Ok(AgClass::OagK(d.usize()?)),
        2 => Ok(AgClass::Dnc),
        3 => Ok(AgClass::Snc),
        4 => Ok(AgClass::NotSnc),
        _ => Err(invalid("AgClass tag", d)),
    }
}

pub(crate) fn enc_classification(e: &mut Enc, c: &Classification) {
    enc_class(e, c.class);
    enc_rels(e, &c.snc.io);
    enc_option(e, c.snc.witness.as_ref(), enc_witness);
    enc_fixpoint(e, &c.snc.stats);
    enc_option(e, c.dnc.as_ref(), |e, dnc| {
        enc_rels(e, &dnc.oi);
        enc_option(e, dnc.witness.as_ref(), enc_witness);
        enc_fixpoint(e, &dnc.stats);
    });
    enc_option(e, c.oag.as_ref(), |e, oag| {
        enc_rels(e, &oag.ds);
        enc_option(e, oag.partitions.as_ref(), |e, p| {
            enc_vec(e, p, enc_total_order);
        });
        enc_option(e, oag.witness.as_ref(), enc_witness);
        e.usize(oag.repairs_used);
        enc_fixpoint(e, &oag.stats);
    });
    enc_option(e, c.l_ordered.as_ref(), enc_l_ordered);
}

pub(crate) fn dec_classification(d: &mut Dec<'_>) -> WireResult<Classification> {
    let class = dec_class(d)?;
    let snc = SncResult {
        io: dec_rels(d)?,
        witness: dec_option(d, dec_witness)?,
        stats: dec_fixpoint(d)?,
    };
    let dnc = dec_option(d, |d| {
        Ok(DncResult {
            oi: dec_rels(d)?,
            witness: dec_option(d, dec_witness)?,
            stats: dec_fixpoint(d)?,
        })
    })?;
    let oag = dec_option(d, |d| {
        Ok(OagResult {
            ds: dec_rels(d)?,
            partitions: dec_option(d, |d| dec_vec(d, dec_total_order))?,
            witness: dec_option(d, dec_witness)?,
            repairs_used: d.usize()?,
            stats: dec_fixpoint(d)?,
        })
    })?;
    let l_ordered = dec_option(d, dec_l_ordered)?;
    Ok(Classification {
        class,
        snc,
        dnc,
        oag,
        l_ordered,
    })
}

// ---------------------------------------------------------------------------
// Visit sequences
// ---------------------------------------------------------------------------

fn enc_instr(e: &mut Enc, i: &Instr) {
    match i {
        Instr::Eval(n) => {
            e.u8(0);
            enc_onode(e, *n);
        }
        Instr::Visit {
            child,
            visit,
            partition,
        } => {
            e.u8(1);
            e.u16(*child);
            e.usize(*visit);
            e.usize(*partition);
        }
    }
}
fn dec_instr(d: &mut Dec<'_>) -> WireResult<Instr> {
    match d.u8()? {
        0 => Ok(Instr::Eval(dec_onode(d)?)),
        1 => Ok(Instr::Visit {
            child: d.u16()?,
            visit: d.usize()?,
            partition: d.usize()?,
        }),
        _ => Err(invalid("Instr tag", d)),
    }
}

pub(crate) fn enc_visit_seqs(e: &mut Enc, seqs: &VisitSeqs) {
    let keys = seqs.keys();
    e.usize(keys.len());
    for &(p, part) in &keys {
        enc_seq_key(e, (p, part));
        let s = seqs.seq(p, part);
        enc_vec(e, &s.segments, |e, seg| enc_vec(e, seg, enc_instr));
    }
    enc_partitions(e, seqs.partitions());
}

pub(crate) fn dec_visit_seqs(d: &mut Dec<'_>) -> WireResult<VisitSeqs> {
    let n = d.seq_len()?;
    let mut map = HashMap::with_capacity(n);
    for _ in 0..n {
        let (p, part) = dec_seq_key(d)?;
        let segments = dec_vec(d, |d| dec_vec(d, dec_instr))?;
        map.insert(
            (p, part),
            VisitSeq {
                production: p,
                lhs_partition: part,
                segments,
            },
        );
    }
    let partitions = dec_partitions(d)?;
    Ok(VisitSeqs::from_parts(map, partitions))
}

// ---------------------------------------------------------------------------
// Space optimization
// ---------------------------------------------------------------------------

fn enc_object(e: &mut Enc, o: Object) {
    match o {
        Object::Attr(a) => {
            e.u8(0);
            enc_attr(e, a);
        }
        Object::Local(p, l) => {
            e.u8(1);
            enc_production(e, p);
            enc_local(e, l);
        }
    }
}
fn dec_object(d: &mut Dec<'_>) -> WireResult<Object> {
    match d.u8()? {
        0 => Ok(Object::Attr(dec_attr(d)?)),
        1 => Ok(Object::Local(dec_production(d)?, dec_local(d)?)),
        _ => Err(invalid("Object tag", d)),
    }
}

fn enc_flat_item(e: &mut Enc, i: &FlatItem) {
    match i {
        FlatItem::Begin(v) => {
            e.u8(0);
            e.usize(*v);
        }
        FlatItem::Op { visit, instr } => {
            e.u8(1);
            e.usize(*visit);
            enc_instr(e, instr);
        }
        FlatItem::Leave(v) => {
            e.u8(2);
            e.usize(*v);
        }
    }
}
fn dec_flat_item(d: &mut Dec<'_>) -> WireResult<FlatItem> {
    match d.u8()? {
        0 => Ok(FlatItem::Begin(d.usize()?)),
        1 => Ok(FlatItem::Op {
            visit: d.usize()?,
            instr: dec_instr(d)?,
        }),
        2 => Ok(FlatItem::Leave(d.usize()?)),
        _ => Err(invalid("FlatItem tag", d)),
    }
}

fn enc_instance_kind(e: &mut Enc, k: InstanceKind) {
    e.u8(match k {
        InstanceKind::LhsInh => 0,
        InstanceKind::LhsSyn => 1,
        InstanceKind::ChildInh => 2,
        InstanceKind::ChildSyn => 3,
        InstanceKind::Local => 4,
    });
}
fn dec_instance_kind(d: &mut Dec<'_>) -> WireResult<InstanceKind> {
    match d.u8()? {
        0 => Ok(InstanceKind::LhsInh),
        1 => Ok(InstanceKind::LhsSyn),
        2 => Ok(InstanceKind::ChildInh),
        3 => Ok(InstanceKind::ChildSyn),
        4 => Ok(InstanceKind::Local),
        _ => Err(invalid("InstanceKind tag", d)),
    }
}

fn enc_instance(e: &mut Enc, i: &Instance) {
    enc_onode(e, i.node);
    enc_object(e, i.object);
    enc_instance_kind(e, i.kind);
    e.usize(i.def_pos);
    enc_usizes(e, &i.uses);
}
fn dec_instance(d: &mut Dec<'_>) -> WireResult<Instance> {
    Ok(Instance {
        node: dec_onode(d)?,
        object: dec_object(d)?,
        kind: dec_instance_kind(d)?,
        def_pos: d.usize()?,
        uses: dec_usizes(d)?,
    })
}

fn enc_visit_key(e: &mut Enc, k: (PhylumId, usize, AttrId)) {
    enc_phylum(e, k.0);
    e.usize(k.1);
    enc_attr(e, k.2);
}
fn dec_visit_key(d: &mut Dec<'_>) -> WireResult<(PhylumId, usize, AttrId)> {
    Ok((dec_phylum(d)?, d.usize()?, dec_attr(d)?))
}

pub(crate) fn enc_flat_program(e: &mut Enc, fp: &FlatProgram) {
    enc_map(e, &fp.seqs, enc_seq_key, |e, s| {
        enc_seq_key(e, s.key);
        enc_vec(e, &s.items, enc_flat_item);
    });
    enc_map(e, &fp.instances, enc_seq_key, |e, is| {
        enc_vec(e, is, enc_instance);
    });
    enc_map(e, &fp.last_read_visit, enc_visit_key, |e, &v| e.usize(v));
}
pub(crate) fn dec_flat_program(d: &mut Dec<'_>) -> WireResult<FlatProgram> {
    Ok(FlatProgram {
        seqs: dec_map(d, dec_seq_key, |d| {
            Ok(FlatSeq {
                key: dec_seq_key(d)?,
                items: dec_vec(d, dec_flat_item)?,
            })
        })?,
        instances: dec_map(d, dec_seq_key, |d| dec_vec(d, dec_instance))?,
        last_read_visit: dec_map(d, dec_visit_key, |d| d.usize())?,
    })
}

fn enc_may_eval_key(e: &mut Enc, k: (PhylumId, usize, usize)) {
    enc_phylum(e, k.0);
    e.usize(k.1);
    e.usize(k.2);
}
fn dec_may_eval_key(d: &mut Dec<'_>) -> WireResult<(PhylumId, usize, usize)> {
    Ok((dec_phylum(d)?, d.usize()?, d.usize()?))
}

pub(crate) fn enc_lifetimes(e: &mut Enc, lt: &Lifetimes) {
    enc_vec(e, &lt.temporary, |e, &b| e.bool(b));
    enc_map(e, &lt.may_eval, enc_may_eval_key, |e, set| {
        enc_vec(e, set.raw_words(), |e, &w| e.u64(w));
    });
}
pub(crate) fn dec_lifetimes(d: &mut Dec<'_>) -> WireResult<Lifetimes> {
    Ok(Lifetimes {
        temporary: dec_vec(d, |d| d.bool())?,
        may_eval: dec_map(d, dec_may_eval_key, |d| {
            Ok(ObjectSet::from_raw_words(dec_vec(d, |d| d.u64())?))
        })?,
    })
}

fn enc_storage(e: &mut Enc, s: Storage) {
    match s {
        Storage::Variable(i) => {
            e.u8(0);
            e.usize(i);
        }
        Storage::Stack(i) => {
            e.u8(1);
            e.usize(i);
        }
        Storage::Node => e.u8(2),
    }
}
fn dec_storage(d: &mut Dec<'_>) -> WireResult<Storage> {
    match d.u8()? {
        0 => Ok(Storage::Variable(d.usize()?)),
        1 => Ok(Storage::Stack(d.usize()?)),
        2 => Ok(Storage::Node),
        _ => Err(invalid("Storage tag", d)),
    }
}

fn enc_read_path(e: &mut Enc, r: &ReadPath) {
    match r {
        ReadPath::Immediate => e.u8(0),
        ReadPath::Variable(i) => {
            e.u8(1);
            e.usize(*i);
        }
        ReadPath::Stack(i, depth) => {
            e.u8(2);
            e.usize(*i);
            e.usize(*depth);
        }
        ReadPath::Node => e.u8(3),
    }
}
fn dec_read_path(d: &mut Dec<'_>) -> WireResult<ReadPath> {
    match d.u8()? {
        0 => Ok(ReadPath::Immediate),
        1 => Ok(ReadPath::Variable(d.usize()?)),
        2 => Ok(ReadPath::Stack(d.usize()?, d.usize()?)),
        3 => Ok(ReadPath::Node),
        _ => Err(invalid("ReadPath tag", d)),
    }
}

fn enc_write_path(e: &mut Enc, w: &WritePath) {
    match w {
        WritePath::Variable(i) => {
            e.u8(0);
            e.usize(*i);
        }
        WritePath::Stack(i) => {
            e.u8(1);
            e.usize(*i);
        }
        WritePath::Node => e.u8(2),
        WritePath::SkipVariable => e.u8(3),
        WritePath::SkipStackTop => e.u8(4),
    }
}
fn dec_write_path(d: &mut Dec<'_>) -> WireResult<WritePath> {
    match d.u8()? {
        0 => Ok(WritePath::Variable(d.usize()?)),
        1 => Ok(WritePath::Stack(d.usize()?)),
        2 => Ok(WritePath::Node),
        3 => Ok(WritePath::SkipVariable),
        4 => Ok(WritePath::SkipStackTop),
        _ => Err(invalid("WritePath tag", d)),
    }
}

fn enc_space_stats(e: &mut Enc, s: &SpaceStats) {
    e.usize(s.occ_variables);
    e.usize(s.occ_stacks);
    e.usize(s.occ_node);
    e.usize(s.variables_before);
    e.usize(s.variables_after);
    e.usize(s.stacks_before);
    e.usize(s.stacks_after);
    e.usize(s.copies_total);
    e.usize(s.copies_eliminated);
    e.usize(s.copies_eliminable);
    e.f64(s.temporary_ratio);
}
fn dec_space_stats(d: &mut Dec<'_>) -> WireResult<SpaceStats> {
    Ok(SpaceStats {
        occ_variables: d.usize()?,
        occ_stacks: d.usize()?,
        occ_node: d.usize()?,
        variables_before: d.usize()?,
        variables_after: d.usize()?,
        stacks_before: d.usize()?,
        stacks_after: d.usize()?,
        copies_total: d.usize()?,
        copies_eliminated: d.usize()?,
        copies_eliminable: d.usize()?,
        temporary_ratio: d.f64()?,
    })
}

pub(crate) fn enc_space_plan(e: &mut Enc, p: &SpacePlan) {
    enc_vec(e, &p.storage, |e, &s| enc_storage(e, s));
    e.usize(p.n_variables);
    e.usize(p.n_stacks);
    let mut eliminated: Vec<(ProductionId, ONode)> = p.eliminated.iter().copied().collect();
    eliminated.sort();
    enc_vec(e, &eliminated, |e, &(prod, n)| {
        enc_production(e, prod);
        enc_onode(e, n);
    });
    enc_map(e, &p.access, enc_seq_key, |e, sa| {
        enc_vec(e, &sa.steps, |e, step| {
            enc_vec(e, &step.args, enc_read_path);
            enc_option(e, step.write.as_ref(), enc_write_path);
            enc_usizes(e, &step.pops_after);
        });
    });
    enc_space_stats(e, &p.stats);
}
pub(crate) fn dec_space_plan(d: &mut Dec<'_>) -> WireResult<SpacePlan> {
    let storage = dec_vec(d, dec_storage)?;
    let n_variables = d.usize()?;
    let n_stacks = d.usize()?;
    let eliminated: HashSet<(ProductionId, ONode)> = dec_vec(d, |d| {
        let p = dec_production(d)?;
        let n = dec_onode(d)?;
        Ok((p, n))
    })?
    .into_iter()
    .collect();
    let access = dec_map(d, dec_seq_key, |d| {
        Ok(SeqAccess {
            steps: dec_vec(d, |d| {
                Ok(StepAccess {
                    args: dec_vec(d, dec_read_path)?,
                    write: dec_option(d, dec_write_path)?,
                    pops_after: dec_usizes(d)?,
                })
            })?,
        })
    })?;
    let stats = dec_space_stats(d)?;
    Ok(SpacePlan {
        storage,
        n_variables,
        n_stacks,
        eliminated,
        access,
        stats,
    })
}

// ---------------------------------------------------------------------------
// Lint diagnostics
// ---------------------------------------------------------------------------

pub(crate) fn enc_lint(e: &mut Enc, diags: &[Diagnostic]) {
    enc_vec(e, diags, |e, d| {
        e.str(d.code.as_str());
        e.u8(match d.severity {
            LintSeverity::Warning => 0,
            LintSeverity::Error => 1,
        });
        e.u32(d.span.line);
        e.u32(d.span.col);
        e.str(&d.span.anchor);
        e.str(&d.message);
        enc_vec(e, &d.notes, |e, n| e.str(n));
    });
}

pub(crate) fn dec_lint(d: &mut Dec<'_>) -> WireResult<Vec<Diagnostic>> {
    dec_vec(d, |d| {
        let code_str = d.str()?;
        let code = LintCode::from_code_str(&code_str).ok_or_else(|| invalid("lint code", d))?;
        let severity = match d.u8()? {
            0 => LintSeverity::Warning,
            1 => LintSeverity::Error,
            _ => return Err(invalid("lint severity", d)),
        };
        let line = d.u32()?;
        let col = d.u32()?;
        let anchor = d.str()?;
        let message = d.str()?;
        let notes = dec_vec(d, |d| d.str())?;
        Ok(Diagnostic {
            code,
            severity,
            span: Span { line, col, anchor },
            message,
            notes,
        })
    })
}

// ---------------------------------------------------------------------------
// Grammar shape and compiled programs (verification sections)
// ---------------------------------------------------------------------------

fn enc_arg(e: &mut Enc, a: &Arg) {
    match a {
        Arg::Node(n) => {
            e.u8(0);
            enc_onode(e, *n);
        }
        Arg::Const(v) => {
            e.u8(1);
            enc_value(e, v);
        }
        Arg::Token => e.u8(2),
    }
}

/// Canonical encoding of everything about a [`Grammar`] except the
/// semantic-function *bodies* (closures cannot be serialized; they are
/// rebuilt by re-running the front end, and this shape encoding is what
/// proves the rebuilt grammar is the one the artifact was compiled from).
pub fn encode_grammar_shape(g: &Grammar) -> Vec<u8> {
    let mut e = Enc::new();
    e.str(g.name());
    enc_phylum(&mut e, g.root());
    e.usize(g.phylum_count());
    for ph in g.phyla() {
        let p = g.phylum(ph);
        e.str(p.name());
        enc_vec(&mut e, p.attrs(), |e, &a| enc_attr(e, a));
        enc_vec(&mut e, p.productions(), |e, &pr| enc_production(e, pr));
    }
    e.usize(g.attr_count());
    for i in 0..g.attr_count() as u32 {
        let a = g.attr(AttrId::from_raw(i));
        e.str(a.name());
        e.u8(match a.kind() {
            AttrKind::Inherited => 0,
            AttrKind::Synthesized => 1,
        });
        enc_phylum(&mut e, a.phylum());
        e.usize(a.offset());
    }
    e.usize(g.production_count());
    for pid in g.productions() {
        let p = g.production(pid);
        e.str(p.name());
        enc_phylum(&mut e, p.lhs());
        enc_vec(&mut e, p.rhs(), |e, &ph| enc_phylum(e, ph));
        enc_vec(&mut e, p.locals(), |e, l| e.str(l.name()));
        e.usize(p.rules().len());
        for rule in p.rules() {
            enc_onode(&mut e, rule.target());
            match rule.body() {
                RuleBody::Copy(arg) => {
                    e.u8(0);
                    enc_arg(&mut e, arg);
                }
                RuleBody::Call { func, args } => {
                    e.u8(1);
                    enc_func(&mut e, *func);
                    enc_vec(&mut e, args, enc_arg);
                }
            }
        }
    }
    // Semantic functions: name, arity, and declared cost pin the calling
    // convention; the bodies come from the re-run front end.
    let nfuncs = g.function_count();
    e.usize(nfuncs);
    for i in 0..nfuncs as u32 {
        let f = g.function(FuncId::from_raw(i));
        e.str(f.name());
        e.usize(f.arity());
        e.u32(f.cost());
    }
    e.into_bytes()
}

fn enc_fetch(e: &mut Enc, f: &FetchOp) {
    match f {
        FetchOp::Const(i) => {
            e.u8(0);
            e.u32(*i);
        }
        FetchOp::Token => e.u8(1),
        FetchOp::Attr { child, attr, off } => {
            e.u8(2);
            e.u16(*child);
            enc_attr(e, *attr);
            e.u32(*off);
        }
        FetchOp::Local(l) => {
            e.u8(3);
            enc_local(e, *l);
        }
    }
}

fn enc_slot(e: &mut Enc, s: &SlotRef) {
    match s {
        SlotRef::Attr { child, attr, off } => {
            e.u8(0);
            e.u16(*child);
            enc_attr(e, *attr);
            e.u32(*off);
        }
        SlotRef::Local(l) => {
            e.u8(1);
            enc_local(e, *l);
        }
    }
}

/// Canonical encoding of a slot-compiled program. The loader does not
/// decode this: [`CompiledProgram::new`] is a cheap deterministic function
/// of the grammar, so the artifact's copy serves as a verification section
/// — a byte mismatch against a fresh compile means the artifact was built
/// by an incompatible slot-compiler and must be rejected.
pub fn encode_compiled_program(g: &Grammar, prog: &CompiledProgram) -> Vec<u8> {
    let mut e = Enc::new();
    e.usize(g.production_count());
    for pid in g.productions() {
        let cp = prog.production(pid);
        e.usize(cp.rules.len());
        for r in &cp.rules {
            enc_onode(&mut e, r.target);
            enc_slot(&mut e, &r.slot);
            match &r.body {
                CBody::Copy(f) => {
                    e.u8(0);
                    enc_fetch(&mut e, f);
                }
                CBody::Call { func, args } => {
                    e.u8(1);
                    enc_func(&mut e, *func);
                    enc_vec(&mut e, args, enc_fetch);
                }
            }
            e.bool(r.is_copy);
        }
    }
    enc_vec(&mut e, prog.consts(), enc_value);
    e.into_bytes()
}

/// Rebuilds the object index — a deterministic function of the grammar,
/// so it is not serialized at all.
pub fn rebuild_object_index(g: &Grammar) -> ObjectIndex {
    ObjectIndex::new(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_bit_exactly() {
        let vals = [
            Value::Unit,
            Value::Bool(true),
            Value::Int(-7),
            Value::Real(f64::NEG_INFINITY),
            Value::Real(-0.0),
            Value::str("σ"),
            Value::list([Value::Int(1), Value::str("x")]),
            Value::tuple([Value::Unit, Value::Bool(false)]),
            Value::Map(std::sync::Arc::new(
                [("k".to_string(), Value::Int(3))].into_iter().collect(),
            )),
            Value::term("node", [Value::term("leaf", []), Value::Int(9)]),
        ];
        for v in &vals {
            let mut e = Enc::new();
            enc_value(&mut e, v);
            enc_func(&mut e, FuncId::from_raw(4));
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            assert_eq!(&dec_value(&mut d).unwrap(), v);
            assert_eq!(dec_func(&mut d).unwrap(), FuncId::from_raw(4));
            d.finish().unwrap();
        }
    }

    #[test]
    fn negative_zero_and_nan_are_preserved() {
        let mut e = Enc::new();
        enc_value(&mut e, &Value::Real(-0.0));
        enc_value(&mut e, &Value::Real(f64::NAN));
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        match dec_value(&mut d).unwrap() {
            Value::Real(r) => assert_eq!(r.to_bits(), (-0.0f64).to_bits()),
            other => panic!("expected Real, got {other:?}"),
        }
        match dec_value(&mut d).unwrap() {
            Value::Real(r) => assert!(r.is_nan()),
            other => panic!("expected Real, got {other:?}"),
        }
    }
}
