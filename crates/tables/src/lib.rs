//! # fnc2-tables — persistent compiled-table artifacts
//!
//! FNC-2 is a *generator*: the expensive Figure-3 cascade (SNC/DNC/OAG
//! fixpoints, the SNC → l-ordered transformation, visit-sequence
//! generation, space optimization) runs once per grammar, and the
//! generated evaluators then run many times. This crate makes the
//! "once" literal across process boundaries: everything downstream of
//! the OLGA front end is serialized into a versioned, self-describing,
//! fingerprinted binary artifact that later invocations load instead of
//! re-running the cascade.
//!
//! ## What is (and is not) in an artifact
//!
//! Semantic functions are host-language closures and cannot be
//! serialized. An artifact therefore embeds the **OLGA source text** and
//! the loader re-runs the (cheap, linear) front end to rebuild the
//! [`Grammar`] with its closures — while the (potentially exponential)
//! analysis results are deserialized:
//!
//! * the [`Classification`] — IO/OI/DS relations, witnesses, the
//!   l-ordered partitions and plans;
//! * the [`VisitSeqs`];
//! * the space-optimization outputs — [`FlatProgram`], [`Lifetimes`],
//!   [`SpacePlan`];
//! * two *verification sections*: a canonical encoding of the grammar
//!   shape (everything but the closure bodies) and of the slot-compiled
//!   rule program, byte-compared against their freshly rebuilt
//!   counterparts at load time.
//!
//! ## Trust model
//!
//! An artifact is never trusted: the header carries a magic, a format
//! version, a content fingerprint (FNV-1a over format version, pipeline
//! configuration, and source), and a payload checksum. Every load
//! failure is a classified [`ArtifactError`] — callers fall back to full
//! recompilation; nothing in this crate panics on hostile input.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use fnc2_ag::Grammar;
use fnc2_analysis::{Classification, Inclusion};
use fnc2_space::{FlatProgram, Lifetimes, SpacePlan};
use fnc2_visit::{CompiledProgram, VisitSeqs};

pub mod codec;
pub mod store;
pub mod wire;

use wire::{Dec, Enc, WireError};

pub use codec::{encode_compiled_program, encode_grammar_shape};
pub use wire::fnv1a;

/// The artifact magic: `FNC2TBL` + a format byte.
pub const MAGIC: [u8; 8] = *b"FNC2TBL\0";

/// Current artifact format version. Bump on ANY change to the wire
/// encoding of any serialized structure — version skew is detected before
/// the payload is touched and rejected as [`ArtifactError::VersionSkew`].
pub const FORMAT_VERSION: u32 = 2;

/// Header size in bytes: magic (8) + version (4) + fingerprint (8) +
/// payload checksum (8) + payload length (8).
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8;

/// A classified artifact failure. Every variant is a reason to fall back
/// to full recompilation; none is a reason to panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactError {
    /// The file is shorter than a header, or the payload is cut short.
    Truncated,
    /// The magic bytes are not ours.
    BadMagic,
    /// The artifact was written by a different format version.
    VersionSkew {
        /// Version found in the header.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The header fingerprint does not match the fingerprint expected for
    /// the source and configuration being compiled (stale artifact).
    FingerprintMismatch {
        /// Fingerprint found in the header.
        found: u64,
        /// Fingerprint of the current source + configuration.
        expected: u64,
    },
    /// The payload checksum does not match (bit rot, truncation past the
    /// header, or tampering).
    ChecksumMismatch,
    /// The payload failed structural decoding.
    Corrupt(String),
    /// The artifact's pipeline configuration differs from the requested
    /// one (e.g. built without space optimization).
    ConfigMismatch,
    /// The artifact's grammar shape does not match the grammar it is
    /// being loaded for.
    GrammarMismatch,
    /// The artifact's slot-compiled program differs from a fresh compile
    /// of the rebuilt grammar (incompatible slot-compiler).
    ProgramMismatch,
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Truncated => write!(f, "artifact truncated"),
            ArtifactError::BadMagic => write!(f, "not a compiled-tables artifact (bad magic)"),
            ArtifactError::VersionSkew { found, expected } => write!(
                f,
                "artifact format version {found} (this build reads {expected})"
            ),
            ArtifactError::FingerprintMismatch { found, expected } => write!(
                f,
                "artifact fingerprint {found:016x} does not match source \
                 fingerprint {expected:016x} (stale artifact)"
            ),
            ArtifactError::ChecksumMismatch => write!(f, "artifact payload checksum mismatch"),
            ArtifactError::Corrupt(detail) => write!(f, "artifact payload corrupt: {detail}"),
            ArtifactError::ConfigMismatch => {
                write!(
                    f,
                    "artifact was built with a different pipeline configuration"
                )
            }
            ArtifactError::GrammarMismatch => {
                write!(f, "artifact was built for a different grammar")
            }
            ArtifactError::ProgramMismatch => write!(
                f,
                "artifact's compiled rule program does not match this build's slot compiler"
            ),
        }
    }
}

impl ArtifactError {
    /// Short stable slug naming the rejection class — used to tag
    /// quarantined artifacts (`fnc2-<fp>.<tag>.tbl`).
    pub fn tag(&self) -> &'static str {
        match self {
            ArtifactError::Truncated => "truncated",
            ArtifactError::BadMagic => "bad-magic",
            ArtifactError::VersionSkew { .. } => "version-skew",
            ArtifactError::FingerprintMismatch { .. } => "stale",
            ArtifactError::ChecksumMismatch => "checksum",
            ArtifactError::Corrupt(_) => "corrupt",
            ArtifactError::ConfigMismatch => "config",
            ArtifactError::GrammarMismatch => "grammar",
            ArtifactError::ProgramMismatch => "program",
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<WireError> for ArtifactError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Truncated { .. } => ArtifactError::Truncated,
            other => ArtifactError::Corrupt(other.to_string()),
        }
    }
}

/// The pipeline configuration an artifact was generated under. All three
/// knobs change the analysis results, so all three are part of the
/// fingerprint and checked on load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TablesConfig {
    /// Largest `k` tried by the OAG(k) cascade.
    pub max_oag_k: usize,
    /// Partition-reuse strategy of the transformation.
    pub inclusion: Inclusion,
    /// Whether the space optimizer ran.
    pub optimize_space: bool,
}

impl TablesConfig {
    fn encode(&self, e: &mut Enc) {
        e.usize(self.max_oag_k);
        e.u8(match self.inclusion {
            Inclusion::Equality => 0,
            Inclusion::Long => 1,
        });
        e.bool(self.optimize_space);
    }

    fn decode(d: &mut Dec<'_>) -> Result<TablesConfig, ArtifactError> {
        let max_oag_k = d.usize()?;
        let inclusion = match d.u8()? {
            0 => Inclusion::Equality,
            1 => Inclusion::Long,
            _ => return Err(ArtifactError::Corrupt("bad Inclusion tag".into())),
        };
        let optimize_space = d.bool()?;
        Ok(TablesConfig {
            max_oag_k,
            inclusion,
            optimize_space,
        })
    }

    fn fingerprint_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new();
        self.encode(&mut e);
        e.into_bytes()
    }
}

/// Everything downstream of the OLGA front end, ready to serialize or
/// freshly deserialized.
#[derive(Debug)]
pub struct Tables {
    /// The configuration the cascade ran under.
    pub config: TablesConfig,
    /// The OLGA source, when the grammar came from source. Grammars built
    /// programmatically (the fuzz generator) carry `None` and fingerprint
    /// over the grammar shape instead.
    pub source: Option<String>,
    /// Canonical grammar-shape bytes (verification section).
    pub grammar_shape: Vec<u8>,
    /// The full classification (IO/OI/DS, partitions, plans).
    pub classification: Classification,
    /// The visit sequences.
    pub seqs: VisitSeqs,
    /// The flattened program, when space optimization ran.
    pub flat: Option<FlatProgram>,
    /// The lifetime analysis, when space optimization ran.
    pub lifetimes: Option<Lifetimes>,
    /// The storage plan, when space optimization ran.
    pub space_plan: Option<SpacePlan>,
    /// The lint findings recorded when the cascade ran, so cached
    /// startups replay diagnostics without re-running the analyses.
    pub lint: Vec<fnc2_lint::Diagnostic>,
    /// Canonical slot-compiled program bytes (verification section).
    pub program: Vec<u8>,
}

impl Tables {
    /// Assembles the serializable view of a finished cascade. The
    /// compiled-program verification section is built here from the
    /// grammar (it is a cheap deterministic function of it).
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        grammar: &Grammar,
        config: TablesConfig,
        source: Option<&str>,
        classification: &Classification,
        seqs: &VisitSeqs,
        flat: Option<&FlatProgram>,
        lifetimes: Option<&Lifetimes>,
        space_plan: Option<&SpacePlan>,
        lint: &[fnc2_lint::Diagnostic],
    ) -> Tables {
        let program = encode_compiled_program(grammar, &CompiledProgram::new(grammar));
        Tables {
            config,
            source: source.map(str::to_owned),
            grammar_shape: encode_grammar_shape(grammar),
            classification: classification.clone(),
            seqs: seqs.clone(),
            flat: flat.cloned(),
            lifetimes: lifetimes.cloned(),
            space_plan: space_plan.cloned(),
            lint: lint.to_vec(),
            program,
        }
    }

    /// The artifact's content fingerprint: FNV-1a over the format
    /// version, the pipeline configuration, and the OLGA source (or the
    /// grammar shape for sourceless grammars). Any of these changing
    /// invalidates the artifact.
    pub fn fingerprint(&self) -> u64 {
        match self.source.as_deref() {
            Some(src) => fingerprint_source(src, &self.config),
            None => fingerprint_shape(&self.grammar_shape, &self.config),
        }
    }

    /// Serializes to the on-disk artifact format (header + payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Enc::new();
        self.config.encode(&mut p);
        match self.source.as_deref() {
            Some(src) => {
                p.bool(true);
                p.str(src);
            }
            None => p.bool(false),
        }
        p.bytes(&self.grammar_shape);
        codec::enc_classification(&mut p, &self.classification);
        codec::enc_visit_seqs(&mut p, &self.seqs);
        match &self.flat {
            Some(fp) => {
                p.bool(true);
                codec::enc_flat_program(&mut p, fp);
            }
            None => p.bool(false),
        }
        match &self.lifetimes {
            Some(lt) => {
                p.bool(true);
                codec::enc_lifetimes(&mut p, lt);
            }
            None => p.bool(false),
        }
        match &self.space_plan {
            Some(plan) => {
                p.bool(true);
                codec::enc_space_plan(&mut p, plan);
            }
            None => p.bool(false),
        }
        codec::enc_lint(&mut p, &self.lint);
        p.bytes(&self.program);
        let payload = p.into_bytes();

        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.fingerprint().to_le_bytes());
        out.extend_from_slice(&fnv1a(&[&payload]).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Reads the fingerprint from an artifact header without touching the
    /// payload (magic and version are still verified).
    pub fn peek_fingerprint(bytes: &[u8]) -> Result<u64, ArtifactError> {
        let (fingerprint, _) = check_header(bytes)?;
        Ok(fingerprint)
    }

    /// Deserializes an artifact, verifying magic, version, and payload
    /// checksum. The fingerprint is *returned with* the tables (callers
    /// check it against their expected fingerprint — this function cannot,
    /// because the expectation depends on what the caller is compiling).
    pub fn from_bytes(bytes: &[u8]) -> Result<(Tables, u64), ArtifactError> {
        let (fingerprint, payload) = check_header(bytes)?;
        let mut d = Dec::new(payload);
        let config = TablesConfig::decode(&mut d)?;
        let source = if d.bool().map_err(ArtifactError::from)? {
            Some(d.str().map_err(ArtifactError::from)?)
        } else {
            None
        };
        let grammar_shape = d.bytes().map_err(ArtifactError::from)?.to_vec();
        let classification = codec::dec_classification(&mut d).map_err(ArtifactError::from)?;
        let seqs = codec::dec_visit_seqs(&mut d).map_err(ArtifactError::from)?;
        let flat = if d.bool().map_err(ArtifactError::from)? {
            Some(codec::dec_flat_program(&mut d).map_err(ArtifactError::from)?)
        } else {
            None
        };
        let lifetimes = if d.bool().map_err(ArtifactError::from)? {
            Some(codec::dec_lifetimes(&mut d).map_err(ArtifactError::from)?)
        } else {
            None
        };
        let space_plan = if d.bool().map_err(ArtifactError::from)? {
            Some(codec::dec_space_plan(&mut d).map_err(ArtifactError::from)?)
        } else {
            None
        };
        let lint = codec::dec_lint(&mut d).map_err(ArtifactError::from)?;
        let program = d.bytes().map_err(ArtifactError::from)?.to_vec();
        d.finish().map_err(ArtifactError::from)?;
        let tables = Tables {
            config,
            source,
            grammar_shape,
            classification,
            seqs,
            flat,
            lifetimes,
            space_plan,
            lint,
            program,
        };
        Ok((tables, fingerprint))
    }

    /// Verifies this artifact against a rebuilt grammar: shape bytes must
    /// match exactly, and a fresh slot-compile of the grammar must
    /// reproduce the program verification section.
    pub fn verify_against(&self, grammar: &Grammar) -> Result<(), ArtifactError> {
        if self.grammar_shape != encode_grammar_shape(grammar) {
            return Err(ArtifactError::GrammarMismatch);
        }
        let fresh = encode_compiled_program(grammar, &CompiledProgram::new(grammar));
        if self.program != fresh {
            return Err(ArtifactError::ProgramMismatch);
        }
        Ok(())
    }
}

/// Splits and verifies the header, returning `(fingerprint, payload)`.
fn check_header(bytes: &[u8]) -> Result<(u64, &[u8]), ArtifactError> {
    if bytes.len() < HEADER_LEN {
        return Err(ArtifactError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(ArtifactError::VersionSkew {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let fingerprint = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[28..36].try_into().unwrap());
    let payload = &bytes[HEADER_LEN..];
    if payload_len != payload.len() as u64 {
        return Err(ArtifactError::Truncated);
    }
    if fnv1a(&[payload]) != checksum {
        return Err(ArtifactError::ChecksumMismatch);
    }
    Ok((fingerprint, payload))
}

/// The fingerprint for OLGA source under a configuration — what a cache
/// keys artifacts by, and what `--tables` validates against.
pub fn fingerprint_source(source: &str, config: &TablesConfig) -> u64 {
    fnv1a(&[
        &FORMAT_VERSION.to_le_bytes(),
        &config.fingerprint_bytes(),
        b"source:",
        source.as_bytes(),
    ])
}

/// The fingerprint for a sourceless (programmatically built) grammar,
/// over its canonical shape bytes.
pub fn fingerprint_shape(shape: &[u8], config: &TablesConfig) -> u64 {
    fnv1a(&[
        &FORMAT_VERSION.to_le_bytes(),
        &config.fingerprint_bytes(),
        b"shape:",
        shape,
    ])
}

#[cfg(test)]
mod tests {
    use fnc2_analysis::{classify, Inclusion};
    use fnc2_space::analyze_space;
    use fnc2_visit::build_visit_seqs;

    use super::*;

    pub(crate) fn desk_tables() -> (Grammar, Tables) {
        let g = fnc2_corpus::desk();
        let cls = classify(&g, 1, Inclusion::Long).unwrap();
        let lo = cls.l_ordered.as_ref().unwrap();
        let seqs = build_visit_seqs(&g, lo);
        let (fp, _ox, lt, plan) = analyze_space(&g, &seqs);
        let config = TablesConfig {
            max_oag_k: 1,
            inclusion: Inclusion::Long,
            optimize_space: true,
        };
        let t = Tables::build(
            &g,
            config,
            None,
            &cls,
            &seqs,
            Some(&fp),
            Some(&lt),
            Some(&plan),
            &fnc2_lint::lint_grammar(&g, Some(&cls)).diags,
        );
        (g, t)
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let (g, t) = desk_tables();
        let bytes = t.to_bytes();
        let (t2, fp) = Tables::from_bytes(&bytes).unwrap();
        assert_eq!(fp, t.fingerprint());
        t2.verify_against(&g).unwrap();
        // Canonical encoding: re-serializing the decoded tables must
        // reproduce the bytes exactly.
        assert_eq!(t2.to_bytes(), bytes);
    }

    #[test]
    fn every_truncation_is_classified() {
        let (_, t) = desk_tables();
        let bytes = t.to_bytes();
        // Cut at a selection of prefixes across header and payload: each
        // must produce a classified error, never a panic.
        for cut in (0..bytes.len()).step_by(7).chain([bytes.len() - 1]) {
            let err = Tables::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ArtifactError::Truncated
                        | ArtifactError::ChecksumMismatch
                        | ArtifactError::Corrupt(_)
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn version_skew_detected_before_payload() {
        let (_, t) = desk_tables();
        let mut bytes = t.to_bytes();
        bytes[8] = 0xFF;
        assert!(matches!(
            Tables::from_bytes(&bytes).unwrap_err(),
            ArtifactError::VersionSkew { found, expected: FORMAT_VERSION } if found != FORMAT_VERSION
        ));
    }

    #[test]
    fn bad_magic_detected() {
        let (_, t) = desk_tables();
        let mut bytes = t.to_bytes();
        bytes[0] = b'X';
        assert_eq!(
            Tables::from_bytes(&bytes).unwrap_err(),
            ArtifactError::BadMagic
        );
    }

    #[test]
    fn payload_bitflip_fails_checksum() {
        let (_, t) = desk_tables();
        let mut bytes = t.to_bytes();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0x40;
        assert_eq!(
            Tables::from_bytes(&bytes).unwrap_err(),
            ArtifactError::ChecksumMismatch
        );
    }

    #[test]
    fn different_grammar_rejected_by_shape() {
        let (_, t) = desk_tables();
        let other = fnc2_corpus::binary();
        let bytes = t.to_bytes();
        let (t2, _) = Tables::from_bytes(&bytes).unwrap();
        assert_eq!(
            t2.verify_against(&other).unwrap_err(),
            ArtifactError::GrammarMismatch
        );
    }

    #[test]
    fn fingerprint_tracks_source_and_config() {
        let config = TablesConfig {
            max_oag_k: 1,
            inclusion: Inclusion::Long,
            optimize_space: true,
        };
        let a = fingerprint_source("grammar one", &config);
        let b = fingerprint_source("grammar two", &config);
        assert_ne!(a, b);
        let no_space = TablesConfig {
            optimize_space: false,
            ..config
        };
        assert_ne!(a, fingerprint_source("grammar one", &no_space));
    }

    /// The artifact loader proves identity by re-running the OLGA front
    /// end and byte-comparing the rebuilt grammar's shape, so lowering
    /// must be deterministic run-to-run. The blocks grammar exercises the
    /// rule-model path (`with concat`), which once registered model
    /// functions in hash-map order and broke exactly this equality.
    #[test]
    fn front_end_lowering_is_deterministic() {
        let (a, _) = fnc2_corpus::blocks_olga();
        let (b, _) = fnc2_corpus::blocks_olga();
        assert_eq!(
            codec::encode_grammar_shape(&a),
            codec::encode_grammar_shape(&b),
            "two lowerings of the same OLGA source must agree byte-for-byte"
        );
    }
}
