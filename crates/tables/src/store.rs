//! Crash-consistent on-disk artifact store.
//!
//! [`TableStore`] owns the layout of a compiled-table cache directory and
//! performs every disk operation through a [`Vfs`] handle, so the fuzz
//! oracle can drive it with an injected-fault backend. The invariants it
//! maintains:
//!
//! - **Atomic publication** — an artifact appears under its final
//!   `fnc2-<fingerprint>.tbl` name only via `rename` of a fully-written,
//!   synced temp file. Readers never observe a torn artifact under the
//!   final name (torn *contents* are still possible after a real power
//!   cut, which is why the artifact format carries a checksum).
//! - **No stranded temps** — a failed write or rename removes its temp
//!   file; anything that survives a crash is recognisable by the
//!   [`TEMP_MARKER`] infix and swept by [`TableStore::sweep_temps`].
//! - **Quarantine, not overwrite** — corrupt or mismatched artifacts are
//!   moved into a `quarantine/` subdirectory for post-mortem instead of
//!   being silently replaced, so a flaky disk cannot hide its evidence.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use fnc2_vfs::{Vfs, VfsError, VfsErrorKind};

/// Infix that marks an in-flight (or crash-stranded) temp file.
pub const TEMP_MARKER: &str = ".tmp-";

/// Name of the quarantine subdirectory.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Monotonic discriminator so concurrent writers in one process never
/// collide on a temp name (the pid separates processes).
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// What a [`TableStore::gc`] sweep removed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Orphaned temp files removed (cache dir + quarantine dir).
    pub temps_removed: usize,
    /// Quarantined artifacts removed.
    pub quarantined_removed: usize,
}

/// A compiled-table cache directory addressed through a [`Vfs`].
#[derive(Debug)]
pub struct TableStore<'v> {
    dir: PathBuf,
    vfs: &'v dyn Vfs,
}

impl<'v> TableStore<'v> {
    /// A store rooted at `dir`, performing all I/O through `vfs`. The
    /// directory is created lazily on first write.
    pub fn new(dir: impl Into<PathBuf>, vfs: &'v dyn Vfs) -> Self {
        TableStore {
            dir: dir.into(),
            vfs,
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The quarantine subdirectory.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join(QUARANTINE_DIR)
    }

    /// Final path of the artifact for `fingerprint`.
    pub fn artifact_path(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("fnc2-{fingerprint:016x}.tbl"))
    }

    /// Read the artifact bytes for `fingerprint`. `Ok(None)` on a clean
    /// miss; storage faults are classified errors. The caller is
    /// responsible for decoding/verifying the bytes (a fault backend may
    /// return a silently truncated read — the artifact checksum catches
    /// it).
    pub fn load(&self, fingerprint: u64) -> Result<Option<Vec<u8>>, VfsError> {
        match self.vfs.read(&self.artifact_path(fingerprint)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind == VfsErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Atomically publish artifact bytes under `fingerprint`.
    ///
    /// Writes a temp file next to the final path, syncs it, then renames.
    /// On *any* failure the temp file is removed (best-effort — after a
    /// power-cut even the removal fails, which is what
    /// [`TableStore::sweep_temps`] is for) and a classified error is
    /// returned.
    pub fn store(&self, fingerprint: u64, bytes: &[u8]) -> Result<PathBuf, VfsError> {
        self.vfs.create_dir_all(&self.dir)?;
        let final_path = self.artifact_path(fingerprint);
        let tmp = self.temp_path(&final_path);
        if let Err(e) = self.vfs.write(&tmp, bytes) {
            let _ = self.vfs.remove_file(&tmp);
            return Err(e);
        }
        if let Err(e) = self.vfs.rename(&tmp, &final_path) {
            let _ = self.vfs.remove_file(&tmp);
            return Err(e);
        }
        Ok(final_path)
    }

    /// Move the artifact for `fingerprint` into `quarantine/`, tagged with
    /// a short reason slug. Returns the destination, or `Ok(None)` if the
    /// artifact no longer exists (already quarantined by a racing reader).
    pub fn quarantine(&self, fingerprint: u64, reason: &str) -> Result<Option<PathBuf>, VfsError> {
        let src = self.artifact_path(fingerprint);
        if !self.vfs.exists(&src) {
            return Ok(None);
        }
        let qdir = self.quarantine_dir();
        self.vfs.create_dir_all(&qdir)?;
        let dest = qdir.join(format!(
            "fnc2-{fingerprint:016x}.{}.tbl",
            reason_slug(reason)
        ));
        match self.vfs.rename(&src, &dest) {
            Ok(()) => Ok(Some(dest)),
            Err(e) if e.kind == VfsErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Artifacts currently in quarantine (sorted).
    pub fn quarantined(&self) -> Result<Vec<PathBuf>, VfsError> {
        self.list_dir(&self.quarantine_dir())
    }

    /// Remove orphaned temp files from the cache and quarantine
    /// directories. Returns how many were removed. Missing directories
    /// count as clean.
    pub fn sweep_temps(&self) -> Result<usize, VfsError> {
        let mut removed = 0;
        for dir in [self.dir.clone(), self.quarantine_dir()] {
            for path in self.list_dir(&dir)? {
                if is_temp_path(&path) {
                    match self.vfs.remove_file(&path) {
                        Ok(()) => removed += 1,
                        // A racing sweep already got it.
                        Err(e) if e.kind == VfsErrorKind::NotFound => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        Ok(removed)
    }

    /// Full garbage collection: sweep orphaned temps and delete
    /// quarantined artifacts.
    pub fn gc(&self) -> Result<GcReport, VfsError> {
        let temps_removed = self.sweep_temps()?;
        let mut quarantined_removed = 0;
        for path in self.list_dir(&self.quarantine_dir())? {
            match self.vfs.remove_file(&path) {
                Ok(()) => quarantined_removed += 1,
                Err(e) if e.kind == VfsErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(GcReport {
            temps_removed,
            quarantined_removed,
        })
    }

    fn temp_path(&self, final_path: &Path) -> PathBuf {
        let mut name = final_path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        name.push_str(TEMP_MARKER);
        name.push_str(&format!(
            "{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        final_path.with_file_name(name)
    }

    fn list_dir(&self, dir: &Path) -> Result<Vec<PathBuf>, VfsError> {
        match self.vfs.read_dir(dir) {
            Ok(entries) => Ok(entries),
            Err(e) if e.kind == VfsErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }
}

/// Is this a (possibly crash-stranded) temp file of ours?
pub fn is_temp_path(path: &Path) -> bool {
    path.file_name()
        .map(|n| n.to_string_lossy().contains(TEMP_MARKER))
        .unwrap_or(false)
}

fn reason_slug(reason: &str) -> String {
    let slug: String = reason
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    let trimmed: String = slug.trim_matches('-').chars().take(32).collect();
    if trimmed.is_empty() {
        "corrupt".to_string()
    } else {
        trimmed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnc2_vfs::{FaultVfs, IoFaultKind, IoFaultPlan, PlannedIoFault, RealVfs};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "fnc2-store-{}-{}-{}",
            tag,
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn non_temp_entries(dir: &Path) -> Vec<PathBuf> {
        let mut out: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        out.sort();
        out
    }

    #[test]
    fn store_load_round_trip_is_atomic() {
        let d = temp_dir("roundtrip");
        let vfs = RealVfs;
        let store = TableStore::new(&d, &vfs);
        assert_eq!(store.load(0xfeed).unwrap(), None);
        let path = store.store(0xfeed, b"artifact-bytes").unwrap();
        assert_eq!(path, store.artifact_path(0xfeed));
        assert_eq!(store.load(0xfeed).unwrap().unwrap(), b"artifact-bytes");
        // Nothing but the final artifact in the directory.
        assert_eq!(non_temp_entries(&d), vec![path]);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn failed_rename_leaves_a_clean_directory() {
        let d = temp_dir("failrename");
        let vfs = FaultVfs::new(IoFaultPlan::with_faults(vec![PlannedIoFault {
            nth: 0,
            kind: IoFaultKind::FailRename,
            transient: true,
        }]));
        let store = TableStore::new(&d, &vfs);
        let err = store.store(0xabc, b"data").unwrap_err();
        assert_eq!(err.kind, VfsErrorKind::RenameFailed);
        // The temp file was cleaned up on the failure path.
        assert!(non_temp_entries(&d).is_empty(), "directory not clean");
        // A retry on the same store succeeds (fault was transient).
        store.store(0xabc, b"data").unwrap();
        assert_eq!(store.load(0xabc).unwrap().unwrap(), b"data");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn torn_write_is_classified_and_cleaned() {
        let d = temp_dir("torn");
        let vfs = FaultVfs::new(IoFaultPlan::with_faults(vec![PlannedIoFault {
            nth: 0,
            kind: IoFaultKind::TornWrite { keep: 2 },
            transient: true,
        }]));
        let store = TableStore::new(&d, &vfs);
        let err = store.store(1, b"payload").unwrap_err();
        assert_eq!(err.kind, VfsErrorKind::TornWrite);
        assert!(non_temp_entries(&d).is_empty());
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn power_cut_strands_a_temp_and_sweep_recovers() {
        let d = temp_dir("cut");
        let vfs = FaultVfs::new(IoFaultPlan::with_faults(vec![PlannedIoFault {
            nth: 0,
            kind: IoFaultKind::PowerCut { keep: 3 },
            transient: true,
        }]));
        let store = TableStore::new(&d, &vfs);
        let err = store.store(2, b"artifact").unwrap_err();
        assert_eq!(err.kind, VfsErrorKind::PowerCut);
        // The cleanup itself failed (store is dead) — a temp is stranded,
        // exactly what a real crash leaves behind.
        let stranded = non_temp_entries(&d);
        assert_eq!(stranded.len(), 1);
        assert!(is_temp_path(&stranded[0]));
        // Recovery: fresh handle over the same dir sweeps it.
        let real = RealVfs;
        let recovered = TableStore::new(&d, &real);
        assert_eq!(recovered.sweep_temps().unwrap(), 1);
        assert!(non_temp_entries(&d).is_empty());
        assert_eq!(recovered.load(2).unwrap(), None);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn quarantine_moves_artifact_out_of_the_cache() {
        let d = temp_dir("quarantine");
        let vfs = RealVfs;
        let store = TableStore::new(&d, &vfs);
        store.store(0xdead, b"bad artifact").unwrap();
        let dest = store
            .quarantine(0xdead, "checksum mismatch")
            .unwrap()
            .unwrap();
        assert!(dest.starts_with(store.quarantine_dir()));
        assert_eq!(
            dest.file_name().unwrap().to_string_lossy(),
            "fnc2-000000000000dead.checksum-mismatch.tbl"
        );
        assert_eq!(store.load(0xdead).unwrap(), None);
        assert_eq!(store.quarantined().unwrap(), vec![dest]);
        // Quarantining a missing artifact is a no-op.
        assert_eq!(store.quarantine(0xdead, "again").unwrap(), None);
        // gc removes the quarantined artifact.
        let report = store.gc().unwrap();
        assert_eq!(report.quarantined_removed, 1);
        assert!(store.quarantined().unwrap().is_empty());
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn sweep_is_clean_on_missing_directory() {
        let d = temp_dir("missing").join("never-created");
        let vfs = RealVfs;
        let store = TableStore::new(&d, &vfs);
        assert_eq!(store.sweep_temps().unwrap(), 0);
        assert_eq!(store.gc().unwrap(), GcReport::default());
    }

    #[test]
    fn short_read_is_caught_by_artifact_checksum() {
        use crate::Tables;
        let d = temp_dir("shortread");
        let real = RealVfs;
        let (_, t) = crate::tests::desk_tables();
        let bytes = t.to_bytes();
        TableStore::new(&d, &real)
            .store(t.fingerprint(), &bytes)
            .unwrap();
        let vfs = FaultVfs::new(IoFaultPlan::with_faults(vec![PlannedIoFault {
            nth: 0,
            kind: IoFaultKind::ShortRead {
                keep: bytes.len() / 2,
            },
            transient: true,
        }]));
        let store = TableStore::new(&d, &vfs);
        let short = store.load(t.fingerprint()).unwrap().unwrap();
        assert!(short.len() < bytes.len());
        // The silent truncation must be caught downstream by the format.
        assert!(Tables::from_bytes(&short).is_err());
        std::fs::remove_dir_all(&d).unwrap();
    }
}
