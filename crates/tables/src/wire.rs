//! The hand-rolled binary wire format: little-endian fixed-width
//! integers, length-prefixed byte strings, and a strictly bounds-checked
//! reader whose every failure is a classified [`WireError`] — a truncated
//! or corrupted artifact must surface as an error value, never a panic.

use std::fmt;

/// A decoding failure. The artifact loader maps these to its own
/// classified error; no wire failure is ever allowed to panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value being read was complete.
    Truncated {
        /// Byte offset where the read started.
        at: usize,
    },
    /// A tag or length field held a value outside its domain.
    Invalid {
        /// What was being decoded.
        what: &'static str,
        /// Byte offset of the offending field.
        at: usize,
    },
    /// Bytes remained after the top-level value was fully decoded.
    Trailing {
        /// Number of unconsumed bytes.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { at } => write!(f, "input truncated at byte {at}"),
            WireError::Invalid { what, at } => write!(f, "invalid {what} at byte {at}"),
            WireError::Trailing { extra } => write!(f, "{extra} trailing bytes after payload"),
        }
    }
}

impl std::error::Error for WireError {}

/// Decoding result.
pub type WireResult<T> = Result<T, WireError>;

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian two's-complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (bit-exact round-trip,
    /// NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked sequential reader over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Current byte offset (for error reports).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`WireError::Trailing`] unless the input is exhausted.
    pub fn finish(self) -> WireResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Trailing {
                extra: self.buf.len() - self.pos,
            })
        }
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        let at = self.pos;
        let end = at.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                self.pos = end;
                Ok(&self.buf[at..end])
            }
            None => Err(WireError::Truncated { at }),
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> WireResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> WireResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64` and narrows it to `usize`, rejecting values that a
    /// hostile length field could use to force a huge allocation: the
    /// decoded length is additionally capped by the bytes that remain.
    pub fn usize(&mut self) -> WireResult<usize> {
        let at = self.pos;
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::Invalid {
            what: "usize field",
            at,
        })
    }

    /// Reads a collection length and sanity-checks it against a
    /// per-element lower bound of one byte, so a corrupted length cannot
    /// request more elements than the remaining input could possibly hold.
    pub fn seq_len(&mut self) -> WireResult<usize> {
        let at = self.pos;
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(WireError::Invalid {
                what: "collection length",
                at,
            });
        }
        Ok(n)
    }

    /// Reads a `bool`, rejecting bytes other than 0 and 1.
    pub fn bool(&mut self) -> WireResult<bool> {
        let at = self.pos;
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid { what: "bool", at }),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> WireResult<&'a [u8]> {
        let at = self.pos;
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(WireError::Invalid {
                what: "byte-string length",
                at,
            });
        }
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> WireResult<String> {
        let at = self.pos;
        let raw = self.bytes()?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| WireError::Invalid {
                what: "utf-8 string",
                at,
            })
    }
}

/// FNV-1a 64-bit hash — the artifact fingerprint and payload checksum
/// primitive (stable across platforms, no dependencies).
pub fn fnv1a(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_strings() {
        let mut e = Enc::new();
        e.u8(7);
        e.u16(300);
        e.u32(70_000);
        e.u64(u64::MAX);
        e.i64(-42);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.bool(true);
        e.str("héllo");
        e.bytes(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 300);
        assert_eq!(d.u32().unwrap(), 70_000);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert!(d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.bytes().unwrap(), &[1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut e = Enc::new();
        e.u64(5);
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(matches!(d.u64(), Err(WireError::Truncated { .. })));
        }
    }

    #[test]
    fn hostile_length_is_rejected() {
        let mut e = Enc::new();
        e.u64(u64::MAX);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.bytes(), Err(WireError::Invalid { .. })));
        let mut d2 = Dec::new(&bytes);
        assert!(matches!(d2.seq_len(), Err(WireError::Invalid { .. })));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Enc::new();
        e.u8(1);
        e.u8(2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        d.u8().unwrap();
        assert_eq!(d.finish(), Err(WireError::Trailing { extra: 1 }));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(&[b""]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(&[b"a"]), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(&[b"foobar"]), 0x8594_4171_f739_67e8);
        // Chunking must not affect the hash.
        assert_eq!(fnv1a(&[b"foo", b"bar"]), fnv1a(&[b"foobar"]));
    }
}
