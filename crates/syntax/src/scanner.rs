//! A specification-driven scanner — the lexical half of the `aic`/SYNTAX
//! substrate (paper §3.3).
//!
//! `aic` "generates abstract tree constructors which run in parallel with,
//! and are driven by, parsers constructed by the SYNTAX system". Our
//! reproduction provides a table-free scanner configured by a
//! [`ScannerSpec`]: keyword and operator literals plus the standard lexeme
//! classes (identifiers, integers, reals, strings), with line comments.

use std::fmt;

/// The class of a scanned token.
#[derive(Clone, Debug, PartialEq)]
pub enum Lexeme {
    /// A keyword (exact identifier match from the spec).
    Keyword(String),
    /// An operator/punctuation literal from the spec.
    Op(String),
    /// An identifier.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A real literal.
    Real(f64),
    /// A string literal.
    Str(String),
    /// End of input.
    Eof,
}

impl Lexeme {
    /// The terminal name used by grammar specifications: keywords and
    /// operators are their literal text; classes are `IDENT`, `INT`,
    /// `REAL`, `STRING`, `EOF`.
    pub fn terminal(&self) -> String {
        match self {
            Lexeme::Keyword(k) => k.clone(),
            Lexeme::Op(o) => o.clone(),
            Lexeme::Ident(_) => "IDENT".into(),
            Lexeme::Int(_) => "INT".into(),
            Lexeme::Real(_) => "REAL".into(),
            Lexeme::Str(_) => "STRING".into(),
            Lexeme::Eof => "EOF".into(),
        }
    }
}

impl fmt::Display for Lexeme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lexeme::Keyword(k) => write!(f, "`{k}`"),
            Lexeme::Op(o) => write!(f, "`{o}`"),
            Lexeme::Ident(s) => write!(f, "identifier `{s}`"),
            Lexeme::Int(i) => write!(f, "integer `{i}`"),
            Lexeme::Real(r) => write!(f, "real `{r}`"),
            Lexeme::Str(s) => write!(f, "string {s:?}"),
            Lexeme::Eof => write!(f, "end of input"),
        }
    }
}

/// A scanned token with 1-based line/column.
#[derive(Clone, Debug, PartialEq)]
pub struct Scanned {
    /// The lexeme.
    pub lexeme: Lexeme,
    /// Line.
    pub line: u32,
    /// Column.
    pub col: u32,
}

/// Scanner configuration.
#[derive(Clone, Debug, Default)]
pub struct ScannerSpec {
    /// Reserved identifiers.
    pub keywords: Vec<String>,
    /// Operator literals (longest match wins).
    pub operators: Vec<String>,
    /// Line-comment introducer (e.g. `"--"` or `"//"`), if any.
    pub line_comment: Option<String>,
    /// Whether the language has real literals (`12.5`).
    pub reals: bool,
}

impl ScannerSpec {
    /// Spec with the given keywords and operators, `--` comments, reals on.
    pub fn new<K: Into<String> + Clone, O: Into<String> + Clone>(
        keywords: &[K],
        operators: &[O],
    ) -> ScannerSpec {
        let mut operators: Vec<String> = operators.iter().cloned().map(Into::into).collect();
        operators.sort_by_key(|o| std::cmp::Reverse(o.len()));
        ScannerSpec {
            keywords: keywords.iter().cloned().map(Into::into).collect(),
            operators,
            line_comment: Some("--".into()),
            reals: true,
        }
    }
}

/// A scan error.
#[derive(Clone, Debug, PartialEq)]
pub struct ScanError {
    /// Description.
    pub message: String,
    /// Line.
    pub line: u32,
    /// Column.
    pub col: u32,
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: scan error: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ScanError {}

/// Scans `src` under `spec`.
///
/// # Errors
///
/// Fails on stray characters or unterminated strings.
pub fn scan(spec: &ScannerSpec, src: &str) -> Result<Vec<Scanned>, ScanError> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1u32;
    let mut col = 1u32;

    let advance = |c: char, line: &mut u32, col: &mut u32| {
        if c == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
    };

    'outer: while i < n {
        let c = chars[i];
        if c.is_whitespace() {
            advance(c, &mut line, &mut col);
            i += 1;
            continue;
        }
        if let Some(cm) = &spec.line_comment {
            if chars[i..].starts_with(&cm.chars().collect::<Vec<_>>()[..]) {
                while i < n && chars[i] != '\n' {
                    advance(chars[i], &mut line, &mut col);
                    i += 1;
                }
                continue;
            }
        }
        let (tl, tc) = (line, col);
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                advance(chars[i], &mut line, &mut col);
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            let lexeme = if spec.keywords.contains(&word) {
                Lexeme::Keyword(word)
            } else {
                Lexeme::Ident(word)
            };
            out.push(Scanned {
                lexeme,
                line: tl,
                col: tc,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < n && chars[i].is_ascii_digit() {
                advance(chars[i], &mut line, &mut col);
                i += 1;
            }
            let mut is_real = false;
            if spec.reals && i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                is_real = true;
                advance('.', &mut line, &mut col);
                i += 1;
                while i < n && chars[i].is_ascii_digit() {
                    advance(chars[i], &mut line, &mut col);
                    i += 1;
                }
            }
            let text: String = chars[start..i].iter().collect();
            let lexeme = if is_real {
                Lexeme::Real(text.parse().map_err(|_| ScanError {
                    message: format!("malformed real `{text}`"),
                    line: tl,
                    col: tc,
                })?)
            } else {
                Lexeme::Int(text.parse().map_err(|_| ScanError {
                    message: format!("integer `{text}` out of range"),
                    line: tl,
                    col: tc,
                })?)
            };
            out.push(Scanned {
                lexeme,
                line: tl,
                col: tc,
            });
            continue;
        }
        if c == '\'' || c == '"' {
            let quote = c;
            advance(c, &mut line, &mut col);
            i += 1;
            let mut s = String::new();
            while i < n {
                let d = chars[i];
                advance(d, &mut line, &mut col);
                i += 1;
                if d == quote {
                    out.push(Scanned {
                        lexeme: Lexeme::Str(s),
                        line: tl,
                        col: tc,
                    });
                    continue 'outer;
                }
                s.push(d);
            }
            return Err(ScanError {
                message: "unterminated string".into(),
                line: tl,
                col: tc,
            });
        }
        // Operators: longest-first from the (pre-sorted) spec.
        for op in &spec.operators {
            let opc: Vec<char> = op.chars().collect();
            if chars[i..].starts_with(&opc[..]) {
                for &d in &opc {
                    advance(d, &mut line, &mut col);
                }
                i += opc.len();
                out.push(Scanned {
                    lexeme: Lexeme::Op(op.clone()),
                    line: tl,
                    col: tc,
                });
                continue 'outer;
            }
        }
        return Err(ScanError {
            message: format!("unexpected character `{c}`"),
            line,
            col,
        });
    }
    out.push(Scanned {
        lexeme: Lexeme::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ScannerSpec {
        ScannerSpec::new(
            &["program", "begin", "end", "if", "then"],
            &[":=", "+", "-", "*", "(", ")", ";", "<=", "<"],
        )
    }

    #[test]
    fn scans_program_fragment() {
        let toks = scan(&spec(), "begin x := 1 + 2; end").unwrap();
        let kinds: Vec<String> = toks.iter().map(|t| t.lexeme.terminal()).collect();
        assert_eq!(
            kinds,
            vec!["begin", "IDENT", ":=", "INT", "+", "INT", ";", "end", "EOF"]
        );
    }

    #[test]
    fn longest_operator_wins() {
        let toks = scan(&spec(), "a <= b < c").unwrap();
        let kinds: Vec<String> = toks.iter().map(|t| t.lexeme.terminal()).collect();
        assert_eq!(kinds, vec!["IDENT", "<=", "IDENT", "<", "IDENT", "EOF"]);
    }

    #[test]
    fn comments_and_positions() {
        let toks = scan(&spec(), "x -- rest\ny").unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].col, 1);
    }

    #[test]
    fn strings_single_or_double_quote() {
        let toks = scan(&spec(), "'abc' \"d\"").unwrap();
        assert_eq!(toks[0].lexeme, Lexeme::Str("abc".into()));
        assert_eq!(toks[1].lexeme, Lexeme::Str("d".into()));
        assert!(scan(&spec(), "'oops").is_err());
    }

    #[test]
    fn stray_character_is_an_error() {
        let e = scan(&spec(), "a ? b").unwrap_err();
        assert!(e.message.contains('?'));
    }

    #[test]
    fn reals_toggle() {
        let mut s = spec();
        let toks = scan(&s, "1.5").unwrap();
        assert_eq!(toks[0].lexeme, Lexeme::Real(1.5));
        s.reals = false;
        // With reals off `1.5` is INT `.`-op? `.` is not an operator in
        // the spec, so it errors.
        assert!(scan(&s, "1.5").is_err());
    }
}
