//! # fnc2-syntax — scanner and LL(1) tree-constructor generation
//!
//! The `aic`/SYNTAX substrate of FNC-2 (paper §3.3): "`aic` generates
//! abstract tree constructors which run in parallel with, and are driven
//! by, parsers constructed by the SYNTAX system". This crate provides the
//! two halves for the reproduction:
//!
//! * [`scan`] — a specification-driven scanner ([`ScannerSpec`]);
//! * [`Ll1Parser`] — FIRST/FOLLOW computation, predictive-table
//!   construction with conflict reporting, and a parse driver that builds
//!   attributed abstract trees directly (tokens attached as node values).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ll1;
mod scanner;

pub use ll1::{n, t, Action, Cfg, CfgError, CfgRule, DriveError, Ll1Parser, Sym};
pub use scanner::{scan, Lexeme, ScanError, Scanned, ScannerSpec};
