//! LL(1) analysis, table construction and the predictive parse driver that
//! builds abstract trees — the parsing half of the `aic`/SYNTAX substrate
//! (paper §3.3): "abstract tree constructors which run in parallel with,
//! and are driven by, parsers".
//!
//! A [`Cfg`] maps each concrete rule to a tree-construction [`Action`]:
//! build an abstract operator node (optionally attaching one terminal's
//! lexeme as the node token) or forward the single sub-tree. The generator
//! computes NULLABLE/FIRST/FOLLOW, builds the predictive table, and reports
//! conflicts; the driver parses token streams into [`fnc2_ag::Tree`]s.

use std::collections::{HashMap, HashSet};
use std::fmt;

use fnc2_ag::{Grammar, NodeId, ProductionId, Tree, TreeBuilder, Value};

use crate::scanner::{Lexeme, Scanned};

/// A grammar symbol.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Sym {
    /// A terminal, named by its lexeme text (`"begin"`, `"+"`) or class
    /// (`IDENT`, `INT`, `REAL`, `STRING`).
    T(String),
    /// A nonterminal.
    N(String),
}

/// Tree-construction action of one rule.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Build `operator(children…)`; children are the RHS nonterminals'
    /// trees in order. `token_from` optionally indexes the RHS *terminals*
    /// (0-based) whose lexeme becomes the node's token.
    Node {
        /// Abstract operator (production) name.
        operator: String,
        /// Index into the rule's terminals for the token, if any.
        token_from: Option<usize>,
    },
    /// Forward the single RHS nonterminal's tree (brackets, chaining).
    Forward,
}

/// One concrete rule.
#[derive(Clone, Debug)]
pub struct CfgRule {
    /// LHS nonterminal.
    pub lhs: String,
    /// RHS symbols (empty = ε).
    pub rhs: Vec<Sym>,
    /// Construction action.
    pub action: Action,
}

/// A concrete grammar specification.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Start nonterminal.
    pub start: String,
    /// Rules.
    pub rules: Vec<CfgRule>,
}

/// Errors in the specification (including LL(1) conflicts).
#[derive(Clone, Debug, PartialEq)]
pub enum CfgError {
    /// A rule references an undefined nonterminal.
    UnknownNonterminal(String),
    /// An action references an unknown abstract operator.
    UnknownOperator(String),
    /// The number of RHS nonterminals does not match the abstract
    /// production's arity.
    ArityMismatch {
        /// Operator name.
        operator: String,
        /// Abstract arity.
        expected: usize,
        /// Concrete nonterminal count.
        found: usize,
    },
    /// `Forward` on a rule without exactly one nonterminal.
    BadForward(String),
    /// A `token_from` index with no such terminal.
    BadTokenIndex(String),
    /// Two rules of one nonterminal compete for the same lookahead.
    Ll1Conflict {
        /// The nonterminal.
        nonterminal: String,
        /// The lookahead terminal.
        terminal: String,
    },
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::UnknownNonterminal(n) => write!(f, "unknown nonterminal `{n}`"),
            CfgError::UnknownOperator(o) => write!(f, "unknown abstract operator `{o}`"),
            CfgError::ArityMismatch {
                operator,
                expected,
                found,
            } => write!(
                f,
                "operator `{operator}` has arity {expected}, rule provides {found} subtree(s)"
            ),
            CfgError::BadForward(n) => {
                write!(f, "forward rule of `{n}` must have exactly one nonterminal")
            }
            CfgError::BadTokenIndex(n) => write!(f, "token index out of range in a rule of `{n}`"),
            CfgError::Ll1Conflict {
                nonterminal,
                terminal,
            } => write!(
                f,
                "LL(1) conflict: two rules of `{nonterminal}` apply on lookahead `{terminal}`"
            ),
        }
    }
}

impl std::error::Error for CfgError {}

/// A parse failure.
#[derive(Clone, Debug, PartialEq)]
pub struct DriveError {
    /// Description.
    pub message: String,
    /// Line of the offending token.
    pub line: u32,
    /// Column.
    pub col: u32,
}

impl fmt::Display for DriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: syntax error: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for DriveError {}

/// A generated LL(1) parser with tree-construction actions.
#[derive(Clone, Debug)]
pub struct Ll1Parser {
    cfg: Cfg,
    /// Nonterminal → dense index.
    nts: HashMap<String, usize>,
    /// Predictive table: `(nt index, terminal) → rule index`.
    table: HashMap<(usize, String), usize>,
    /// Abstract production per Node action, resolved once.
    productions: Vec<Option<ProductionId>>,
    first: Vec<HashSet<String>>,
    follow: Vec<HashSet<String>>,
    nullable: Vec<bool>,
}

impl Ll1Parser {
    /// Builds the parser, validating actions against the abstract grammar
    /// and checking the LL(1) property.
    ///
    /// # Errors
    ///
    /// Reports specification errors and LL(1) conflicts.
    pub fn new(cfg: Cfg, grammar: &Grammar) -> Result<Ll1Parser, CfgError> {
        let mut nts: HashMap<String, usize> = HashMap::new();
        for r in &cfg.rules {
            let next = nts.len();
            nts.entry(r.lhs.clone()).or_insert(next);
        }
        if !nts.contains_key(&cfg.start) {
            return Err(CfgError::UnknownNonterminal(cfg.start.clone()));
        }
        // Validate symbols and actions.
        let mut productions = Vec::with_capacity(cfg.rules.len());
        for r in &cfg.rules {
            for s in &r.rhs {
                if let Sym::N(n) = s {
                    if !nts.contains_key(n) {
                        return Err(CfgError::UnknownNonterminal(n.clone()));
                    }
                }
            }
            let n_children = r.rhs.iter().filter(|s| matches!(s, Sym::N(_))).count();
            let n_terminals = r.rhs.iter().filter(|s| matches!(s, Sym::T(_))).count();
            match &r.action {
                Action::Forward => {
                    if n_children != 1 {
                        return Err(CfgError::BadForward(r.lhs.clone()));
                    }
                    productions.push(None);
                }
                Action::Node {
                    operator,
                    token_from,
                } => {
                    let Some(p) = grammar.production_by_name(operator) else {
                        return Err(CfgError::UnknownOperator(operator.clone()));
                    };
                    let arity = grammar.production(p).arity();
                    if arity != n_children {
                        return Err(CfgError::ArityMismatch {
                            operator: operator.clone(),
                            expected: arity,
                            found: n_children,
                        });
                    }
                    if let Some(i) = token_from {
                        if *i >= n_terminals {
                            return Err(CfgError::BadTokenIndex(r.lhs.clone()));
                        }
                    }
                    productions.push(Some(p));
                }
            }
        }

        // NULLABLE / FIRST / FOLLOW.
        let n = nts.len();
        let mut nullable = vec![false; n];
        let mut first: Vec<HashSet<String>> = vec![HashSet::new(); n];
        let mut follow: Vec<HashSet<String>> = vec![HashSet::new(); n];
        follow[nts[&cfg.start]].insert("EOF".to_string());
        let mut changed = true;
        while changed {
            changed = false;
            for r in &cfg.rules {
                let a = nts[&r.lhs];
                // nullable
                if !nullable[a]
                    && r.rhs.iter().all(|s| match s {
                        Sym::T(_) => false,
                        Sym::N(x) => nullable[nts[x]],
                    })
                {
                    nullable[a] = true;
                    changed = true;
                }
                // first
                for s in &r.rhs {
                    match s {
                        Sym::T(t) => {
                            changed |= first[a].insert(t.clone());
                            break;
                        }
                        Sym::N(x) => {
                            let add: Vec<String> = first[nts[x]].iter().cloned().collect();
                            for t in add {
                                changed |= first[a].insert(t);
                            }
                            if !nullable[nts[x]] {
                                break;
                            }
                        }
                    }
                }
                // follow
                for (i, s) in r.rhs.iter().enumerate() {
                    let Sym::N(x) = s else { continue };
                    let xi = nts[x];
                    let mut rest_nullable = true;
                    for t in &r.rhs[i + 1..] {
                        match t {
                            Sym::T(t) => {
                                changed |= follow[xi].insert(t.clone());
                                rest_nullable = false;
                                break;
                            }
                            Sym::N(y) => {
                                let add: Vec<String> = first[nts[y]].iter().cloned().collect();
                                for t in add {
                                    changed |= follow[xi].insert(t);
                                }
                                if !nullable[nts[y]] {
                                    rest_nullable = false;
                                    break;
                                }
                            }
                        }
                    }
                    if rest_nullable {
                        let add: Vec<String> = follow[a].iter().cloned().collect();
                        for t in add {
                            changed |= follow[xi].insert(t);
                        }
                    }
                }
            }
        }

        // Predictive table.
        let mut table: HashMap<(usize, String), usize> = HashMap::new();
        for (ri, r) in cfg.rules.iter().enumerate() {
            let a = nts[&r.lhs];
            let mut lookaheads: HashSet<String> = HashSet::new();
            let mut all_nullable = true;
            for s in &r.rhs {
                match s {
                    Sym::T(t) => {
                        lookaheads.insert(t.clone());
                        all_nullable = false;
                        break;
                    }
                    Sym::N(x) => {
                        lookaheads.extend(first[nts[x]].iter().cloned());
                        if !nullable[nts[x]] {
                            all_nullable = false;
                            break;
                        }
                    }
                }
            }
            if all_nullable {
                lookaheads.extend(follow[a].iter().cloned());
            }
            for t in lookaheads {
                if table.insert((a, t.clone()), ri).is_some() {
                    return Err(CfgError::Ll1Conflict {
                        nonterminal: r.lhs.clone(),
                        terminal: t,
                    });
                }
            }
        }

        Ok(Ll1Parser {
            cfg,
            nts,
            table,
            productions,
            first,
            follow,
            nullable,
        })
    }

    /// FIRST set of a nonterminal (diagnostics, tests).
    pub fn first_of(&self, nt: &str) -> Option<&HashSet<String>> {
        self.nts.get(nt).map(|&i| &self.first[i])
    }

    /// FOLLOW set of a nonterminal.
    pub fn follow_of(&self, nt: &str) -> Option<&HashSet<String>> {
        self.nts.get(nt).map(|&i| &self.follow[i])
    }

    /// True if the nonterminal derives ε.
    pub fn is_nullable(&self, nt: &str) -> Option<bool> {
        self.nts.get(nt).map(|&i| self.nullable[i])
    }

    /// Parses a token stream into an abstract tree of `grammar` (the same
    /// grammar the parser was built against).
    ///
    /// # Errors
    ///
    /// Reports the first syntax error with its position.
    pub fn parse(&self, grammar: &Grammar, tokens: &[Scanned]) -> Result<Tree, DriveError> {
        let mut tb = TreeBuilder::new(grammar);
        let mut at = 0usize;
        let root = self.parse_nt(grammar, &mut tb, self.nts[&self.cfg.start], tokens, &mut at)?;
        // All input must be consumed.
        if tokens[at].lexeme != Lexeme::Eof {
            return Err(DriveError {
                message: format!("unexpected {} after the program", tokens[at].lexeme),
                line: tokens[at].line,
                col: tokens[at].col,
            });
        }
        tb.finish_root(root).map_err(|e| DriveError {
            message: e.to_string(),
            line: 1,
            col: 1,
        })
    }

    #[allow(clippy::only_used_in_recursion)]
    fn parse_nt(
        &self,
        grammar: &Grammar,
        tb: &mut TreeBuilder,
        nt: usize,
        tokens: &[Scanned],
        at: &mut usize,
    ) -> Result<NodeId, DriveError> {
        let look = tokens[*at].lexeme.terminal();
        let Some(&ri) = self.table.get(&(nt, look.clone())) else {
            let name = self
                .nts
                .iter()
                .find(|(_, &i)| i == nt)
                .map(|(n, _)| n.as_str())
                .unwrap_or("?");
            return Err(DriveError {
                message: format!("unexpected {} while parsing {name}", tokens[*at].lexeme),
                line: tokens[*at].line,
                col: tokens[*at].col,
            });
        };
        let rule = &self.cfg.rules[ri];
        let mut children: Vec<NodeId> = Vec::new();
        let mut terminals: Vec<Lexeme> = Vec::new();
        for s in &rule.rhs {
            match s {
                Sym::T(t) => {
                    let tok = &tokens[*at];
                    if tok.lexeme.terminal() != *t {
                        return Err(DriveError {
                            message: format!("expected `{t}`, found {}", tok.lexeme),
                            line: tok.line,
                            col: tok.col,
                        });
                    }
                    terminals.push(tok.lexeme.clone());
                    *at += 1;
                }
                Sym::N(x) => {
                    let c = self.parse_nt(grammar, tb, self.nts[x], tokens, at)?;
                    children.push(c);
                }
            }
        }
        match (&rule.action, self.productions[ri]) {
            (Action::Forward, _) => Ok(children[0]),
            (Action::Node { token_from, .. }, Some(p)) => {
                let token = token_from.map(|i| lexeme_value(&terminals[i]));
                let here = (*at).min(tokens.len() - 1);
                tb.node_with_token(p, &children, token)
                    .map_err(|e| DriveError {
                        message: e.to_string(),
                        line: tokens[here].line,
                        col: tokens[here].col,
                    })
            }
            (Action::Node { .. }, None) => unreachable!("validated at construction"),
        }
    }
}

/// Converts a lexeme to the token [`Value`] attached to tree nodes.
fn lexeme_value(l: &Lexeme) -> Value {
    match l {
        Lexeme::Ident(s) | Lexeme::Str(s) => Value::str(s),
        Lexeme::Keyword(s) | Lexeme::Op(s) => Value::str(s),
        Lexeme::Int(i) => Value::Int(*i),
        Lexeme::Real(r) => Value::Real(*r),
        Lexeme::Eof => Value::Unit,
    }
}

/// Shorthand for building [`Sym::T`].
pub fn t(s: &str) -> Sym {
    Sym::T(s.to_string())
}

/// Shorthand for building [`Sym::N`].
pub fn n(s: &str) -> Sym {
    Sym::N(s.to_string())
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{GrammarBuilder, Occ};

    use crate::scanner::{scan, ScannerSpec};

    use super::*;

    /// Abstract grammar: E ::= add(E,E) | lit.
    fn expr_grammar() -> Grammar {
        let mut g = GrammarBuilder::new("expr");
        let e = g.phylum("E");
        let v = g.syn(e, "v");
        g.func("add", 2, |a| Value::Int(a[0].as_int() + a[1].as_int()));
        let add = g.production("add", e, &[e, e]);
        g.call(
            add,
            Occ::lhs(v),
            "add",
            [Occ::new(1, v).into(), Occ::new(2, v).into()],
        );
        let lit = g.production("lit", e, &[]);
        g.copy(lit, Occ::lhs(v), fnc2_ag::Arg::Token);
        g.finish().unwrap()
    }

    /// Concrete grammar:
    ///   E  -> T E'
    ///   E' -> + T E' | ε      (left-assoc folded right here; fine for tests)
    ///   T  -> INT | ( E )
    fn expr_cfg() -> Cfg {
        Cfg {
            start: "E".into(),
            rules: vec![
                CfgRule {
                    lhs: "E".into(),
                    rhs: vec![n("T"), n("E'")],
                    action: Action::Node {
                        operator: "fold".into(),
                        token_from: None,
                    },
                },
                CfgRule {
                    lhs: "E'".into(),
                    rhs: vec![t("+"), n("T"), n("E'")],
                    action: Action::Node {
                        operator: "fold".into(),
                        token_from: None,
                    },
                },
                CfgRule {
                    lhs: "E'".into(),
                    rhs: vec![],
                    action: Action::Node {
                        operator: "nil".into(),
                        token_from: None,
                    },
                },
                CfgRule {
                    lhs: "T".into(),
                    rhs: vec![t("INT")],
                    action: Action::Node {
                        operator: "lit".into(),
                        token_from: Some(0),
                    },
                },
                CfgRule {
                    lhs: "T".into(),
                    rhs: vec![t("("), n("E"), t(")")],
                    action: Action::Forward,
                },
            ],
        }
    }

    #[test]
    fn ll1_sets_are_correct() {
        // The E-level "fold" has children (T:E, E':R) — but E' derives
        // fold(+TE')|nil at the R level. Adjust the cfg: E' rules build
        // R-phylum nodes. The first cfg rule's "fold" takes (E, R).
        let mut cfg = expr_cfg();
        // E' -> + T E' builds R ::= fold2(E, R).
        cfg.rules[1].action = Action::Node {
            operator: "fold2".into(),
            token_from: None,
        };
        let mut g = GrammarBuilder::new("fold");
        let e = g.phylum("E");
        let v = g.syn(e, "v");
        let r = g.phylum("R");
        let acc = g.inh(r, "acc");
        let rv = g.syn(r, "rv");
        g.func("add", 2, |a| Value::Int(a[0].as_int() + a[1].as_int()));
        let fold = g.production("fold", e, &[e, r]);
        g.copy(fold, Occ::new(2, acc), Occ::new(1, v));
        g.copy(fold, Occ::lhs(v), Occ::new(2, rv));
        let fold2 = g.production("fold2", r, &[e, r]);
        g.call(
            fold2,
            Occ::new(2, acc),
            "add",
            [Occ::lhs(acc).into(), Occ::new(1, v).into()],
        );
        g.copy(fold2, Occ::lhs(rv), Occ::new(2, rv));
        let nil = g.production("nil", r, &[]);
        g.copy(nil, Occ::lhs(rv), Occ::lhs(acc));
        let lit = g.production("lit", e, &[]);
        g.copy(lit, Occ::lhs(v), fnc2_ag::Arg::Token);
        let g = g.finish().unwrap();

        let p = Ll1Parser::new(cfg, &g).unwrap();
        assert_eq!(p.is_nullable("E'"), Some(true));
        assert_eq!(p.is_nullable("T"), Some(false));
        assert!(p.first_of("T").unwrap().contains("INT"));
        assert!(p.first_of("T").unwrap().contains("("));
        assert!(p.first_of("E").unwrap().contains("INT"));
        assert!(p.follow_of("E'").unwrap().contains("EOF"));
        assert!(p.follow_of("E").unwrap().contains(")"));

        // Parse and evaluate 1 + 2 + 3 (+ (4)).
        let spec = ScannerSpec::new::<&str, &str>(&[], &["+", "(", ")"]);
        let toks = scan(&spec, "1 + 2 + (3 + 4)").unwrap();
        let tree = p.parse(&g, &toks).unwrap();
        assert!(tree.size() >= 7);
        let dynev = fnc2_visit::DynamicEvaluator::new(&g);
        let (vals, _) = dynev
            .evaluate(&tree, &fnc2_visit::RootInputs::new())
            .unwrap();
        assert_eq!(vals.get(&g, tree.root(), v), Some(&Value::Int(10)));
    }

    #[test]
    fn conflicts_are_reported() {
        let g = expr_grammar();
        let cfg = Cfg {
            start: "E".into(),
            rules: vec![
                CfgRule {
                    lhs: "E".into(),
                    rhs: vec![t("INT")],
                    action: Action::Node {
                        operator: "lit".into(),
                        token_from: Some(0),
                    },
                },
                CfgRule {
                    lhs: "E".into(),
                    rhs: vec![t("INT"), t("+")],
                    action: Action::Node {
                        operator: "lit".into(),
                        token_from: Some(0),
                    },
                },
            ],
        };
        let e = Ll1Parser::new(cfg, &g).unwrap_err();
        assert!(matches!(e, CfgError::Ll1Conflict { .. }), "{e}");
    }

    #[test]
    fn arity_validated_against_abstract_grammar() {
        let g = expr_grammar();
        let cfg = Cfg {
            start: "E".into(),
            rules: vec![CfgRule {
                lhs: "E".into(),
                rhs: vec![t("INT")],
                action: Action::Node {
                    operator: "add".into(), // needs 2 children
                    token_from: None,
                },
            }],
        };
        assert!(matches!(
            Ll1Parser::new(cfg, &g),
            Err(CfgError::ArityMismatch {
                expected: 2,
                found: 0,
                ..
            })
        ));
    }

    #[test]
    fn syntax_errors_carry_positions() {
        let g = expr_grammar();
        let cfg = Cfg {
            start: "E".into(),
            rules: vec![CfgRule {
                lhs: "E".into(),
                rhs: vec![t("INT")],
                action: Action::Node {
                    operator: "lit".into(),
                    token_from: Some(0),
                },
            }],
        };
        let p = Ll1Parser::new(cfg, &g).unwrap();
        let spec = ScannerSpec::new::<&str, &str>(&[], &["+"]);
        let toks = scan(&spec, "\n +").unwrap();
        let e = p.parse(&g, &toks).unwrap_err();
        assert_eq!(e.line, 2);
        // Trailing garbage detected.
        let toks = scan(&spec, "1 1").unwrap();
        let e = p.parse(&g, &toks).unwrap_err();
        assert!(e.message.contains("after the program"), "{e}");
    }
}
