//! Per-phylum attribute indexing shared by all class tests.

use fnc2_ag::{AttrId, AttrKind, Grammar, PhylumId};

/// Maps a phylum's [`AttrId`]s to dense local indices `0..k`, the index
/// space of the per-phylum relations (`IO`, `OI`, `DS`).
#[derive(Clone, Debug)]
pub struct AttrIndex {
    /// `attrs[phylum][local] = AttrId` (declaration order).
    per_phylum: Vec<Vec<AttrId>>,
}

impl AttrIndex {
    /// Builds the index for `grammar`.
    pub fn new(grammar: &Grammar) -> Self {
        let per_phylum = grammar
            .phyla()
            .map(|ph| grammar.phylum(ph).attrs().to_vec())
            .collect();
        AttrIndex { per_phylum }
    }

    /// The attributes of `phylum` in local-index order.
    pub fn attrs(&self, phylum: PhylumId) -> &[AttrId] {
        &self.per_phylum[phylum.index()]
    }

    /// Number of attributes of `phylum`.
    pub fn len(&self, phylum: PhylumId) -> usize {
        self.per_phylum[phylum.index()].len()
    }

    /// The local index of `attr` on its phylum (== its declaration offset).
    pub fn local(&self, grammar: &Grammar, attr: AttrId) -> usize {
        grammar.attr(attr).offset()
    }

    /// The attribute at local index `i` of `phylum`.
    pub fn attr_at(&self, phylum: PhylumId, i: usize) -> AttrId {
        self.per_phylum[phylum.index()][i]
    }

    /// Local indices of `phylum`'s attributes of the given kind.
    pub fn of_kind(&self, grammar: &Grammar, phylum: PhylumId, kind: AttrKind) -> Vec<usize> {
        self.per_phylum[phylum.index()]
            .iter()
            .enumerate()
            .filter(|(_, &a)| grammar.attr(a).kind() == kind)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{GrammarBuilder, Occ, Value};

    use super::*;

    #[test]
    fn index_matches_offsets() {
        let mut g = GrammarBuilder::new("t");
        let s = g.phylum("S");
        let a = g.inh(s, "a");
        let b = g.syn(s, "b");
        let p = g.production("leaf", s, &[]);
        g.copy(p, Occ::lhs(b), Occ::lhs(a));
        let _ = Value::Unit;
        let g = g.finish().unwrap();
        let ix = AttrIndex::new(&g);
        assert_eq!(ix.len(s), 2);
        assert_eq!(ix.local(&g, a), 0);
        assert_eq!(ix.local(&g, b), 1);
        assert_eq!(ix.attr_at(s, 1), b);
        assert_eq!(ix.of_kind(&g, s, AttrKind::Synthesized), vec![1]);
        assert_eq!(ix.of_kind(&g, s, AttrKind::Inherited), vec![0]);
    }
}
