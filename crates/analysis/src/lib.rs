//! # fnc2-analysis — AG class tests and the SNC → l-ordered transformation
//!
//! The front half of FNC-2's evaluator generator (paper §2.1 & §3.1, Fig. 3):
//!
//! * [`snc_test`] — strong (absolute) non-circularity, computing the `IO`
//!   argument selectors;
//! * [`dnc_test`] — double non-circularity, computing the `OI` context
//!   selectors (the class that enables start-anywhere and incremental
//!   evaluation);
//! * [`oag_test`] — Kastens' ordered AGs, generalized to the `OAG(k)`
//!   ladder;
//! * [`nc_test`] — the exact, exponential non-circularity test, for the
//!   class ladder;
//! * [`snc_to_l_ordered`] — the transformation manufacturing
//!   totally-ordered partitions for every SNC grammar, with the classical
//!   equality reuse or FNC-2's **long inclusion** ([`Inclusion`]);
//! * [`classify`] — the cascading pipeline producing the smallest class and
//!   an [`LOrdered`] plan set ready for visit-sequence generation;
//! * [`explain`] — the circularity trace.
//!
//! ```
//! use fnc2_ag::{GrammarBuilder, Occ, Value};
//! use fnc2_analysis::{classify, AgClass, Inclusion};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = GrammarBuilder::new("count");
//! let s = g.phylum("S");
//! let n = g.syn(s, "n");
//! let leaf = g.production("leaf", s, &[]);
//! g.constant(leaf, Occ::lhs(n), Value::Int(0));
//! let node = g.production("node", s, &[s]);
//! g.func("succ", 1, |a| Value::Int(a[0].as_int() + 1));
//! g.call(node, Occ::lhs(n), "succ", [Occ::new(1, n).into()]);
//! let grammar = g.finish()?;
//!
//! let c = classify(&grammar, 1, Inclusion::Long)?;
//! assert_eq!(c.class, AgClass::Oag0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod attrs;
mod class;
mod io;
mod nc;
mod oag;
mod partition;
mod paste;
mod trace;
mod transform;

pub use attrs::AttrIndex;
pub use class::{classify, classify_recorded, AgClass, Classification};
pub use io::{
    dnc_test, dnc_test_recorded, snc_test, snc_test_recorded, CircWitness, DncResult, PhylumRels,
    SncResult,
};
pub use nc::{nc_test, NcResult};
pub use oag::{oag_test, oag_test_recorded, OagResult};
pub use partition::{TotalOrder, VisitSlot};
pub use paste::Pasted;
pub use trace::explain;
pub use transform::{
    l_ordered_from_partitions, linear_respects, snc_to_l_ordered, Inclusion, LOrdered, Plan,
    TransformError, TransformStats,
};
