//! The strong (SNC) and double (DNC) non-circularity tests.
//!
//! * `IO(X) ⊆ I(X) × S(X)` — induced dependencies *through the subtree*
//!   below an `X` node, closed "from below" (Courcelle & Franchi-Zannettacci
//!   [6]). An AG is **strongly non-circular** iff every production graph
//!   `D(p)` pasted with the `IO` graphs of its RHS occurrences is acyclic.
//! * `OI(X) ⊆ S(X) × I(X)` — induced dependencies *through the context*
//!   above an `X` node, closed "from above". An AG is **doubly
//!   non-circular** (DNC) iff every `D(p) ∪ OI(lhs) ∪ ⋃ IO(rhs)` is acyclic
//!   — exactly the property that lets an evaluator start at any tree node,
//!   the basis of FNC-2's incremental evaluation (paper §2.1.2).
//!
//! Both are least fixed points computed with the [`fnc2_gfa`] worklist
//! engine; the DNC test reuses the SNC result, mirroring the cascade of the
//! paper's Figure 3.

use fnc2_ag::{AttrKind, Grammar, ONode, PhylumId, ProductionId};
use fnc2_gfa::{fixpoint_recorded, BitMatrix, FixpointStats};
use fnc2_obs::{NoopRecorder, Recorder};

use crate::attrs::AttrIndex;
use crate::paste::Pasted;

/// A dependency cycle witnessing the failure of a class test.
#[derive(Clone, Debug)]
pub struct CircWitness {
    /// The production whose pasted graph is cyclic.
    pub production: ProductionId,
    /// The cycle, as occurrence nodes (first node repeated last).
    pub cycle: Vec<ONode>,
}

/// Per-phylum relations over local attribute indices.
#[derive(Clone, Debug)]
pub struct PhylumRels {
    rels: Vec<BitMatrix>,
}

impl PhylumRels {
    /// Empty relations shaped for `grammar`.
    pub fn empty(grammar: &Grammar, ix: &AttrIndex) -> Self {
        PhylumRels {
            rels: grammar
                .phyla()
                .map(|ph| BitMatrix::new(ix.len(ph)))
                .collect(),
        }
    }

    /// The relation of `phylum`.
    pub fn get(&self, phylum: PhylumId) -> &BitMatrix {
        &self.rels[phylum.index()]
    }

    /// ORs `rel` into the relation of `phylum`; true if it grew.
    pub fn absorb(&mut self, phylum: PhylumId, rel: &BitMatrix) -> bool {
        self.rels[phylum.index()].union_in_place(rel)
    }

    /// Total number of pairs across all phyla.
    pub fn total_pairs(&self) -> usize {
        self.rels.iter().map(BitMatrix::count).sum()
    }

    /// The per-phylum relations, indexed by phylum, for serialization.
    pub fn rels(&self) -> &[BitMatrix] {
        &self.rels
    }

    /// Rebuilds relations from a per-phylum matrix list.
    pub fn from_rels(rels: Vec<BitMatrix>) -> Self {
        PhylumRels { rels }
    }
}

/// Result of the SNC test.
#[derive(Clone, Debug)]
pub struct SncResult {
    /// The `IO` graphs (argument selectors), valid whether or not the test
    /// passed.
    pub io: PhylumRels,
    /// A cycle witness if the AG is *not* strongly non-circular.
    pub witness: Option<CircWitness>,
    /// Fixpoint statistics.
    pub stats: FixpointStats,
}

impl SncResult {
    /// True if the AG is strongly non-circular.
    pub fn is_snc(&self) -> bool {
        self.witness.is_none()
    }
}

/// For each phylum, the productions having it on their right-hand side —
/// the dependents of a bottom-up grammar flow.
pub(crate) fn users_of_phylum(grammar: &Grammar) -> Vec<Vec<usize>> {
    let mut users = vec![Vec::new(); grammar.phylum_count()];
    for p in grammar.productions() {
        for &ph in grammar.production(p).rhs() {
            if !users[ph.index()].contains(&p.index()) {
                users[ph.index()].push(p.index());
            }
        }
    }
    users
}

/// Runs the SNC test on `grammar`.
pub fn snc_test(grammar: &Grammar) -> SncResult {
    snc_test_recorded(grammar, &mut NoopRecorder)
}

/// [`snc_test`], with the underlying fixpoint run recorded into `rec`.
pub fn snc_test_recorded<R: Recorder>(grammar: &Grammar, rec: &mut R) -> SncResult {
    let ix = AttrIndex::new(grammar);
    let mut io = PhylumRels::empty(grammar, &ix);
    let users = users_of_phylum(grammar);
    let dependents: Vec<Vec<usize>> = grammar
        .productions()
        .map(|p| users[grammar.production(p).lhs().index()].clone())
        .collect();

    let n = grammar.production_count();
    let stats = fixpoint_recorded(
        n,
        &dependents,
        |pi| {
            let p = ProductionId::from_raw(pi as u32);
            let pasted = pasted_with_io(grammar, &ix, p, &io, None);
            let lhs = grammar.production(p).lhs();
            let proj = pasted.project_reach(grammar, &ix, 0, |i, j| {
                grammar.attr(ix.attr_at(lhs, i)).kind() == AttrKind::Inherited
                    && grammar.attr(ix.attr_at(lhs, j)).kind() == AttrKind::Synthesized
            });
            io.absorb(lhs, &proj)
        },
        rec,
    );

    // Final acyclicity check per production.
    let mut witness = None;
    for p in grammar.productions() {
        let pasted = pasted_with_io(grammar, &ix, p, &io, None);
        if let Some(cycle) = pasted.find_cycle() {
            witness = Some(CircWitness {
                production: p,
                cycle,
            });
            break;
        }
    }
    SncResult { io, witness, stats }
}

/// `D(p)` + `IO` pasted on every RHS position, skipping `skip_pos` if given.
fn pasted_with_io(
    grammar: &Grammar,
    ix: &AttrIndex,
    p: ProductionId,
    io: &PhylumRels,
    skip_pos: Option<u16>,
) -> Pasted {
    let mut pasted = Pasted::base(grammar, p);
    let prod = grammar.production(p);
    for pos in 1..=prod.arity() as u16 {
        if Some(pos) == skip_pos {
            continue;
        }
        pasted.paste(grammar, ix, pos, io.get(prod.phylum_at(pos)));
    }
    pasted
}

/// Result of the DNC test.
#[derive(Clone, Debug)]
pub struct DncResult {
    /// The `OI` graphs (context selectors).
    pub oi: PhylumRels,
    /// A cycle witness if the AG is *not* doubly non-circular.
    pub witness: Option<CircWitness>,
    /// Fixpoint statistics.
    pub stats: FixpointStats,
}

impl DncResult {
    /// True if the AG is doubly non-circular.
    pub fn is_dnc(&self) -> bool {
        self.witness.is_none()
    }
}

/// Runs the DNC test, reusing the `IO` graphs of a prior SNC test (the
/// cascade of the paper's Figure 3: "the first phase of the [DNC test] is
/// the SNC test").
pub fn dnc_test(grammar: &Grammar, snc: &SncResult) -> DncResult {
    dnc_test_recorded(grammar, snc, &mut NoopRecorder)
}

/// [`dnc_test`], with the underlying fixpoint run recorded into `rec`.
pub fn dnc_test_recorded<R: Recorder>(
    grammar: &Grammar,
    snc: &SncResult,
    rec: &mut R,
) -> DncResult {
    let ix = AttrIndex::new(grammar);
    let mut oi = PhylumRels::empty(grammar, &ix);
    // Top-down flow: production p reads oi[lhs(p)] and writes oi of its RHS
    // phyla, so the dependents of p are the productions of its RHS phyla.
    let dependents: Vec<Vec<usize>> = grammar
        .productions()
        .map(|p| {
            let mut d: Vec<usize> = Vec::new();
            for &ph in grammar.production(p).rhs() {
                for &q in grammar.phylum(ph).productions() {
                    if !d.contains(&q.index()) {
                        d.push(q.index());
                    }
                }
            }
            d
        })
        .collect();

    let n = grammar.production_count();
    let stats = fixpoint_recorded(
        n,
        &dependents,
        |pi| {
            let p = ProductionId::from_raw(pi as u32);
            let prod = grammar.production(p);
            // Paste everything once — D(p), the LHS context (OI), and every
            // child's IO — then give each child its context view by
            // *traversing around* its own IO instead of rebuilding the
            // graph per position. Positions with identical signatures share
            // one projection.
            let mut pasted = pasted_with_io(grammar, &ix, p, &snc.io, None);
            pasted.paste(grammar, &ix, 0, oi.get(prod.lhs()));
            let mut changed = false;
            for group in pasted.rhs_position_groups(grammar, &ix) {
                let pos = group[0];
                let ph = prod.phylum_at(pos);
                let proj = pasted.project_reach_excluding(
                    grammar,
                    &ix,
                    pos,
                    Some(snc.io.get(ph)),
                    |i, j| {
                        grammar.attr(ix.attr_at(ph, i)).kind() == AttrKind::Synthesized
                            && grammar.attr(ix.attr_at(ph, j)).kind() == AttrKind::Inherited
                    },
                );
                changed |= oi.absorb(ph, &proj);
            }
            changed
        },
        rec,
    );

    // DNC check: D(p) + OI(lhs) + all IO(rhs) acyclic.
    let mut witness = None;
    for p in grammar.productions() {
        let mut pasted = pasted_with_io(grammar, &ix, p, &snc.io, None);
        pasted.paste(grammar, &ix, 0, oi.get(grammar.production(p).lhs()));
        if let Some(cycle) = pasted.find_cycle() {
            witness = Some(CircWitness {
                production: p,
                cycle,
            });
            break;
        }
    }
    DncResult { oi, witness, stats }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{Grammar, GrammarBuilder, Occ, Value};

    use super::*;

    /// Knuth-style two-pass grammar: SNC (and in fact l-ordered).
    fn two_pass() -> Grammar {
        // S ::= A ; A ::= a(A) | leaf
        // A.down (inh), A.up (syn): up depends on down at the leaf.
        let mut g = GrammarBuilder::new("two_pass");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let down = g.inh(a, "down");
        let up = g.syn(a, "up");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(out), Occ::new(1, up));
        g.constant(root, Occ::new(1, down), Value::Int(0));
        let mid = g.production("mid", a, &[a]);
        g.copy(mid, Occ::new(1, down), Occ::lhs(down));
        g.copy(mid, Occ::lhs(up), Occ::new(1, up));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(up), Occ::lhs(down));
        g.finish().unwrap()
    }

    /// The classic circular AG: A.i := A.s, A.s := A.i through the subtree.
    fn circular() -> Grammar {
        let mut g = GrammarBuilder::new("circ");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let i = g.inh(a, "i");
        let sy = g.syn(a, "s");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(out), Occ::new(1, sy));
        // circular: the child's inherited depends on its own synthesized
        g.copy(root, Occ::new(1, i), Occ::new(1, sy));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(sy), Occ::lhs(i));
        g.finish().unwrap()
    }

    #[test]
    fn two_pass_is_snc_and_dnc() {
        let g = two_pass();
        let snc = snc_test(&g);
        assert!(snc.is_snc());
        let a = g.phylum_by_name("A").unwrap();
        // IO(A): down -> up.
        assert!(snc.io.get(a).get(0, 1));
        assert_eq!(snc.io.get(a).count(), 1);
        let dnc = dnc_test(&g, &snc);
        assert!(dnc.is_dnc());
        // OI(A) is empty: the context never feeds `up` back into `down`.
        assert_eq!(dnc.oi.get(a).count(), 0);
    }

    #[test]
    fn circular_fails_snc() {
        let g = circular();
        let snc = snc_test(&g);
        assert!(!snc.is_snc());
        let w = snc.witness.unwrap();
        assert_eq!(g.production(w.production).name(), "root");
        assert!(w.cycle.len() >= 3);
    }

    /// SNC but not DNC: the *context* creates an S→I dependency that,
    /// combined with the subtree's I→S, is only exploited if evaluation may
    /// start anywhere. Build: root uses A.s to define A.i of a *sibling*
    /// whose IO feeds back — here a two-child production crossing deps.
    #[test]
    fn oi_captures_context_dependencies() {
        // root : S ::= A A with A$2.i := A$1.s ; A$1.i := 0 ;
        // leaf : A.s := A.i.
        let mut g = GrammarBuilder::new("ctx");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let i = g.inh(a, "i");
        let sy = g.syn(a, "s");
        let root = g.production("root", s, &[a, a]);
        g.copy(root, Occ::lhs(out), Occ::new(2, sy));
        g.constant(root, Occ::new(1, i), Value::Int(0));
        g.copy(root, Occ::new(2, i), Occ::new(1, sy));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(sy), Occ::lhs(i));
        let g = g.finish().unwrap();

        let snc = snc_test(&g);
        assert!(snc.is_snc());
        let dnc = dnc_test(&g, &snc);
        assert!(dnc.is_dnc());
        // OI(A): s -> i (via the sibling at position 2... seen from pos 1's
        // context? No: seen from position 2, `i` depends on the sibling's
        // `s`, which is S->I only for pos-2's *own* attributes if a path
        // s(2) -> i(2) exists through the context — it does not. But for
        // position 1, the context maps s(1) -> nothing of pos 1. OI(A) must
        // stay empty here.
        assert_eq!(dnc.oi.get(a).count(), 0);

        // Now thread it back: root2 : S ::= A with A.i := A.s would be
        // directly circular; instead check a genuine OI pair:
        // mid : A ::= A with A$2... — chain where parent's inh of child
        // comes from child's own syn through the parent's *other* rules is
        // the only source of OI pairs; verified in the grammar below.
        let mut g = GrammarBuilder::new("ctx2");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let b = g.phylum("B");
        let out = g.syn(s, "out");
        let ai = g.inh(a, "i");
        let asy = g.syn(a, "s");
        let bi = g.inh(b, "i");
        let bs = g.syn(b, "s");
        // root : S ::= B ; B.i := 0
        let root = g.production("root", s, &[b]);
        g.copy(root, Occ::lhs(out), Occ::new(1, bs));
        g.constant(root, Occ::new(1, bi), Value::Int(0));
        // wrap : B ::= A ; A.i := A.s is circular. Use: B.s := A.s;
        // A.i := B.i — no OI. To get OI non-empty we need the child's syn
        // to influence the child's *other* inherited via the parent:
        let aj = g.inh(a, "j");
        let wrap = g.production("wrap", b, &[a]);
        g.copy(wrap, Occ::lhs(bs), Occ::new(1, asy));
        g.copy(wrap, Occ::new(1, ai), Occ::lhs(bi));
        // j of the child depends on s of the child: a genuine S→I context
        // dependency (legal: j is not used to compute s).
        g.copy(wrap, Occ::new(1, aj), Occ::new(1, asy));
        // leaf : A.s := A.i ; uses j only via a second syn to keep it live.
        let at = g.syn(a, "t");
        let leafa = g.production("leafa", a, &[]);
        g.copy(leafa, Occ::lhs(asy), Occ::lhs(ai));
        g.copy(leafa, Occ::lhs(at), Occ::lhs(aj));
        let g = g.finish().unwrap();
        let snc = snc_test(&g);
        assert!(snc.is_snc());
        let dnc = dnc_test(&g, &snc);
        assert!(dnc.is_dnc());
        let a = g.phylum_by_name("A").unwrap();
        // OI(A) contains s -> j.
        let ix = AttrIndex::new(&g);
        let s_local = ix.local(&g, asy);
        let j_local = ix.local(&g, aj);
        assert!(dnc.oi.get(a).get(s_local, j_local));
    }
}
