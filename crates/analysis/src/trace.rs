//! Human-readable circularity traces.
//!
//! When an AG fails the SNC test, FNC-2 offers "an interactive circularity
//! trace system [39] allowing to easily discover the origin of the failure"
//! (paper §3.1). This module renders a [`CircWitness`] as the chain of
//! semantic rules responsible for the cycle, resolving each dependency edge
//! to the rule that creates it or to the induced (IO/OI) path it abstracts.

use std::fmt::Write as _;

use fnc2_ag::{Grammar, ONode, RuleBody};

use crate::io::CircWitness;

/// Renders `witness` as a multi-line explanation.
pub fn explain(grammar: &Grammar, witness: &CircWitness) -> String {
    let p = witness.production;
    let prod = grammar.production(p);
    let mut out = String::new();
    let rhs: Vec<&str> = prod
        .rhs()
        .iter()
        .map(|&x| grammar.phylum(x).name())
        .collect();
    let _ = writeln!(
        out,
        "circular dependency in production `{}`: {} ::= {}",
        prod.name(),
        grammar.phylum(prod.lhs()).name(),
        if rhs.is_empty() {
            "<empty>".to_string()
        } else {
            rhs.join(" ")
        },
    );
    for pair in witness.cycle.windows(2) {
        let (from, to) = (pair[0], pair[1]);
        let from_name = grammar.occ_name(p, from);
        let to_name = grammar.occ_name(p, to);
        match edge_reason(grammar, &witness.production, from, to) {
            Some(rule_desc) => {
                let _ = writeln!(out, "  {from_name} -> {to_name}    ({rule_desc})");
            }
            None => {
                let _ = writeln!(
                    out,
                    "  {from_name} -> {to_name}    (induced through the subtree or context)"
                );
            }
        }
    }
    out
}

/// Describes the semantic rule responsible for edge `from → to` in `p`, if
/// it is a direct rule dependency.
fn edge_reason(
    grammar: &Grammar,
    p: &fnc2_ag::ProductionId,
    from: ONode,
    to: ONode,
) -> Option<String> {
    let rule = grammar.rule_for(*p, to)?;
    if !rule.read_nodes().any(|n| n == from) {
        return None;
    }
    let target = grammar.occ_name(*p, rule.target());
    Some(match rule.body() {
        RuleBody::Copy(_) => format!("copy rule {target} := {}", grammar.occ_name(*p, from)),
        RuleBody::Call { func, .. } => {
            format!("rule {target} := {}(…)", grammar.function(*func).name())
        }
    })
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{GrammarBuilder, Occ};

    use crate::io::snc_test;

    use super::*;

    #[test]
    fn trace_names_rules_and_occurrences() {
        let mut g = GrammarBuilder::new("circ");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let i = g.inh(a, "i");
        let sy = g.syn(a, "s");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(out), Occ::new(1, sy));
        g.copy(root, Occ::new(1, i), Occ::new(1, sy));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(sy), Occ::lhs(i));
        let g = g.finish().unwrap();
        let snc = snc_test(&g);
        let trace = explain(&g, &snc.witness.unwrap());
        assert!(trace.contains("circular dependency in production `root`"));
        assert!(trace.contains("A.s -> A.i"), "trace: {trace}");
        assert!(trace.contains("copy rule A.i := A.s"));
        assert!(trace.contains("induced through the subtree"));
    }
}
