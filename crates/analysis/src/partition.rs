//! Totally-ordered partitions of a phylum's attributes.
//!
//! A totally-ordered partition `I₁ S₁ I₂ S₂ … Iₖ Sₖ` fixes a protocol for
//! evaluating a node: during visit `v` the parent supplies the inherited
//! attributes `Iᵥ` and the node computes the synthesized attributes `Sᵥ`.
//! Visit-sequence evaluators exist exactly when every phylum can be given
//! such an order compatible with all productions — the *l-ordered* class —
//! and the SNC → l-ordered transformation manufactures sets of these
//! partitions for arbitrary SNC grammars (paper §2.1.1).

use fnc2_ag::{AttrId, AttrKind, Grammar, PhylumId};
use fnc2_gfa::BitMatrix;

use crate::attrs::AttrIndex;

/// One visit's worth of a partition: inherited in, synthesized out.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct VisitSlot {
    /// Inherited attributes available from this visit on.
    pub inh: Vec<AttrId>,
    /// Synthesized attributes computed by the end of this visit.
    pub syn: Vec<AttrId>,
}

impl VisitSlot {
    /// True if the slot carries no attributes.
    pub fn is_empty(&self) -> bool {
        self.inh.is_empty() && self.syn.is_empty()
    }
}

/// A totally-ordered partition of one phylum's attributes.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TotalOrder {
    /// The phylum whose attributes are partitioned.
    pub phylum: PhylumId,
    /// The visits, in evaluation order.
    pub visits: Vec<VisitSlot>,
}

impl TotalOrder {
    /// Builds a canonical partition from visit slots: attribute sets are
    /// sorted, empty trailing visits dropped, and a visit whose synthesized
    /// set is empty is merged into the following visit (it would produce
    /// nothing for the parent).
    pub fn new(phylum: PhylumId, visits: Vec<VisitSlot>) -> TotalOrder {
        let mut merged: Vec<VisitSlot> = Vec::new();
        let mut pending_inh: Vec<AttrId> = Vec::new();
        for v in visits {
            pending_inh.extend(v.inh);
            if !v.syn.is_empty() {
                merged.push(VisitSlot {
                    inh: std::mem::take(&mut pending_inh),
                    syn: v.syn,
                });
            }
        }
        if !pending_inh.is_empty() {
            // Trailing inherited attributes that no synthesized attribute
            // follows: they still must be supplied, in a final visit.
            merged.push(VisitSlot {
                inh: pending_inh,
                syn: Vec::new(),
            });
        }
        for v in &mut merged {
            v.inh.sort_unstable();
            v.syn.sort_unstable();
        }
        if merged.is_empty() {
            merged.push(VisitSlot {
                inh: Vec::new(),
                syn: Vec::new(),
            });
        }
        TotalOrder {
            phylum,
            visits: merged,
        }
    }

    /// The single-visit partition: all inherited first, then all
    /// synthesized. Legal for the root phylum, whose context supplies
    /// everything up front.
    pub fn single_visit(grammar: &Grammar, phylum: PhylumId) -> TotalOrder {
        TotalOrder::new(
            phylum,
            vec![VisitSlot {
                inh: grammar.inherited(phylum),
                syn: grammar.synthesized(phylum),
            }],
        )
    }

    /// Derives a partition from a linear evaluation order of (a subset of
    /// the positions of) the phylum's attributes: a new visit starts
    /// whenever an inherited attribute follows a synthesized one.
    pub fn from_linear(grammar: &Grammar, phylum: PhylumId, order: &[AttrId]) -> TotalOrder {
        let mut visits: Vec<VisitSlot> = vec![VisitSlot {
            inh: Vec::new(),
            syn: Vec::new(),
        }];
        for &a in order {
            let last = visits.last_mut().expect("nonempty");
            match grammar.attr(a).kind() {
                AttrKind::Inherited => {
                    if last.syn.is_empty() {
                        last.inh.push(a);
                    } else {
                        visits.push(VisitSlot {
                            inh: vec![a],
                            syn: Vec::new(),
                        });
                    }
                }
                AttrKind::Synthesized => last.syn.push(a),
            }
        }
        TotalOrder::new(phylum, visits)
    }

    /// Number of visits.
    pub fn visit_count(&self) -> usize {
        self.visits.len()
    }

    /// Number of non-empty attribute sets (the "distinct attribute sets"
    /// of the long-inclusion replacement criterion).
    pub fn set_count(&self) -> usize {
        self.visits
            .iter()
            .map(|v| usize::from(!v.inh.is_empty()) + usize::from(!v.syn.is_empty()))
            .sum()
    }

    /// The 1-based visit in which `attr` is available (inherited) or
    /// computed (synthesized).
    pub fn visit_of(&self, attr: AttrId) -> Option<usize> {
        self.visits
            .iter()
            .position(|v| v.inh.contains(&attr) || v.syn.contains(&attr))
            .map(|i| i + 1)
    }

    /// The strict order the partition imposes, as a relation over local
    /// attribute indices: `a → b` when `a`'s set comes before `b`'s.
    pub fn as_matrix(&self, grammar: &Grammar, ix: &AttrIndex) -> BitMatrix {
        let k = ix.len(self.phylum);
        let mut m = BitMatrix::new(k);
        // Linearize sets: I1, S1, I2, S2, ...
        let sets: Vec<&[AttrId]> = self
            .visits
            .iter()
            .flat_map(|v| [v.inh.as_slice(), v.syn.as_slice()])
            .collect();
        for i in 0..sets.len() {
            for j in i + 1..sets.len() {
                for &a in sets[i] {
                    for &b in sets[j] {
                        m.set(ix.local(grammar, a), ix.local(grammar, b));
                    }
                }
            }
        }
        m
    }

    /// True if this partition covers exactly the attributes of its phylum.
    pub fn is_complete(&self, grammar: &Grammar) -> bool {
        let mut seen: Vec<AttrId> = self
            .visits
            .iter()
            .flat_map(|v| v.inh.iter().chain(&v.syn).copied())
            .collect();
        seen.sort_unstable();
        let mut want = grammar.phylum(self.phylum).attrs().to_vec();
        want.sort_unstable();
        seen == want
    }

    /// Renders the partition as `[i1 i2 | s1][ | s2]`.
    pub fn display(&self, grammar: &Grammar) -> String {
        self.visits
            .iter()
            .map(|v| {
                let inh: Vec<&str> = v.inh.iter().map(|&a| grammar.attr(a).name()).collect();
                let syn: Vec<&str> = v.syn.iter().map(|&a| grammar.attr(a).name()).collect();
                format!("[{} | {}]", inh.join(" "), syn.join(" "))
            })
            .collect::<Vec<_>>()
            .join("")
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{Grammar, GrammarBuilder, Occ};

    use super::*;

    fn g() -> (Grammar, PhylumId, Vec<AttrId>) {
        let mut g = GrammarBuilder::new("t");
        let a = g.phylum("A");
        let i1 = g.inh(a, "i1");
        let s1 = g.syn(a, "s1");
        let i2 = g.inh(a, "i2");
        let s2 = g.syn(a, "s2");
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(s1), Occ::lhs(i1));
        g.copy(leaf, Occ::lhs(s2), Occ::lhs(i2));
        let g = g.finish().unwrap();
        (g, a, vec![i1, s1, i2, s2])
    }

    #[test]
    fn from_linear_splits_visits() {
        let (g, a, at) = g();
        let (i1, s1, i2, s2) = (at[0], at[1], at[2], at[3]);
        let t = TotalOrder::from_linear(&g, a, &[i1, s1, i2, s2]);
        assert_eq!(t.visit_count(), 2);
        assert_eq!(t.visit_of(i1), Some(1));
        assert_eq!(t.visit_of(s2), Some(2));
        assert_eq!(t.set_count(), 4);
        assert!(t.is_complete(&g));
    }

    #[test]
    fn single_visit_partition() {
        let (g, a, at) = g();
        let t = TotalOrder::single_visit(&g, a);
        assert_eq!(t.visit_count(), 1);
        assert_eq!(t.visit_of(at[0]), Some(1));
        assert_eq!(t.visit_of(at[3]), Some(1));
        assert_eq!(t.set_count(), 2);
    }

    #[test]
    fn normalization_merges_empty_syn_visits() {
        let (g, a, at) = g();
        let (i1, s1, i2, s2) = (at[0], at[1], at[2], at[3]);
        // [i1 | ] [i2 | s1 s2] must merge the first into the second.
        let t = TotalOrder::new(
            a,
            vec![
                VisitSlot {
                    inh: vec![i1],
                    syn: vec![],
                },
                VisitSlot {
                    inh: vec![i2],
                    syn: vec![s1, s2],
                },
            ],
        );
        assert_eq!(t.visit_count(), 1);
        assert_eq!(t.visits[0].inh, vec![i1, i2]);
        let _ = g;
    }

    #[test]
    fn trailing_inherited_kept() {
        let (g, a, at) = g();
        let t = TotalOrder::new(
            a,
            vec![
                VisitSlot {
                    inh: vec![at[0]],
                    syn: vec![at[1]],
                },
                VisitSlot {
                    inh: vec![at[2]],
                    syn: vec![],
                },
            ],
        );
        assert_eq!(t.visit_count(), 2);
        assert!(t.visits[1].syn.is_empty());
        assert!(!t.is_complete(&g), "s2 missing");
    }

    #[test]
    fn matrix_orders_sets() {
        let (g, a, at) = g();
        let (i1, s1, i2, s2) = (at[0], at[1], at[2], at[3]);
        let ix = AttrIndex::new(&g);
        let t = TotalOrder::from_linear(&g, a, &[i1, s1, i2, s2]);
        let m = t.as_matrix(&g, &ix);
        let l = |x| ix.local(&g, x);
        assert!(m.get(l(i1), l(s1)));
        assert!(m.get(l(s1), l(i2)));
        assert!(m.get(l(i1), l(s2)));
        assert!(!m.get(l(s1), l(i1)));
        // Same-set pairs are unordered.
        assert!(!m.get(l(i1), l(i1)));
    }

    #[test]
    fn canonical_equality() {
        let (g, a, at) = g();
        let t1 = TotalOrder::from_linear(&g, a, &[at[0], at[2], at[1], at[3]]);
        let t2 = TotalOrder::from_linear(&g, a, &[at[2], at[0], at[3], at[1]]);
        assert_eq!(t1, t2, "set order canonicalized");
    }

    #[test]
    fn display_form() {
        let (g, a, at) = g();
        let t = TotalOrder::from_linear(&g, a, &[at[0], at[1]]);
        assert_eq!(t.display(&g), "[i1 | s1]");
    }
}
