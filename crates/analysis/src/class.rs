//! The AG class ladder and the generator's cascade (paper Figure 3).
//!
//! `classify` reproduces the evaluator generator's front: SNC test first
//! (abort with a trace on failure), then DNC, then OAG(k); if DNC or OAG
//! fails, fall back to the SNC → l-ordered transformation. Cascading is
//! cheap because each test's first phase is the previous test (the IO
//! graphs feed the DNC test, and the DNC information feeds the
//! transformation).

use fnc2_ag::Grammar;
use fnc2_obs::{Key, Obs, Recorder};

use crate::io::{dnc_test_recorded, snc_test_recorded, DncResult, SncResult};
use crate::oag::{oag_test_recorded, OagResult};
use crate::transform::{snc_to_l_ordered, Inclusion, LOrdered, TransformError, TransformStats};

/// The smallest class of the ladder an AG belongs to, as determined by the
/// generator (the "class" row of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AgClass {
    /// Ordered with Kastens' test (`OAG(0)`).
    Oag0,
    /// Ordered after `k` repair steps (reported for the tested `k`).
    OagK(usize),
    /// Doubly non-circular but not OAG(k) for the tested `k`.
    Dnc,
    /// Strongly non-circular only.
    Snc,
    /// Not strongly non-circular (possibly plain non-circular or circular).
    NotSnc,
}

impl std::fmt::Display for AgClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AgClass::Oag0 => write!(f, "OAG(0)"),
            AgClass::OagK(k) => write!(f, "OAG({k})"),
            AgClass::Dnc => write!(f, "DNC"),
            AgClass::Snc => write!(f, "SNC"),
            AgClass::NotSnc => write!(f, "not SNC"),
        }
    }
}

/// Everything the generator front-end learned about an AG.
#[derive(Clone, Debug)]
pub struct Classification {
    /// The smallest class found (w.r.t. the tested `max_k`).
    pub class: AgClass,
    /// The SNC test result (always run).
    pub snc: SncResult,
    /// The DNC test result (run when SNC succeeded).
    pub dnc: Option<DncResult>,
    /// The OAG test result (run when DNC succeeded).
    pub oag: Option<OagResult>,
    /// The l-ordered view used for visit-sequence generation: from the OAG
    /// partitions when ordered, otherwise from the transformation.
    pub l_ordered: Option<LOrdered>,
}

impl Classification {
    /// True if visit sequences can be generated (the AG is SNC).
    pub fn is_evaluable(&self) -> bool {
        self.l_ordered.is_some()
    }
}

/// Runs the generator cascade on `grammar`, testing `OAG(k)` for
/// `k = 0 ..= max_k`, and building the l-ordered view with the given
/// inclusion strategy when the transformation is needed.
///
/// # Errors
///
/// Propagates a [`TransformError`] — impossible for grammars that pass the
/// SNC test, hence for every grammar this function transforms.
pub fn classify(
    grammar: &Grammar,
    max_k: usize,
    inclusion: Inclusion,
) -> Result<Classification, TransformError> {
    classify_recorded(grammar, max_k, inclusion, &mut Obs::new())
}

/// Records the partition/plan economy of a transformation run.
fn record_transform<R: Recorder>(stats: &TransformStats, rec: &mut R) {
    let partitions: usize = stats.partitions_per_phylum.iter().sum();
    rec.count(Key::TransformPartitions, partitions as u64);
    rec.count(Key::TransformPlans, stats.plans as u64);
    rec.count(Key::TransformReuses, stats.reuses as u64);
    rec.count(Key::TransformFresh, stats.fresh as u64);
}

/// [`classify`], instrumented: each cascade stage runs inside a nested
/// phase span (`analysis.snc`, `analysis.dnc`, `analysis.oag`,
/// `analysis.transform`), every GFA fixpoint feeds the
/// `gfa.fixpoint.*` counters, and the transformation's partition/plan
/// economy lands in the `transform.*` counters.
pub fn classify_recorded(
    grammar: &Grammar,
    max_k: usize,
    inclusion: Inclusion,
    obs: &mut Obs,
) -> Result<Classification, TransformError> {
    obs.phases.enter("analysis.snc");
    let snc = snc_test_recorded(grammar, obs);
    obs.phases.leave();
    if !snc.is_snc() {
        return Ok(Classification {
            class: AgClass::NotSnc,
            snc,
            dnc: None,
            oag: None,
            l_ordered: None,
        });
    }
    obs.phases.enter("analysis.dnc");
    let dnc = dnc_test_recorded(grammar, &snc, obs);
    obs.phases.leave();
    if !dnc.is_dnc() {
        // SNC but not DNC: the transformation still applies.
        obs.phases.enter("analysis.transform");
        let lo = snc_to_l_ordered(grammar, &snc, inclusion)?;
        record_transform(&lo.stats, obs);
        obs.phases.leave();
        return Ok(Classification {
            class: AgClass::Snc,
            snc,
            dnc: Some(dnc),
            oag: None,
            l_ordered: Some(lo),
        });
    }
    // OAG(0), then larger k on demand.
    let mut best: Option<(usize, OagResult)> = None;
    obs.phases.enter("analysis.oag");
    for k in 0..=max_k {
        let r = oag_test_recorded(grammar, k, obs);
        if r.is_oag() {
            best = Some((k, r));
            break;
        }
        if k == max_k {
            best = Some((k, r));
        }
    }
    obs.phases.leave();
    let (k, oag) = best.expect("loop ran at least once");
    if oag.is_oag() {
        let parts = oag.partitions.clone().expect("ordered");
        obs.phases.enter("analysis.transform");
        let lo = crate::transform::l_ordered_from_partitions(grammar, parts)?;
        record_transform(&lo.stats, obs);
        obs.phases.leave();
        return Ok(Classification {
            class: if k == 0 {
                AgClass::Oag0
            } else {
                AgClass::OagK(k)
            },
            snc,
            dnc: Some(dnc),
            oag: Some(oag),
            l_ordered: Some(lo),
        });
    }
    // DNC but not OAG(max_k): transformation.
    obs.phases.enter("analysis.transform");
    let lo = snc_to_l_ordered(grammar, &snc, inclusion)?;
    record_transform(&lo.stats, obs);
    obs.phases.leave();
    Ok(Classification {
        class: AgClass::Dnc,
        snc,
        dnc: Some(dnc),
        oag: Some(oag),
        l_ordered: Some(lo),
    })
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{GrammarBuilder, Occ, Value};

    use super::*;

    #[test]
    fn classify_two_pass_as_oag0() {
        let mut g = GrammarBuilder::new("two_pass");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let down = g.inh(a, "down");
        let up = g.syn(a, "up");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(out), Occ::new(1, up));
        g.constant(root, Occ::new(1, down), Value::Int(0));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(up), Occ::lhs(down));
        let g = g.finish().unwrap();
        let c = classify(&g, 1, Inclusion::Long).unwrap();
        assert_eq!(c.class, AgClass::Oag0);
        assert!(c.is_evaluable());
        assert_eq!(c.l_ordered.unwrap().stats.plans, 2);
    }

    #[test]
    fn classify_circular_as_not_snc() {
        let mut g = GrammarBuilder::new("circ");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let i = g.inh(a, "i");
        let sy = g.syn(a, "s");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(out), Occ::new(1, sy));
        g.copy(root, Occ::new(1, i), Occ::new(1, sy));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(sy), Occ::lhs(i));
        let g = g.finish().unwrap();
        let c = classify(&g, 1, Inclusion::Long).unwrap();
        assert_eq!(c.class, AgClass::NotSnc);
        assert!(!c.is_evaluable());
        assert!(c.snc.witness.is_some());
    }

    #[test]
    fn class_display() {
        assert_eq!(AgClass::Oag0.to_string(), "OAG(0)");
        assert_eq!(AgClass::OagK(1).to_string(), "OAG(1)");
        assert_eq!(AgClass::Dnc.to_string(), "DNC");
        assert_eq!(AgClass::NotSnc.to_string(), "not SNC");
    }
}
