//! Kastens' ordered-attribute-grammar test, generalized to the OAG(k)
//! ladder of Barbar [3].
//!
//! The OAG test computes, for every phylum, the *induced* dependency
//! relation `DS(X)` (all dependencies between `X`'s attributes realizable
//! through any context and any subtree), peels a totally-ordered partition
//! from it, and accepts iff every production graph stays acyclic once the
//! partition orders are pasted in (the EDP check). `OAG(0)` is exactly
//! Kastens' test.
//!
//! Barbar's report defining OAG(k) is not publicly available; per DESIGN.md
//! we reconstruct the ladder as *cycle-driven repair*: when the EDP of some
//! production is cyclic, one partition edge on the cycle is relaxed by
//! delaying its source attribute to a later visit, up to `k` times. Each
//! repair can only coarsen the schedule, so `OAG(0) ⊆ OAG(1) ⊆ … ⊆`
//! l-ordered, with witnesses separating the levels (see the corpus).

use fnc2_ag::{AttrKind, Grammar, ONode, Occ, PhylumId, ProductionId};
use fnc2_gfa::{fixpoint_recorded, FixpointStats};
use fnc2_obs::{NoopRecorder, Recorder};

use crate::attrs::AttrIndex;
use crate::io::{CircWitness, PhylumRels};
use crate::partition::{TotalOrder, VisitSlot};
use crate::paste::Pasted;

/// Result of the OAG(k) test.
#[derive(Clone, Debug)]
pub struct OagResult {
    /// The induced dependency relations `DS(X)`.
    pub ds: PhylumRels,
    /// The partitions, one per phylum, when the test succeeds.
    pub partitions: Option<Vec<TotalOrder>>,
    /// A cycle witness when it fails.
    pub witness: Option<CircWitness>,
    /// Number of repair steps actually spent (≤ the requested `k`).
    pub repairs_used: usize,
    /// Fixpoint statistics of the `DS` computation.
    pub stats: FixpointStats,
}

impl OagResult {
    /// True if the grammar is OAG(k) for the tested `k`.
    pub fn is_oag(&self) -> bool {
        self.partitions.is_some()
    }
}

/// Runs the OAG(k) test. `k = 0` is Kastens' classical test.
pub fn oag_test(grammar: &Grammar, k: usize) -> OagResult {
    oag_test_recorded(grammar, k, &mut NoopRecorder)
}

/// [`oag_test`], with the `DS` fixpoint run recorded into `rec`.
pub fn oag_test_recorded<R: Recorder>(grammar: &Grammar, k: usize, rec: &mut R) -> OagResult {
    let ix = AttrIndex::new(grammar);
    let (ds, stats) = induced_dependencies(grammar, &ix, rec);

    // DS(X) must be acyclic for a partition to exist at all.
    for ph in grammar.phyla() {
        if !ds.get(ph).closure().is_irreflexive() {
            let witness = cycle_witness_for_phylum(grammar, &ix, &ds, ph);
            return OagResult {
                ds,
                partitions: None,
                witness,
                repairs_used: 0,
                stats,
            };
        }
    }

    // Initial slot assignment per phylum by backwards peeling.
    let mut slots: Vec<Vec<usize>> = Vec::with_capacity(grammar.phylum_count());
    for ph in grammar.phyla() {
        match peel_slots(grammar, &ix, &ds, ph) {
            Some(s) => slots.push(s),
            None => {
                let witness = cycle_witness_for_phylum(grammar, &ix, &ds, ph);
                return OagResult {
                    ds,
                    partitions: None,
                    witness,
                    repairs_used: 0,
                    stats,
                };
            }
        }
    }

    let mut repairs_used = 0;
    loop {
        let partitions: Vec<TotalOrder> = grammar
            .phyla()
            .map(|ph| slots_to_partition(grammar, &ix, ph, &slots[ph.index()]))
            .collect();
        match edp_check(grammar, &ix, &partitions) {
            None => {
                return OagResult {
                    ds,
                    partitions: Some(partitions),
                    witness: None,
                    repairs_used,
                    stats,
                }
            }
            Some(witness) => {
                if repairs_used >= k || !repair(grammar, &ix, &ds, &mut slots, &witness) {
                    return OagResult {
                        ds,
                        partitions: None,
                        witness: Some(witness),
                        repairs_used,
                        stats,
                    };
                }
                repairs_used += 1;
            }
        }
    }
}

/// Computes `DS(X)` for every phylum: the up-and-down fixpoint of projected
/// transitive closures (Kastens [29], in GFA form).
fn induced_dependencies<R: Recorder>(
    grammar: &Grammar,
    ix: &AttrIndex,
    rec: &mut R,
) -> (PhylumRels, FixpointStats) {
    let mut ds = PhylumRels::empty(grammar, ix);
    // A production reads and writes the DS of every phylum it mentions, so
    // its dependents are all productions sharing a phylum with it.
    let mut mentioning: Vec<Vec<usize>> = vec![Vec::new(); grammar.phylum_count()];
    for p in grammar.productions() {
        let prod = grammar.production(p);
        for pos in 0..=prod.arity() as u16 {
            let ph = prod.phylum_at(pos);
            if !mentioning[ph.index()].contains(&p.index()) {
                mentioning[ph.index()].push(p.index());
            }
        }
    }
    let dependents: Vec<Vec<usize>> = grammar
        .productions()
        .map(|p| {
            let prod = grammar.production(p);
            let mut d: Vec<usize> = Vec::new();
            for pos in 0..=prod.arity() as u16 {
                for &q in &mentioning[prod.phylum_at(pos).index()] {
                    if !d.contains(&q) {
                        d.push(q);
                    }
                }
            }
            d
        })
        .collect();

    let stats = fixpoint_recorded(
        grammar.production_count(),
        &dependents,
        |pi| {
            let p = ProductionId::from_raw(pi as u32);
            let prod = grammar.production(p);
            let mut pasted = Pasted::base(grammar, p);
            for pos in 0..=prod.arity() as u16 {
                pasted.paste(grammar, ix, pos, ds.get(prod.phylum_at(pos)));
            }
            let mut changed = false;
            let proj = pasted.project_reach(grammar, ix, 0, |_, _| true);
            changed |= ds.absorb(prod.lhs(), &proj);
            for group in pasted.rhs_position_groups(grammar, ix) {
                let pos = group[0];
                let proj = pasted.project_reach(grammar, ix, pos, |_, _| true);
                changed |= ds.absorb(prod.phylum_at(pos), &proj);
            }
            changed
        },
        rec,
    );
    (ds, stats)
}

/// Assigns each attribute of `ph` a *slot*: even slots inherited, odd
/// synthesized, in evaluation order (`I₁=0, S₁=1, I₂=2, …`). Peels from the
/// end: the last set is the synthesized attributes nothing depends on.
/// Returns `None` if peeling gets stuck (cyclic `DS`).
fn peel_slots(
    grammar: &Grammar,
    ix: &AttrIndex,
    ds: &PhylumRels,
    ph: PhylumId,
) -> Option<Vec<usize>> {
    let n = ix.len(ph);
    let rel = ds.get(ph);
    let mut remaining: Vec<bool> = vec![true; n];
    let mut left = n;
    // Sets collected from the END of evaluation backwards.
    let mut sets_rev: Vec<Vec<usize>> = Vec::new();
    let mut want = AttrKind::Synthesized;
    let mut empties = 0;
    while left > 0 {
        let elig: Vec<usize> = (0..n)
            .filter(|&a| {
                remaining[a]
                    && grammar.attr(ix.attr_at(ph, a)).kind() == want
                    && (0..n).all(|b| !remaining[b] || !rel.get(a, b))
            })
            .collect();
        if elig.is_empty() {
            empties += 1;
            if empties >= 2 {
                return None; // neither kind can make progress: cyclic DS
            }
        } else {
            empties = 0;
            for &a in &elig {
                remaining[a] = false;
            }
            left -= elig.len();
        }
        sets_rev.push(elig);
        want = match want {
            AttrKind::Synthesized => AttrKind::Inherited,
            AttrKind::Inherited => AttrKind::Synthesized,
        };
    }
    // sets_rev[0] is the last set (synthesized); convert to forward slot
    // numbers with parity: even = inherited, odd = synthesized.
    // The forward sequence alternates ending with a synthesized set, so
    // forward index = (len-1 - rev_index); make parity line up by padding:
    let mut total = sets_rev.len();
    // Forward sequence must start with an inherited set (even slot 0).
    // sets_rev alternates S, I, S, I, ... so forward starts with I iff
    // total is even.
    if total % 2 == 1 {
        total += 1; // virtual empty leading inherited set
    }
    let mut slot = vec![0usize; n];
    for (rev_i, set) in sets_rev.iter().enumerate() {
        let fwd = total - 1 - rev_i;
        for &a in set {
            slot[a] = fwd;
        }
    }
    debug_assert!(slot
        .iter()
        .enumerate()
        .all(|(a, &s)| (s % 2 == 1)
            == (grammar.attr(ix.attr_at(ph, a)).kind() == AttrKind::Synthesized)));
    Some(slot)
}

/// Converts a slot assignment into a [`TotalOrder`].
fn slots_to_partition(
    _grammar: &Grammar,
    ix: &AttrIndex,
    ph: PhylumId,
    slot: &[usize],
) -> TotalOrder {
    let max_slot = slot.iter().copied().max().unwrap_or(0);
    let n_visits = max_slot / 2 + 1;
    let mut visits: Vec<VisitSlot> = (0..n_visits)
        .map(|_| VisitSlot {
            inh: Vec::new(),
            syn: Vec::new(),
        })
        .collect();
    for (a, &s) in slot.iter().enumerate() {
        let attr = ix.attr_at(ph, a);
        let v = s / 2;
        if s % 2 == 0 {
            visits[v].inh.push(attr);
        } else {
            visits[v].syn.push(attr);
        }
    }
    TotalOrder::new(ph, visits)
}

/// Checks every production's EDP (D(p) + partition orders pasted at all
/// positions); returns a witness for the first cyclic one.
fn edp_check(grammar: &Grammar, ix: &AttrIndex, partitions: &[TotalOrder]) -> Option<CircWitness> {
    for p in grammar.productions() {
        let prod = grammar.production(p);
        let mut pasted = Pasted::base(grammar, p);
        for pos in 0..=prod.arity() as u16 {
            let ph = prod.phylum_at(pos);
            pasted.paste(
                grammar,
                ix,
                pos,
                &partitions[ph.index()].as_matrix(grammar, ix),
            );
        }
        if let Some(cycle) = pasted.find_cycle() {
            return Some(CircWitness {
                production: p,
                cycle,
            });
        }
    }
    None
}

/// One OAG(k) repair step: pick a partition-order edge `(q,a) → (q,b)` on
/// the witness cycle (an edge that exists only because of the slot
/// assignment, not a real rule dependency) and delay `a` to `b`'s slot (or
/// the next slot of `a`'s kind), then re-propagate `DS` consistency.
/// Returns `false` if no repairable edge exists on the cycle.
fn repair(
    grammar: &Grammar,
    ix: &AttrIndex,
    ds: &PhylumRels,
    slots: &mut [Vec<usize>],
    witness: &CircWitness,
) -> bool {
    let p = witness.production;
    let prod = grammar.production(p);
    let dep = fnc2_ag::DepGraph::of(grammar, p);
    // Real dependencies of D(p).
    let is_real = |from: ONode, to: ONode| -> bool {
        dep.index_of(from)
            .zip(dep.index_of(to))
            .map(|(u, v)| dep.succs(u).contains(&v))
            .unwrap_or(false)
    };
    for w in witness.cycle.windows(2) {
        let (ONode::Attr(a), ONode::Attr(b)) = (w[0], w[1]) else {
            continue;
        };
        if a.pos != b.pos || is_real(w[0], w[1]) {
            continue;
        }
        let ph = prod.phylum_at(a.pos);
        // DS pairs must keep their order; only pure partition edges bend.
        let la = ix.local(grammar, a.attr);
        let lb = ix.local(grammar, b.attr);
        if ds.get(ph).closure().get(la, lb) {
            continue;
        }
        // Delay `a` to at least `b`'s slot, respecting kind parity.
        let slot_b = slots[ph.index()][lb];
        let kind_a = grammar.attr(a.attr).kind();
        let parity = usize::from(kind_a == AttrKind::Synthesized);
        let mut new_slot = slot_b;
        if new_slot % 2 != parity {
            new_slot += 1;
        }
        if new_slot <= slots[ph.index()][la] {
            continue; // would not move anything
        }
        slots[ph.index()][la] = new_slot;
        propagate_slots(grammar, ix, ds, slots);
        return true;
    }
    false
}

/// Restores `DS`-consistency of the slot assignment after a repair: if
/// `(a, b) ∈ DS(X)` then `slot(a) ≤ slot(b)`, bumping `b` forward (to the
/// next slot of its kind) where violated.
fn propagate_slots(grammar: &Grammar, ix: &AttrIndex, ds: &PhylumRels, slots: &mut [Vec<usize>]) {
    for ph in grammar.phyla() {
        let n = ix.len(ph);
        let rel = ds.get(ph);
        let mut changed = true;
        while changed {
            changed = false;
            for a in 0..n {
                for b in 0..n {
                    if rel.get(a, b) && slots[ph.index()][b] < slots[ph.index()][a] {
                        // Pull b forward to a's slot, or the next slot of
                        // b's kind. Same-slot DS pairs are fine: intra-set
                        // order is decided by the local topological sort.
                        let kind_b = grammar.attr(ix.attr_at(ph, b)).kind();
                        let parity = usize::from(kind_b == AttrKind::Synthesized);
                        let mut s = slots[ph.index()][a];
                        if s % 2 != parity {
                            s += 1;
                        }
                        if slots[ph.index()][b] < s {
                            slots[ph.index()][b] = s;
                            changed = true;
                        }
                    }
                }
            }
        }
    }
}

/// Builds a witness for a phylum whose `DS` relation is cyclic, pointing at
/// some production that contributes an edge of the cycle.
fn cycle_witness_for_phylum(
    grammar: &Grammar,
    ix: &AttrIndex,
    ds: &PhylumRels,
    ph: PhylumId,
) -> Option<CircWitness> {
    // Report the cycle through any production whose pasted graph is cyclic
    // once DS is attached; fall back to the first production of the phylum.
    for p in grammar.productions() {
        let prod = grammar.production(p);
        let mut pasted = Pasted::base(grammar, p);
        for pos in 0..=prod.arity() as u16 {
            pasted.paste(grammar, ix, pos, ds.get(prod.phylum_at(pos)));
        }
        if let Some(cycle) = pasted.find_cycle() {
            return Some(CircWitness {
                production: p,
                cycle,
            });
        }
    }
    grammar
        .phylum(ph)
        .productions()
        .first()
        .map(|&p| CircWitness {
            production: p,
            cycle: vec![ONode::Attr(Occ::lhs(ix.attr_at(ph, 0)))],
        })
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{Grammar, GrammarBuilder, Occ, Value};

    use super::*;

    /// Two-pass grammar: OAG(0), partition [down | up] per phylum A.
    fn two_pass() -> Grammar {
        let mut g = GrammarBuilder::new("two_pass");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let down = g.inh(a, "down");
        let up = g.syn(a, "up");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(out), Occ::new(1, up));
        g.constant(root, Occ::new(1, down), Value::Int(0));
        let mid = g.production("mid", a, &[a]);
        g.copy(mid, Occ::new(1, down), Occ::lhs(down));
        g.copy(mid, Occ::lhs(up), Occ::new(1, up));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(up), Occ::lhs(down));
        g.finish().unwrap()
    }

    #[test]
    fn two_pass_is_oag0() {
        let g = two_pass();
        let r = oag_test(&g, 0);
        assert!(r.is_oag());
        assert_eq!(r.repairs_used, 0);
        let parts = r.partitions.unwrap();
        let a = g.phylum_by_name("A").unwrap();
        assert_eq!(parts[a.index()].visit_count(), 1);
        assert!(parts[a.index()].is_complete(&g));
    }

    /// A 2-visit grammar: i1→s1 and s1 feeds i2 via the parent, s2 needs i2.
    #[test]
    fn two_visit_partition() {
        let mut g = GrammarBuilder::new("twovisit");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let i1 = g.inh(a, "i1");
        let s1 = g.syn(a, "s1");
        let i2 = g.inh(a, "i2");
        let s2 = g.syn(a, "s2");
        let root = g.production("root", s, &[a]);
        g.constant(root, Occ::new(1, i1), Value::Int(0));
        // i2 of the child depends on the child's own s1 (through the parent).
        g.copy(root, Occ::new(1, i2), Occ::new(1, s1));
        g.copy(root, Occ::lhs(out), Occ::new(1, s2));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(s1), Occ::lhs(i1));
        g.copy(leaf, Occ::lhs(s2), Occ::lhs(i2));
        let g = g.finish().unwrap();

        let r = oag_test(&g, 0);
        assert!(r.is_oag());
        let a = g.phylum_by_name("A").unwrap();
        let part = &r.partitions.unwrap()[a.index()];
        assert_eq!(part.visit_count(), 2);
        assert_eq!(part.visit_of(i1), Some(1));
        assert_eq!(part.visit_of(s1), Some(1));
        assert_eq!(part.visit_of(i2), Some(2));
        assert_eq!(part.visit_of(s2), Some(2));
    }

    #[test]
    fn circularity_in_ds_fails() {
        // A.i := A.s at the parent, A.s := A.i at the leaf: DS(A) cyclic.
        let mut g = GrammarBuilder::new("bad");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let i = g.inh(a, "i");
        let sy = g.syn(a, "s");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(out), Occ::new(1, sy));
        g.copy(root, Occ::new(1, i), Occ::new(1, sy));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(sy), Occ::lhs(i));
        let g = g.finish().unwrap();
        let r = oag_test(&g, 3);
        assert!(!r.is_oag());
        assert!(r.witness.is_some());
    }
}
