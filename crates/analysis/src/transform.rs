//! The SNC → l-ordered transformation (paper §2.1.1).
//!
//! For every strongly non-circular AG, this construction manufactures, for
//! each phylum, a *set* of totally-ordered partitions, and for each
//! production and each partition of its LHS a consistent choice of RHS
//! partitions plus a total evaluation order — everything a visit-sequence
//! generator needs. The classical construction ([11,18,45]) registers every
//! newly derived partition unless an *identical* one exists, which blows up
//! exponentially; FNC-2's contribution (Parigot [40]) is a coarser
//! correctness-preserving reuse test, **long inclusion**: an existing
//! partition may *replace* a fresh one whenever the production graph stays
//! acyclic with the existing partition's order pasted in — i.e. whenever
//! the topological order can be rearranged to fit it, the local
//! dependencies, and the partitions already chosen for sibling occurrences.
//! On practical AGs this collapses the partition count to ≈1 per phylum
//! (Table 1 / Figure 1).

use std::collections::{HashMap, VecDeque};
use std::fmt;

use fnc2_ag::{Grammar, ONode, Occ, PhylumId, ProductionId};
use fnc2_gfa::Digraph;

use crate::attrs::AttrIndex;
use crate::io::{CircWitness, SncResult};
use crate::partition::TotalOrder;
use crate::paste::Pasted;

/// Partition-reuse strategy of the transformation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inclusion {
    /// Classical: reuse only identical partitions (exponential-prone).
    Equality,
    /// FNC-2's long inclusion: reuse any registered partition that keeps
    /// the production graph acyclic.
    Long,
}

/// The evaluation plan of one (production, LHS-partition) pair.
#[derive(Clone, Debug)]
pub struct Plan {
    /// For each RHS position (0-based `pos-1`), the index of the partition
    /// chosen for that occurrence in its phylum's partition list.
    pub rhs_partitions: Vec<usize>,
    /// A total evaluation order over all of the production's occurrence
    /// nodes, compatible with every pasted partition.
    pub linear: Vec<ONode>,
}

/// Statistics of a transformation run (the Figure-1/Table-1 numbers).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TransformStats {
    /// Partitions registered, per phylum.
    pub partitions_per_phylum: Vec<usize>,
    /// Number of (production, LHS partition) pairs planned — the number of
    /// visit-sequences the evaluator will carry.
    pub plans: usize,
    /// How many RHS occurrences reused an existing partition.
    pub reuses: usize,
    /// How many fresh partitions were registered.
    pub fresh: usize,
}

impl TransformStats {
    /// Average number of partitions per phylum.
    pub fn avg_partitions(&self) -> f64 {
        if self.partitions_per_phylum.is_empty() {
            return 0.0;
        }
        self.partitions_per_phylum.iter().sum::<usize>() as f64
            / self.partitions_per_phylum.len() as f64
    }

    /// Maximum number of partitions on any phylum.
    pub fn max_partitions(&self) -> usize {
        self.partitions_per_phylum
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

/// The transformation's output: an l-ordered view of the grammar.
#[derive(Clone, Debug)]
pub struct LOrdered {
    /// Registered partitions, per phylum. Index 0 of the root phylum is the
    /// partition the driver starts evaluation with.
    pub partitions: Vec<Vec<TotalOrder>>,
    /// Plans keyed by (production, LHS-partition index).
    pub plans: HashMap<(ProductionId, usize), Plan>,
    /// Run statistics.
    pub stats: TransformStats,
}

impl LOrdered {
    /// The partition list of `phylum`.
    pub fn partitions_of(&self, phylum: PhylumId) -> &[TotalOrder] {
        &self.partitions[phylum.index()]
    }

    /// The plan for `(production, lhs_partition)`.
    pub fn plan(&self, production: ProductionId, lhs_partition: usize) -> Option<&Plan> {
        self.plans.get(&(production, lhs_partition))
    }
}

/// Internal invariant violation: a pasted production graph turned cyclic.
/// For a strongly non-circular grammar this cannot happen; it indicates the
/// input was not SNC (or partitions from an external source are bogus).
#[derive(Clone, Debug)]
pub struct TransformError {
    /// The offending production.
    pub production: ProductionId,
    /// The cycle found.
    pub witness: CircWitness,
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pasted graph of production {} is cyclic (grammar not SNC, or incompatible partitions)",
            self.production
        )
    }
}

impl std::error::Error for TransformError {}

/// Priority used for the deterministic topological order: evaluate child
/// inherited attributes eagerly and child synthesized attributes as lazily
/// as possible, so derived child partitions stay coarse (few visits).
fn topo_key(grammar: &Grammar, node: ONode) -> u8 {
    match node {
        ONode::Attr(Occ { pos: 0, attr }) => match grammar.attr(attr).kind() {
            fnc2_ag::AttrKind::Inherited => 0,
            fnc2_ag::AttrKind::Synthesized => 3,
        },
        ONode::Attr(Occ { attr, .. }) => match grammar.attr(attr).kind() {
            fnc2_ag::AttrKind::Inherited => 1,
            fnc2_ag::AttrKind::Synthesized => 4,
        },
        ONode::Local(_) => 2,
    }
}

fn topo_order(grammar: &Grammar, pasted: &Pasted) -> Option<Vec<ONode>> {
    let order = pasted
        .graph
        .topo_order_by(|u| topo_key(grammar, pasted.dep.node(u)))?;
    Some(order.into_iter().map(|u| pasted.dep.node(u)).collect())
}

/// Runs the SNC → l-ordered transformation.
///
/// `snc` must come from a successful [`crate::snc_test`] on the same
/// grammar (its `IO` graphs are the argument selectors pasted on
/// not-yet-partitioned occurrences).
///
/// # Errors
///
/// Returns [`TransformError`] if a pasted graph turns cyclic, which cannot
/// happen for a grammar that passed the SNC test.
pub fn snc_to_l_ordered(
    grammar: &Grammar,
    snc: &SncResult,
    inclusion: Inclusion,
) -> Result<LOrdered, TransformError> {
    let ix = AttrIndex::new(grammar);
    let mut partitions: Vec<Vec<TotalOrder>> = vec![Vec::new(); grammar.phylum_count()];
    let mut plans: HashMap<(ProductionId, usize), Plan> = HashMap::new();
    let mut stats = TransformStats::default();

    // Seed: the root is evaluated in a single visit (its context supplies
    // every inherited attribute up front).
    let root = grammar.root();
    partitions[root.index()].push(TotalOrder::single_visit(grammar, root));
    stats.fresh += 1;

    let mut worklist: VecDeque<(ProductionId, usize)> = grammar
        .phylum(root)
        .productions()
        .iter()
        .map(|&p| (p, 0))
        .collect();

    while let Some((p, pi)) = worklist.pop_front() {
        if plans.contains_key(&(p, pi)) {
            continue;
        }
        let prod = grammar.production(p);
        let lhs = prod.lhs();
        let arity = prod.arity() as u16;

        // Base graph: D(p) + π₀ at the LHS + IO argument selectors on every
        // RHS occurrence.
        let mut pasted = Pasted::base(grammar, p);
        let pi0_matrix = partitions[lhs.index()][pi].as_matrix(grammar, &ix);
        pasted.paste(grammar, &ix, 0, &pi0_matrix);
        for pos in 1..=arity {
            pasted.paste(grammar, &ix, pos, snc.io.get(prod.phylum_at(pos)));
        }
        if !pasted.closure().is_irreflexive() {
            return Err(TransformError {
                production: p,
                witness: CircWitness {
                    production: p,
                    cycle: pasted.find_cycle().expect("cyclic"),
                },
            });
        }

        // Choose a partition for each RHS occurrence, left to right.
        let mut chosen: Vec<usize> = Vec::with_capacity(arity as usize);
        for pos in 1..=arity {
            let ph = prod.phylum_at(pos);
            let mut pick: Option<usize> = None;
            if inclusion == Inclusion::Long {
                // Long inclusion: reuse the first registered partition that
                // keeps the graph acyclic together with the local
                // dependencies and the siblings chosen so far.
                for (idx, cand) in partitions[ph.index()].iter().enumerate() {
                    let mut trial = pasted.clone();
                    trial.paste(grammar, &ix, pos, &cand.as_matrix(grammar, &ix));
                    if trial.closure().is_irreflexive() {
                        pick = Some(idx);
                        break;
                    }
                }
            }
            let idx = match pick {
                Some(idx) => {
                    stats.reuses += 1;
                    idx
                }
                None => {
                    // Derive a fresh partition from a topological order of
                    // the current graph.
                    let linear = topo_order(grammar, &pasted).expect("acyclic by invariant");
                    let of_pos: Vec<_> = linear
                        .iter()
                        .filter_map(|n| match n {
                            ONode::Attr(o) if o.pos == pos => Some(o.attr),
                            _ => None,
                        })
                        .collect();
                    let fresh = TotalOrder::from_linear(grammar, ph, &of_pos);
                    // Equality strategy (and dedup in general): reuse only
                    // an identical partition.
                    match partitions[ph.index()].iter().position(|t| *t == fresh) {
                        Some(idx) => {
                            stats.reuses += 1;
                            idx
                        }
                        None => {
                            partitions[ph.index()].push(fresh);
                            stats.fresh += 1;
                            let idx = partitions[ph.index()].len() - 1;
                            for &q in grammar.phylum(ph).productions() {
                                worklist.push_back((q, idx));
                            }
                            idx
                        }
                    }
                }
            };
            // Paste the choice and continue with the next position.
            let m = partitions[ph.index()][idx].as_matrix(grammar, &ix);
            pasted.paste(grammar, &ix, pos, &m);
            if !pasted.closure().is_irreflexive() {
                return Err(TransformError {
                    production: p,
                    witness: CircWitness {
                        production: p,
                        cycle: pasted.find_cycle().expect("cyclic"),
                    },
                });
            }
            // Make sure the chosen partition's plans exist.
            for &q in grammar.phylum(ph).productions() {
                if !plans.contains_key(&(q, idx)) {
                    worklist.push_back((q, idx));
                }
            }
            chosen.push(idx);
        }

        let linear = topo_order(grammar, &pasted).expect("acyclic by invariant");
        plans.insert(
            (p, pi),
            Plan {
                rhs_partitions: chosen,
                linear,
            },
        );
    }

    stats.plans = plans.len();
    stats.partitions_per_phylum = partitions.iter().map(Vec::len).collect();
    Ok(LOrdered {
        partitions,
        plans,
        stats,
    })
}

/// Builds an [`LOrdered`] directly from one partition per phylum (the OAG
/// path of the generator: Figure 3's "visit sequences generation" consumes
/// either source uniformly).
///
/// # Errors
///
/// Returns [`TransformError`] if some production graph is cyclic under the
/// given partitions (the grammar is then not ordered by them).
pub fn l_ordered_from_partitions(
    grammar: &Grammar,
    parts: Vec<TotalOrder>,
) -> Result<LOrdered, TransformError> {
    assert_eq!(
        parts.len(),
        grammar.phylum_count(),
        "one partition per phylum"
    );
    let ix = AttrIndex::new(grammar);
    let mut plans = HashMap::new();
    for p in grammar.productions() {
        let prod = grammar.production(p);
        let mut pasted = Pasted::base(grammar, p);
        for pos in 0..=prod.arity() as u16 {
            let ph = prod.phylum_at(pos);
            pasted.paste(
                grammar,
                &ix,
                pos,
                &parts[ph.index()].as_matrix(grammar, &ix),
            );
        }
        let Some(linear) = topo_order(grammar, &pasted) else {
            return Err(TransformError {
                production: p,
                witness: CircWitness {
                    production: p,
                    cycle: pasted.find_cycle().expect("cyclic"),
                },
            });
        };
        plans.insert(
            (p, 0),
            Plan {
                rhs_partitions: vec![0; prod.arity()],
                linear,
            },
        );
    }
    let stats = TransformStats {
        partitions_per_phylum: vec![1; grammar.phylum_count()],
        plans: plans.len(),
        reuses: 0,
        fresh: grammar.phylum_count(),
    };
    Ok(LOrdered {
        partitions: parts.into_iter().map(|t| vec![t]).collect(),
        plans,
        stats,
    })
}

/// Checks that a plan's linear order respects a digraph's edges — test
/// support, exposed for the property tests.
pub fn linear_respects(pasted_edges: &Digraph, order: &[usize]) -> bool {
    let mut rank = vec![usize::MAX; pasted_edges.len()];
    for (r, &u) in order.iter().enumerate() {
        rank[u] = r;
    }
    pasted_edges.edges().all(|(u, v)| rank[u] < rank[v])
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{Grammar, GrammarBuilder, Occ, Value};

    use crate::io::snc_test;

    use super::*;

    /// Two-pass grammar (l-ordered, 1 partition per phylum either way).
    fn two_pass() -> Grammar {
        let mut g = GrammarBuilder::new("two_pass");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let down = g.inh(a, "down");
        let up = g.syn(a, "up");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(out), Occ::new(1, up));
        g.constant(root, Occ::new(1, down), Value::Int(0));
        let mid = g.production("mid", a, &[a]);
        g.copy(mid, Occ::new(1, down), Occ::lhs(down));
        g.copy(mid, Occ::lhs(up), Occ::new(1, up));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(up), Occ::lhs(down));
        g.finish().unwrap()
    }

    #[test]
    fn two_pass_transforms_to_one_partition() {
        let g = two_pass();
        let snc = snc_test(&g);
        assert!(snc.is_snc());
        for inc in [Inclusion::Equality, Inclusion::Long] {
            let lo = snc_to_l_ordered(&g, &snc, inc).unwrap();
            let a = g.phylum_by_name("A").unwrap();
            assert_eq!(lo.partitions_of(a).len(), 1, "{inc:?}");
            assert_eq!(lo.partitions_of(a)[0].visit_count(), 1);
            // 3 productions × 1 partition each.
            assert_eq!(lo.stats.plans, 3);
            // Every plan's linear order covers all occurrences.
            for ((p, _), plan) in &lo.plans {
                let want = fnc2_ag::DepGraph::of(&g, *p).len();
                assert_eq!(plan.linear.len(), want);
            }
        }
    }

    /// The Figure-1 shape: one phylum used in two contexts that impose
    /// *different but compatible* orders. Classical equality registers two
    /// partitions; long inclusion reuses one.
    fn fig1() -> Grammar {
        let mut g = GrammarBuilder::new("fig1");
        let s = g.phylum("S");
        let x = g.phylum("X");
        let out = g.syn(s, "out");
        // X has i1, i2 inherited and s1, s2 synthesized with subtree deps
        // i1→s1, i2→s2 only.
        let i1 = g.inh(x, "i1");
        let i2 = g.inh(x, "i2");
        let s1 = g.syn(x, "s1");
        let s2 = g.syn(x, "s2");
        g.func("pair2", 2, |a| Value::tuple([a[0].clone(), a[1].clone()]));
        // Context A: s1 feeds i2 (forces i1 s1 i2 s2).
        let ctx_a = g.production("ctx_a", s, &[x]);
        g.constant(ctx_a, Occ::new(1, i1), Value::Int(0));
        g.copy(ctx_a, Occ::new(1, i2), Occ::new(1, s1));
        g.call(
            ctx_a,
            Occ::lhs(out),
            "pair2",
            [Occ::new(1, s1).into(), Occ::new(1, s2).into()],
        );
        // Context B: both inherited available immediately (compatible with
        // the A order, but the classical derivation yields the coarser
        // [i1 i2 | s1 s2]).
        let ctx_b = g.production("ctx_b", s, &[x]);
        g.constant(ctx_b, Occ::new(1, i1), Value::Int(1));
        g.constant(ctx_b, Occ::new(1, i2), Value::Int(2));
        g.call(
            ctx_b,
            Occ::lhs(out),
            "pair2",
            [Occ::new(1, s1).into(), Occ::new(1, s2).into()],
        );
        // X leaf: s1 := i1, s2 := i2.
        let leaf = g.production("leafx", x, &[]);
        g.copy(leaf, Occ::lhs(s1), Occ::lhs(i1));
        g.copy(leaf, Occ::lhs(s2), Occ::lhs(i2));
        g.finish().unwrap()
    }

    #[test]
    fn long_inclusion_reuses_where_equality_multiplies() {
        let g = fig1();
        let snc = snc_test(&g);
        assert!(snc.is_snc());
        let x = g.phylum_by_name("X").unwrap();

        let eq = snc_to_l_ordered(&g, &snc, Inclusion::Equality).unwrap();
        let long = snc_to_l_ordered(&g, &snc, Inclusion::Long).unwrap();
        assert!(
            long.partitions_of(x).len() < eq.partitions_of(x).len(),
            "long inclusion must register fewer partitions: {} vs {}",
            long.partitions_of(x).len(),
            eq.partitions_of(x).len()
        );
        assert_eq!(long.partitions_of(x).len(), 1);
        assert_eq!(eq.partitions_of(x).len(), 2);
        assert!(long.stats.reuses > eq.stats.reuses);
        // Equality: leafx needs a plan per partition => more plans.
        assert!(long.stats.plans < eq.stats.plans);
    }

    #[test]
    fn plans_linear_orders_respect_dependencies() {
        let g = fig1();
        let snc = snc_test(&g);
        for inc in [Inclusion::Equality, Inclusion::Long] {
            let lo = snc_to_l_ordered(&g, &snc, inc).unwrap();
            for ((p, pi), plan) in &lo.plans {
                // Rebuild the pasted graph and verify the order.
                let ix = AttrIndex::new(&g);
                let prod = g.production(*p);
                let mut pasted = Pasted::base(&g, *p);
                let lhs_part = &lo.partitions_of(prod.lhs())[*pi];
                pasted.paste(&g, &ix, 0, &lhs_part.as_matrix(&g, &ix));
                for (i, &idx) in plan.rhs_partitions.iter().enumerate() {
                    let pos = (i + 1) as u16;
                    let ph = prod.phylum_at(pos);
                    pasted.paste(&g, &ix, pos, &lo.partitions_of(ph)[idx].as_matrix(&g, &ix));
                }
                let order: Vec<usize> = plan
                    .linear
                    .iter()
                    .map(|&n| pasted.dep.index_of(n).unwrap())
                    .collect();
                assert!(linear_respects(&pasted.graph, &order));
            }
        }
    }

    #[test]
    fn oag_partitions_to_plans() {
        let g = two_pass();
        let oag = crate::oag::oag_test(&g, 0);
        let lo = l_ordered_from_partitions(&g, oag.partitions.unwrap()).unwrap();
        assert_eq!(lo.stats.plans, g.production_count());
        for p in g.productions() {
            assert!(lo.plan(p, 0).is_some());
        }
    }
}
