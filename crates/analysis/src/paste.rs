//! Building "pasted" production graphs: the local dependency graph `D(p)`
//! augmented with per-phylum relations (argument selectors / IO-graphs,
//! OI-graphs, induced dependencies, or partition orders) attached to chosen
//! occurrence positions.

use fnc2_ag::{DepGraph, Grammar, ONode, Occ, ProductionId};
use fnc2_gfa::{BitMatrix, Digraph};

use crate::attrs::AttrIndex;

/// `D(p)` plus pasted relations, with matching dense node indexing.
#[derive(Clone, Debug)]
pub struct Pasted {
    /// Node identities (the indexing of `graph`).
    pub dep: DepGraph,
    /// The combined digraph.
    pub graph: Digraph,
}

impl Pasted {
    /// Starts from the bare local dependency graph of `p`.
    pub fn base(grammar: &Grammar, p: ProductionId) -> Pasted {
        let dep = DepGraph::of(grammar, p);
        let mut graph = Digraph::new(dep.len());
        for (u, v) in dep.edges() {
            graph.add_edge(u, v);
        }
        Pasted { dep, graph }
    }

    /// Pastes relation `rel` (over the local attribute indices of the
    /// phylum at `pos`) onto position `pos`: for each pair `(i, j)` adds an
    /// edge between the corresponding occurrences.
    pub fn paste(&mut self, grammar: &Grammar, ix: &AttrIndex, pos: u16, rel: &BitMatrix) {
        let p = self.dep.production();
        let ph = grammar.production(p).phylum_at(pos);
        debug_assert_eq!(rel.len(), ix.len(ph), "relation sized for phylum");
        for (i, j) in rel.pairs() {
            let u = ONode::Attr(Occ::new(pos, ix.attr_at(ph, i)));
            let v = ONode::Attr(Occ::new(pos, ix.attr_at(ph, j)));
            let (Some(u), Some(v)) = (self.dep.index_of(u), self.dep.index_of(v)) else {
                continue;
            };
            self.graph.add_edge(u, v);
        }
    }

    /// Adds an explicit edge between two occurrence nodes.
    pub fn add_edge(&mut self, from: ONode, to: ONode) {
        if let (Some(u), Some(v)) = (self.dep.index_of(from), self.dep.index_of(to)) {
            self.graph.add_edge(u, v);
        }
    }

    /// The transitive closure of the combined graph as a [`BitMatrix`] over
    /// the dense node indices.
    pub fn closure(&self) -> BitMatrix {
        let mut m = BitMatrix::new(self.dep.len());
        for (u, v) in self.graph.edges() {
            m.set(u, v);
        }
        m.close();
        m
    }

    /// Projects `closed` (a closure from [`closure`](Self::closure)) onto
    /// position `pos`: the relation over local attribute indices of the
    /// phylum at `pos` induced by paths between its occurrences. Pairs are
    /// filtered by `keep(i, j)`.
    pub fn project(
        &self,
        grammar: &Grammar,
        ix: &AttrIndex,
        closed: &BitMatrix,
        pos: u16,
        mut keep: impl FnMut(usize, usize) -> bool,
    ) -> BitMatrix {
        let p = self.dep.production();
        let ph = grammar.production(p).phylum_at(pos);
        let k = ix.len(ph);
        let mut out = BitMatrix::new(k);
        for i in 0..k {
            let u = self
                .dep
                .index_of(ONode::Attr(Occ::new(pos, ix.attr_at(ph, i))))
                .expect("occurrence exists");
            for j in 0..k {
                if i == j || !keep(i, j) {
                    continue;
                }
                let v = self
                    .dep
                    .index_of(ONode::Attr(Occ::new(pos, ix.attr_at(ph, j))))
                    .expect("occurrence exists");
                if closed.get(u, v) {
                    out.set(i, j);
                }
            }
        }
        out
    }

    /// Finds a dependency cycle in the combined graph, as occurrence nodes.
    pub fn find_cycle(&self) -> Option<Vec<ONode>> {
        self.graph
            .find_cycle()
            .map(|c| c.into_iter().map(|u| self.dep.node(u)).collect())
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{Grammar, GrammarBuilder, Occ, Value};

    use super::*;

    /// S ::= A with S.v := A.w, A.i := S.j ; A.w := A.i at the leaf.
    fn g() -> Grammar {
        let mut g = GrammarBuilder::new("t");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let j = g.inh(s, "j");
        let v = g.syn(s, "v");
        let i = g.inh(a, "i");
        let w = g.syn(a, "w");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(v), Occ::new(1, w));
        g.copy(root, Occ::new(1, i), Occ::lhs(j));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(w), Occ::lhs(i));
        let _ = Value::Unit;
        g.finish().unwrap()
    }

    #[test]
    fn paste_and_project() {
        let g = g();
        let ix = AttrIndex::new(&g);
        let root = g.production_by_name("root").unwrap();
        let a = g.phylum_by_name("A").unwrap();
        let mut pg = Pasted::base(&g, root);
        // io(A) = { i -> w }
        let mut io_a = BitMatrix::new(2);
        io_a.set(0, 1);
        pg.paste(&g, &ix, 1, &io_a);
        let closed = pg.closure();
        assert!(closed.is_irreflexive());
        // Path S.j -> A.i -> A.w -> S.v projects to j -> v on S.
        let proj = pg.project(&g, &ix, &closed, 0, |_, _| true);
        assert!(proj.get(0, 1));
        assert!(!proj.get(1, 0));
        let _ = a;
    }

    #[test]
    fn cycle_detected_after_paste() {
        let g = g();
        let ix = AttrIndex::new(&g);
        let root = g.production_by_name("root").unwrap();
        let mut pg = Pasted::base(&g, root);
        let mut io_a = BitMatrix::new(2);
        io_a.set(0, 1);
        pg.paste(&g, &ix, 1, &io_a);
        // Paste a bogus S relation v -> j, closing the loop.
        let mut rel_s = BitMatrix::new(2);
        rel_s.set(1, 0);
        pg.paste(&g, &ix, 0, &rel_s);
        assert!(!pg.closure().is_irreflexive());
        let cyc = pg.find_cycle().unwrap();
        assert!(cyc.len() >= 4);
    }
}
