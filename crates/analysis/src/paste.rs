//! Building "pasted" production graphs: the local dependency graph `D(p)`
//! augmented with per-phylum relations (argument selectors / IO-graphs,
//! OI-graphs, induced dependencies, or partition orders) attached to chosen
//! occurrence positions.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use fnc2_ag::{DepGraph, Grammar, ONode, Occ, ProductionId};
use fnc2_gfa::{BitMatrix, Digraph};

use crate::attrs::AttrIndex;

/// `D(p)` plus pasted relations, with matching dense node indexing.
#[derive(Clone, Debug)]
pub struct Pasted {
    /// Node identities (the indexing of `graph`).
    pub dep: DepGraph,
    /// The combined digraph.
    pub graph: Digraph,
}

impl Pasted {
    /// Starts from the bare local dependency graph of `p`.
    pub fn base(grammar: &Grammar, p: ProductionId) -> Pasted {
        let dep = DepGraph::of(grammar, p);
        let mut graph = Digraph::new(dep.len());
        for (u, v) in dep.edges() {
            graph.add_edge(u, v);
        }
        Pasted { dep, graph }
    }

    /// Pastes relation `rel` (over the local attribute indices of the
    /// phylum at `pos`) onto position `pos`: for each pair `(i, j)` adds an
    /// edge between the corresponding occurrences.
    pub fn paste(&mut self, grammar: &Grammar, ix: &AttrIndex, pos: u16, rel: &BitMatrix) {
        let p = self.dep.production();
        let ph = grammar.production(p).phylum_at(pos);
        debug_assert_eq!(rel.len(), ix.len(ph), "relation sized for phylum");
        for (i, j) in rel.pairs() {
            let u = ONode::Attr(Occ::new(pos, ix.attr_at(ph, i)));
            let v = ONode::Attr(Occ::new(pos, ix.attr_at(ph, j)));
            let (Some(u), Some(v)) = (self.dep.index_of(u), self.dep.index_of(v)) else {
                continue;
            };
            self.graph.add_edge(u, v);
        }
    }

    /// Adds an explicit edge between two occurrence nodes.
    pub fn add_edge(&mut self, from: ONode, to: ONode) {
        if let (Some(u), Some(v)) = (self.dep.index_of(from), self.dep.index_of(to)) {
            self.graph.add_edge(u, v);
        }
    }

    /// The transitive closure of the combined graph as a [`BitMatrix`] over
    /// the dense node indices.
    pub fn closure(&self) -> BitMatrix {
        let mut m = BitMatrix::new(self.dep.len());
        for (u, v) in self.graph.edges() {
            m.set(u, v);
        }
        m.close();
        m
    }

    /// Projects `closed` (a closure from [`closure`](Self::closure)) onto
    /// position `pos`: the relation over local attribute indices of the
    /// phylum at `pos` induced by paths between its occurrences. Pairs are
    /// filtered by `keep(i, j)`.
    pub fn project(
        &self,
        grammar: &Grammar,
        ix: &AttrIndex,
        closed: &BitMatrix,
        pos: u16,
        mut keep: impl FnMut(usize, usize) -> bool,
    ) -> BitMatrix {
        let p = self.dep.production();
        let ph = grammar.production(p).phylum_at(pos);
        let k = ix.len(ph);
        let mut out = BitMatrix::new(k);
        for i in 0..k {
            let u = self
                .dep
                .index_of(ONode::Attr(Occ::new(pos, ix.attr_at(ph, i))))
                .expect("occurrence exists");
            for j in 0..k {
                if i == j || !keep(i, j) {
                    continue;
                }
                let v = self
                    .dep
                    .index_of(ONode::Attr(Occ::new(pos, ix.attr_at(ph, j))))
                    .expect("occurrence exists");
                if closed.get(u, v) {
                    out.set(i, j);
                }
            }
        }
        out
    }

    /// Like [`project`](Self::project), but computed by breadth-first
    /// search from the `k` occurrence nodes of `pos` instead of from a
    /// dense all-pairs closure: `O(k · (V + E))` where the closure costs
    /// `O(V³/64)`. The two agree because `closure().get(u, v)` for `u ≠ v`
    /// is exactly "v reachable from u by a non-empty path".
    pub fn project_reach(
        &self,
        grammar: &Grammar,
        ix: &AttrIndex,
        pos: u16,
        keep: impl FnMut(usize, usize) -> bool,
    ) -> BitMatrix {
        self.project_reach_excluding(grammar, ix, pos, None, keep)
    }

    /// [`project_reach`](Self::project_reach) over the combined graph
    /// *minus* the relation `excluded` pasted at `pos` itself: traversal
    /// skips an edge between two `pos` occurrences if `excluded` relates
    /// them — unless `D(p)` contributes the same edge, which stays (the
    /// digraph dedups edges, so a pasted pair and a real local dependency
    /// can share one edge). This reproduces "paste everywhere except at
    /// `pos`" without rebuilding the graph per position, which is what the
    /// DNC test needs for each child's context.
    pub fn project_reach_excluding(
        &self,
        grammar: &Grammar,
        ix: &AttrIndex,
        pos: u16,
        excluded: Option<&BitMatrix>,
        mut keep: impl FnMut(usize, usize) -> bool,
    ) -> BitMatrix {
        let p = self.dep.production();
        let ph = grammar.production(p).phylum_at(pos);
        let k = ix.len(ph);
        let node_of = |i: usize| {
            self.dep
                .index_of(ONode::Attr(Occ::new(pos, ix.attr_at(ph, i))))
                .expect("occurrence exists")
        };
        let mut skip: HashSet<(usize, usize)> = HashSet::new();
        if let Some(rel) = excluded {
            debug_assert_eq!(rel.len(), k, "relation sized for phylum");
            for (i, j) in rel.pairs() {
                let (u, v) = (node_of(i), node_of(j));
                if !self.dep.succs(u).contains(&v) {
                    skip.insert((u, v));
                }
            }
        }
        let mut out = BitMatrix::new(k);
        let mut seen = vec![false; self.dep.len()];
        let mut queue: Vec<usize> = Vec::new();
        for i in 0..k {
            let start = node_of(i);
            seen.iter_mut().for_each(|s| *s = false);
            queue.clear();
            // The start node is not marked reached: closure semantics give
            // `(u, u)` only via a real cycle, and projections skip `i == j`
            // anyway.
            seen[start] = true;
            queue.push(start);
            let mut head = 0;
            while head < queue.len() {
                let u = queue[head];
                head += 1;
                for &v in self.graph.succs(u) {
                    if !seen[v] && !skip.contains(&(u, v)) {
                        seen[v] = true;
                        queue.push(v);
                    }
                }
            }
            for j in 0..k {
                if i != j && seen[node_of(j)] && keep(i, j) {
                    out.set(i, j);
                }
            }
        }
        out
    }

    /// Groups the RHS positions `1..=arity` into classes whose projections
    /// are guaranteed identical, so a class-test fixpoint only projects one
    /// representative per class. Two positions land in the same class when
    /// they hold the same phylum and their occurrence nodes have identical
    /// edge *signatures*: every neighbor is encoded as either
    /// `(local attribute index)` when it belongs to the position itself or
    /// `(absolute node id)` otherwise. Equal signatures make the map that
    /// swaps the two positions' nodes (by local index) and fixes all other
    /// nodes a graph automorphism — equality rules out edges between the
    /// two positions, since such an edge would encode as an absolute id on
    /// one side with no counterpart on the other — and an automorphism
    /// fixing a `keep` predicate preserves reachability projections. A
    /// production with thousands of interchangeable children (a wide list)
    /// collapses to a handful of classes.
    pub fn rhs_position_groups(&self, grammar: &Grammar, ix: &AttrIndex) -> Vec<Vec<u16>> {
        let p = self.dep.production();
        let prod = grammar.production(p);
        let arity = prod.arity() as u16;
        let n = self.dep.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (u, v) in self.graph.edges() {
            preds[v].push(u);
        }
        // node -> its position, for "own node" testing during encoding.
        let pos_of: Vec<Option<u16>> = (0..n)
            .map(|u| self.dep.node(u).occ().map(|o| o.pos))
            .collect();
        let mut groups: HashMap<Vec<u64>, Vec<u16>> = HashMap::new();
        let mut order: Vec<Vec<u64>> = Vec::new();
        for pos in 1..=arity {
            let ph = prod.phylum_at(pos);
            let k = ix.len(ph);
            // Signature: phylum, then per local attribute the sorted
            // encodings of successor and predecessor neighbors, with
            // sentinels separating the sections. Own-position neighbors
            // encode as `2 * local`, everything else as `2 * node + 1`.
            let mut sig: Vec<u64> = vec![ph.index() as u64];
            let encode = |w: usize| -> u64 {
                if pos_of[w] == Some(pos) {
                    let a = self.dep.node(w).occ().expect("own node is an occurrence");
                    2 * ix.local(grammar, a.attr) as u64
                } else {
                    2 * w as u64 + 1
                }
            };
            for i in 0..k {
                let u = self
                    .dep
                    .index_of(ONode::Attr(Occ::new(pos, ix.attr_at(ph, i))))
                    .expect("occurrence exists");
                for list in [self.graph.succs(u), &preds[u]] {
                    let mut enc: Vec<u64> = list.iter().map(|&w| encode(w)).collect();
                    enc.sort_unstable();
                    sig.push(u64::MAX);
                    sig.extend(enc);
                }
            }
            match groups.entry(sig) {
                Entry::Occupied(mut e) => e.get_mut().push(pos),
                Entry::Vacant(e) => {
                    order.push(e.key().clone());
                    e.insert(vec![pos]);
                }
            }
        }
        order
            .into_iter()
            .map(|sig| groups.remove(&sig).expect("group recorded"))
            .collect()
    }

    /// Finds a dependency cycle in the combined graph, as occurrence nodes.
    pub fn find_cycle(&self) -> Option<Vec<ONode>> {
        self.graph
            .find_cycle()
            .map(|c| c.into_iter().map(|u| self.dep.node(u)).collect())
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{Grammar, GrammarBuilder, Occ, Value};

    use super::*;

    /// S ::= A with S.v := A.w, A.i := S.j ; A.w := A.i at the leaf.
    fn g() -> Grammar {
        let mut g = GrammarBuilder::new("t");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let j = g.inh(s, "j");
        let v = g.syn(s, "v");
        let i = g.inh(a, "i");
        let w = g.syn(a, "w");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(v), Occ::new(1, w));
        g.copy(root, Occ::new(1, i), Occ::lhs(j));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(w), Occ::lhs(i));
        let _ = Value::Unit;
        g.finish().unwrap()
    }

    #[test]
    fn paste_and_project() {
        let g = g();
        let ix = AttrIndex::new(&g);
        let root = g.production_by_name("root").unwrap();
        let a = g.phylum_by_name("A").unwrap();
        let mut pg = Pasted::base(&g, root);
        // io(A) = { i -> w }
        let mut io_a = BitMatrix::new(2);
        io_a.set(0, 1);
        pg.paste(&g, &ix, 1, &io_a);
        let closed = pg.closure();
        assert!(closed.is_irreflexive());
        // Path S.j -> A.i -> A.w -> S.v projects to j -> v on S.
        let proj = pg.project(&g, &ix, &closed, 0, |_, _| true);
        assert!(proj.get(0, 1));
        assert!(!proj.get(1, 0));
        let _ = a;
    }

    #[test]
    fn cycle_detected_after_paste() {
        let g = g();
        let ix = AttrIndex::new(&g);
        let root = g.production_by_name("root").unwrap();
        let mut pg = Pasted::base(&g, root);
        let mut io_a = BitMatrix::new(2);
        io_a.set(0, 1);
        pg.paste(&g, &ix, 1, &io_a);
        // Paste a bogus S relation v -> j, closing the loop.
        let mut rel_s = BitMatrix::new(2);
        rel_s.set(1, 0);
        pg.paste(&g, &ix, 0, &rel_s);
        assert!(!pg.closure().is_irreflexive());
        let cyc = pg.find_cycle().unwrap();
        assert!(cyc.len() >= 4);
    }
}
