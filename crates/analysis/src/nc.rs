//! The plain (Knuth) non-circularity test.
//!
//! Keeps, for every phylum, the *set* of IO graphs realizable by individual
//! derivation shapes, instead of SNC's single union graph. Exact but
//! exponential in the worst case — the reason FNC-2 settles on the SNC
//! class, whose single-graph test is polynomial and whose expressive power
//! is "very useful" in practice (paper §4.3). Provided here for the class
//! ladder and for the benches contrasting test costs.

use std::collections::HashSet;

use fnc2_ag::{AttrKind, Grammar, ProductionId};
use fnc2_gfa::BitMatrix;

use crate::attrs::AttrIndex;
use crate::io::CircWitness;
use crate::paste::Pasted;

/// Result of the exact non-circularity test.
#[derive(Clone, Debug)]
pub struct NcResult {
    /// Per-phylum sets of realizable IO graphs (when the run completed).
    pub io_sets: Vec<HashSet<BitMatrix>>,
    /// A witness cycle if the AG is circular.
    pub witness: Option<CircWitness>,
    /// True if the run hit `max_graphs` and gave up (the grammar may still
    /// be non-circular).
    pub aborted: bool,
    /// Total number of (production × graph-combination) expansions.
    pub combinations: usize,
}

impl NcResult {
    /// True if the grammar was proved non-circular.
    pub fn is_nc(&self) -> bool {
        self.witness.is_none() && !self.aborted
    }
}

/// Runs the exact non-circularity test, giving up once any phylum
/// accumulates more than `max_graphs` distinct IO graphs.
pub fn nc_test(grammar: &Grammar, max_graphs: usize) -> NcResult {
    let ix = AttrIndex::new(grammar);
    let mut io_sets: Vec<HashSet<BitMatrix>> = grammar
        .phyla()
        .map(|ph| {
            let _ = ph;
            HashSet::new()
        })
        .collect();
    let mut combinations = 0usize;

    // Round-robin until stable (sets only grow; bounded by max_graphs).
    loop {
        let mut changed = false;
        for p in grammar.productions() {
            match expand(grammar, &ix, p, &io_sets, &mut combinations) {
                Expansion::Cycle(w) => {
                    return NcResult {
                        io_sets,
                        witness: Some(w),
                        aborted: false,
                        combinations,
                    }
                }
                Expansion::Graphs(gs) => {
                    let lhs = grammar.production(p).lhs();
                    for g in gs {
                        changed |= io_sets[lhs.index()].insert(g);
                    }
                    if io_sets[lhs.index()].len() > max_graphs {
                        return NcResult {
                            io_sets,
                            witness: None,
                            aborted: true,
                            combinations,
                        };
                    }
                }
            }
        }
        if !changed {
            return NcResult {
                io_sets,
                witness: None,
                aborted: false,
                combinations,
            };
        }
    }
}

enum Expansion {
    Graphs(Vec<BitMatrix>),
    Cycle(CircWitness),
}

/// All IO graphs of `lhs(p)` obtainable by choosing one IO graph per RHS
/// occurrence from the current sets.
fn expand(
    grammar: &Grammar,
    ix: &AttrIndex,
    p: ProductionId,
    io_sets: &[HashSet<BitMatrix>],
    combinations: &mut usize,
) -> Expansion {
    let prod = grammar.production(p);
    let arity = prod.arity();
    let lhs = prod.lhs();
    // Choice lists per RHS position; a position whose phylum has no graph
    // yet cannot yield a complete derivation — skip this production for now
    // (leaf productions have no positions, so the base case seeds the sets).
    let mut choices: Vec<Vec<&BitMatrix>> = Vec::with_capacity(arity);
    for pos in 1..=arity as u16 {
        let set = &io_sets[prod.phylum_at(pos).index()];
        if set.is_empty() {
            return Expansion::Graphs(Vec::new());
        }
        let mut v: Vec<&BitMatrix> = set.iter().collect();
        // Deterministic order for reproducible witnesses.
        v.sort_by_key(|m| m.pairs().collect::<Vec<_>>());
        choices.push(v);
    }
    let mut out = Vec::new();
    let mut pick = vec![0usize; arity];
    loop {
        *combinations += 1;
        let mut pasted = Pasted::base(grammar, p);
        for (i, &c) in pick.iter().enumerate() {
            pasted.paste(grammar, ix, (i + 1) as u16, choices[i][c]);
        }
        let closed = pasted.closure();
        if !closed.is_irreflexive() {
            return Expansion::Cycle(CircWitness {
                production: p,
                cycle: pasted.find_cycle().expect("cyclic"),
            });
        }
        out.push(pasted.project(grammar, ix, &closed, 0, |i, j| {
            grammar.attr(ix.attr_at(lhs, i)).kind() == AttrKind::Inherited
                && grammar.attr(ix.attr_at(lhs, j)).kind() == AttrKind::Synthesized
        }));
        // Next combination (odometer).
        let mut k = 0;
        loop {
            if k == arity {
                return Expansion::Graphs(out);
            }
            pick[k] += 1;
            if pick[k] < choices[k].len() {
                break;
            }
            pick[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{GrammarBuilder, Occ, Value};

    use crate::io::snc_test;

    use super::*;

    #[test]
    fn simple_grammar_is_nc() {
        let mut g = GrammarBuilder::new("t");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let i = g.inh(a, "i");
        let sy = g.syn(a, "s");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(out), Occ::new(1, sy));
        g.constant(root, Occ::new(1, i), Value::Int(0));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(sy), Occ::lhs(i));
        let g = g.finish().unwrap();
        let r = nc_test(&g, 64);
        assert!(r.is_nc());
        let a = g.phylum_by_name("A").unwrap();
        assert_eq!(r.io_sets[a.index()].len(), 1);
    }

    #[test]
    fn circular_grammar_rejected() {
        let mut g = GrammarBuilder::new("t");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let i = g.inh(a, "i");
        let sy = g.syn(a, "s");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(out), Occ::new(1, sy));
        g.copy(root, Occ::new(1, i), Occ::new(1, sy));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(sy), Occ::lhs(i));
        let g = g.finish().unwrap();
        let r = nc_test(&g, 64);
        assert!(!r.is_nc());
        assert!(r.witness.is_some());
    }

    /// The classical NC-but-not-SNC grammar: two leaf productions realize
    /// IO graphs {i1→s1} and {i2→s2}; the SNC union {i1→s1, i2→s2} closes a
    /// cycle with the context, but no single derivation does.
    #[test]
    fn nc_strictly_larger_than_snc() {
        let mut g = GrammarBuilder::new("nc_not_snc");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let i1 = g.inh(a, "i1");
        let i2 = g.inh(a, "i2");
        let s1 = g.syn(a, "s1");
        let s2 = g.syn(a, "s2");
        g.func("pair2", 2, |v| Value::tuple([v[0].clone(), v[1].clone()]));
        let root = g.production("root", s, &[a]);
        // Context: i1 := s2, i2 := s1 — crossing feedback.
        g.copy(root, Occ::new(1, i1), Occ::new(1, s2));
        g.copy(root, Occ::new(1, i2), Occ::new(1, s1));
        g.call(
            root,
            Occ::lhs(out),
            "pair2",
            [Occ::new(1, s1).into(), Occ::new(1, s2).into()],
        );
        // leaf1: s1 := i1, s2 := const — IO {i1→s1}.
        let leaf1 = g.production("leaf1", a, &[]);
        g.copy(leaf1, Occ::lhs(s1), Occ::lhs(i1));
        g.constant(leaf1, Occ::lhs(s2), Value::Int(0));
        // leaf2: s2 := i2, s1 := const — IO {i2→s2}.
        let leaf2 = g.production("leaf2", a, &[]);
        g.copy(leaf2, Occ::lhs(s2), Occ::lhs(i2));
        g.constant(leaf2, Occ::lhs(s1), Value::Int(0));
        let g = g.finish().unwrap();

        let nc = nc_test(&g, 64);
        assert!(nc.is_nc(), "each derivation alone is acyclic");
        let snc = snc_test(&g);
        assert!(!snc.is_snc(), "the union of IO graphs is cyclic");
    }

    #[test]
    fn abort_on_budget() {
        // Same NC grammar with a budget of 1 graph per phylum: A gets 2.
        let mut g = GrammarBuilder::new("t");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let i = g.inh(a, "i");
        let sy = g.syn(a, "s");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(out), Occ::new(1, sy));
        g.constant(root, Occ::new(1, i), Value::Int(0));
        let leaf1 = g.production("leaf1", a, &[]);
        g.copy(leaf1, Occ::lhs(sy), Occ::lhs(i));
        let leaf2 = g.production("leaf2", a, &[]);
        g.constant(leaf2, Occ::lhs(sy), Value::Int(1));
        let g = g.finish().unwrap();
        let r = nc_test(&g, 1);
        assert!(r.aborted);
        assert!(!r.is_nc());
    }
}
