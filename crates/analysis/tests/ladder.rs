//! Deeper class-ladder tests: OAG(k) for k ≥ 2, start-anywhere DNC
//! properties, the exact NC test against SNC, and partition invariants on
//! random linear orders.

use fnc2_ag::{AttrKind, Grammar, GrammarBuilder, Occ, Value};
use fnc2_analysis::{
    classify, dnc_test, nc_test, oag_test, snc_test, AgClass, Inclusion, TotalOrder,
};

/// `pairs` independent OAG(0) conflicts on distinct phyla: needs exactly
/// `pairs` repairs.
fn crossings(pairs: usize) -> Grammar {
    let mut g = GrammarBuilder::new("crossings");
    let s = g.phylum("S");
    let out = g.syn(s, "out");
    g.func("add", 2, |v| Value::Int(v[0].as_int() + v[1].as_int()));
    for k in 0..pairs {
        let x = g.phylum(format!("X{k}"));
        let i1 = g.inh(x, "i1");
        let s1 = g.syn(x, "s1");
        let s2 = g.syn(x, "s2");
        let leaf = g.production(format!("leaf{k}"), x, &[]);
        g.copy(leaf, Occ::lhs(s1), Occ::lhs(i1));
        g.constant(leaf, Occ::lhs(s2), Value::Int(1));
        let cross = g.production(format!("cross{k}"), s, &[x, x]);
        g.copy(cross, Occ::new(1, i1), Occ::new(2, s2));
        g.copy(cross, Occ::new(2, i1), Occ::new(1, s2));
        g.call(
            cross,
            Occ::lhs(out),
            "add",
            [Occ::new(1, s1).into(), Occ::new(2, s1).into()],
        );
    }
    g.finish().unwrap()
}

#[test]
fn oag_k_ladder_is_strict_for_higher_k() {
    for pairs in 1..=3 {
        let g = crossings(pairs);
        for k in 0..pairs {
            assert!(
                !oag_test(&g, k).is_oag(),
                "{pairs} crossings must fail OAG({k})"
            );
        }
        let r = oag_test(&g, pairs);
        assert!(r.is_oag(), "{pairs} crossings pass OAG({pairs})");
        assert_eq!(r.repairs_used, pairs);
        // classify() finds the smallest k.
        let c = classify(&g, pairs, Inclusion::Long).unwrap();
        assert_eq!(c.class, AgClass::OagK(pairs));
    }
}

#[test]
fn oag_k_repaired_partitions_still_evaluate() {
    let g = crossings(2);
    let r = oag_test(&g, 2);
    let parts = r.partitions.expect("ordered at k=2");
    let lo = fnc2_analysis::l_ordered_from_partitions(&g, parts).unwrap();
    let seqs = fnc2_visit::build_visit_seqs(&g, &lo);
    let ev = fnc2_visit::Evaluator::new(&g, &seqs);
    let mut tb = fnc2_ag::TreeBuilder::new(&g);
    let a = tb.op("leaf0", &[]).unwrap();
    let b = tb.op("leaf0", &[]).unwrap();
    let root = tb.op("cross0", &[a, b]).unwrap();
    let tree = tb.finish_root(root).unwrap();
    let (vals, _) = ev.evaluate(&tree, &Default::default()).unwrap();
    let s = g.phylum_by_name("S").unwrap();
    let out = g.attr_by_name(s, "out").unwrap();
    // s1 = i1 = sibling's s2 = 1, both sides: out = 2.
    assert_eq!(vals.get(&g, tree.root(), out), Some(&Value::Int(2)));
}

#[test]
fn dnc_enables_start_anywhere_information() {
    // For a DNC grammar, OI ∪ IO gives a consistent evaluation order
    // around *any* node: check that for each phylum, the combined
    // OI(X) ∪ IO(X) relation is acyclic (the start-anywhere condition).
    let g = fnc2_corpus::blocks();
    let snc = snc_test(&g);
    assert!(snc.is_snc());
    let dnc = dnc_test(&g, &snc);
    assert!(dnc.is_dnc());
    for ph in g.phyla() {
        let n = g.phylum(ph).attrs().len();
        let mut m = fnc2_gfa::BitMatrix::new(n);
        for (i, j) in snc.io.get(ph).pairs() {
            m.set(i, j);
        }
        for (i, j) in dnc.oi.get(ph).pairs() {
            m.set(i, j);
        }
        assert!(
            m.closure().is_irreflexive(),
            "OI ∪ IO cyclic on {}",
            g.phylum(ph).name()
        );
    }
}

#[test]
fn nc_test_agrees_with_snc_on_the_corpus() {
    // SNC implies NC; the exact test must accept everything SNC accepts.
    for g in [
        fnc2_corpus::binary(),
        fnc2_corpus::desk(),
        fnc2_corpus::blocks(),
        fnc2_corpus::snc_only(),
        fnc2_corpus::oag1_not_oag0(),
    ] {
        let snc = snc_test(&g);
        assert!(snc.is_snc(), "{}", g.name());
        let nc = nc_test(&g, 256);
        assert!(nc.is_nc(), "{} must be plain non-circular", g.name());
    }
    // And the separating witness: NC yes, SNC no.
    let w = fnc2_corpus::nc_not_snc();
    assert!(nc_test(&w, 256).is_nc());
    assert!(!snc_test(&w).is_snc());
}

#[test]
fn circularity_witness_is_a_real_cycle() {
    let g = fnc2_corpus::circular();
    let snc = snc_test(&g);
    let w = snc.witness.expect("circular grammar has a witness");
    assert!(w.cycle.len() >= 3);
    assert_eq!(w.cycle.first(), w.cycle.last(), "closed cycle");
    let trace = fnc2_analysis::explain(&g, &w);
    assert!(trace.contains("->"));
}

/// Random attribute orders produce complete, well-formed partitions.
fn order_grammar() -> (Grammar, Vec<fnc2_ag::AttrId>) {
    let mut g = GrammarBuilder::new("t");
    let a = g.phylum("A");
    let mut attrs = Vec::new();
    for k in 0..3 {
        attrs.push(g.inh(a, format!("i{k}")));
        attrs.push(g.syn(a, format!("s{k}")));
    }
    let leaf = g.production("leaf", a, &[]);
    for k in 0..3 {
        g.copy(leaf, Occ::lhs(attrs[2 * k + 1]), Occ::lhs(attrs[2 * k]));
    }
    (g.finish().unwrap(), attrs)
}

#[test]
fn partitions_from_random_orders_are_complete() {
    // Seeded Fisher–Yates permutations (inline SplitMix64, same cases
    // every run).
    let mut state = 0x0a9du64;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    let (g, attrs) = order_grammar();
    let a = g.phylum_by_name("A").unwrap();
    for _ in 0..256 {
        let mut idx: Vec<usize> = (0..6).collect();
        for i in (1..6).rev() {
            let j = (next() as usize) % (i + 1);
            idx.swap(i, j);
        }
        let order: Vec<fnc2_ag::AttrId> = idx.iter().map(|&i| attrs[i]).collect();
        let t = TotalOrder::from_linear(&g, a, &order);
        assert!(t.is_complete(&g));
        assert!(t.visit_count() >= 1 && t.visit_count() <= 4);
        // Every attribute appears in exactly one slot, kind respected.
        for &attr in &attrs {
            let v = t.visit_of(attr).expect("covered");
            let slot = &t.visits[v - 1];
            match g.attr(attr).kind() {
                AttrKind::Inherited => assert!(slot.inh.contains(&attr)),
                AttrKind::Synthesized => assert!(slot.syn.contains(&attr)),
            }
        }
        // The matrix it induces is a strict partial order (irreflexive
        // after closure).
        let ix = fnc2_analysis::AttrIndex::new(&g);
        assert!(t.as_matrix(&g, &ix).closure().is_irreflexive());
    }
}
