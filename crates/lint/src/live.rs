//! Backward liveness from root outputs: unused attributes (`L001`) and
//! dead semantic rules (`L002`).
//!
//! The two analyses are deliberately different strengths, matched to the
//! dynamic oracles that validate them:
//!
//! * an attribute is **unused** when *no* semantic rule anywhere reads it
//!   and it is not a root output — such an instance is never fetched by
//!   any evaluator, so the exhaustive evaluator's `AttrRead` trace must
//!   never mention it;
//! * a rule is **dead** when its target cannot reach a root output
//!   through the backward-liveness fixpoint — demand-driven evaluation of
//!   the root outputs only ever demands live instances, so a dead rule
//!   must never fire there.
//!
//! Liveness over-approximates dynamic demand (it ignores which trees are
//! actually built), so both verdicts are sound: flagged entities can
//! never be exercised at run time.

use std::collections::HashSet;

use fnc2_ag::{AttrId, AttrKind, Grammar, LocalId, ONode, ProductionId};

use crate::diag::{Code, Diagnostic, Span};

/// The liveness fixpoint result, exposed for the fuzz oracle.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// `live[attr]` — the attribute (phylum-level) can reach a root output.
    pub live_attrs: Vec<bool>,
    /// Live production-locals.
    pub live_locals: HashSet<(ProductionId, LocalId)>,
    /// `read[attr]` — some rule reads the attribute.
    pub read_attrs: Vec<bool>,
}

impl Liveness {
    /// Computes the backward-liveness fixpoint of `grammar`, seeded from
    /// the root phylum's synthesized attributes.
    pub fn compute(grammar: &Grammar) -> Liveness {
        let mut live_attrs = vec![false; grammar.attr_count()];
        let mut live_locals: HashSet<(ProductionId, LocalId)> = HashSet::new();
        let mut read_attrs = vec![false; grammar.attr_count()];

        for p in grammar.productions() {
            for rule in grammar.production(p).rules() {
                for n in rule.read_nodes() {
                    if let ONode::Attr(o) = n {
                        read_attrs[o.attr.index()] = true;
                    }
                }
            }
        }

        for a in grammar.synthesized(grammar.root()) {
            live_attrs[a.index()] = true;
        }
        let mut changed = true;
        while changed {
            changed = false;
            for p in grammar.productions() {
                for rule in grammar.production(p).rules() {
                    let target_live = match rule.target() {
                        ONode::Attr(o) => live_attrs[o.attr.index()],
                        ONode::Local(l) => live_locals.contains(&(p, l)),
                    };
                    if !target_live {
                        continue;
                    }
                    for n in rule.read_nodes() {
                        match n {
                            ONode::Attr(o) => {
                                if !live_attrs[o.attr.index()] {
                                    live_attrs[o.attr.index()] = true;
                                    changed = true;
                                }
                            }
                            ONode::Local(l) => {
                                if live_locals.insert((p, l)) {
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
        }
        Liveness {
            live_attrs,
            live_locals,
            read_attrs,
        }
    }

    /// Attributes no rule reads and which are not root outputs — the
    /// `L001` set, as attribute ids.
    pub fn unused_attrs(&self, grammar: &Grammar) -> Vec<AttrId> {
        let root_outputs: HashSet<AttrId> =
            grammar.synthesized(grammar.root()).into_iter().collect();
        (0..grammar.attr_count() as u32)
            .map(AttrId::from_raw)
            .filter(|a| !self.read_attrs[a.index()] && !root_outputs.contains(a))
            .collect()
    }

    /// `(production, rule index)` pairs whose target is not live — the
    /// `L002` set.
    pub fn dead_rules(&self, grammar: &Grammar) -> Vec<(ProductionId, u32)> {
        let mut out = Vec::new();
        for p in grammar.productions() {
            for (i, rule) in grammar.production(p).rules().iter().enumerate() {
                let live = match rule.target() {
                    ONode::Attr(o) => self.live_attrs[o.attr.index()],
                    ONode::Local(l) => self.live_locals.contains(&(p, l)),
                };
                if !live {
                    out.push((p, i as u32));
                }
            }
        }
        out
    }
}

/// Full attribute name `Phylum.attr`.
pub(crate) fn attr_name(grammar: &Grammar, a: AttrId) -> String {
    let info = grammar.attr(a);
    format!("{}.{}", grammar.phylum(info.phylum()).name(), info.name())
}

/// Runs the liveness lints, appending `L001`/`L002` diagnostics.
pub fn lint_liveness(grammar: &Grammar, live: &Liveness, diags: &mut Vec<Diagnostic>) {
    for a in live.unused_attrs(grammar) {
        let name = attr_name(grammar, a);
        let kind = match grammar.attr(a).kind() {
            AttrKind::Synthesized => "synthesized",
            AttrKind::Inherited => "inherited",
        };
        diags.push(
            Diagnostic::new(
                Code::UnusedAttribute,
                Span::anchor(name.clone()),
                format!("attribute `{name}` is never read by any semantic rule"),
            )
            .with_note(format!(
                "declared {kind} of `{}`; no evaluator will ever fetch its value",
                grammar.phylum(grammar.attr(a).phylum()).name()
            )),
        );
    }
    for (p, rule_ix) in live.dead_rules(grammar) {
        let prod = grammar.production(p);
        let target = prod.rules()[rule_ix as usize].target();
        let target_name = grammar.occ_name(p, target);
        diags.push(
            Diagnostic::new(
                Code::DeadRule,
                Span::anchor(format!("production {}, rule {}", prod.name(), rule_ix)),
                format!(
                    "rule defining `{target_name}` in production `{}` cannot contribute \
                     to a root output",
                    prod.name()
                ),
            )
            .with_note(
                "demand-driven evaluation of the root outputs never fires this rule".to_string(),
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{GrammarBuilder, Occ, Value};

    use super::*;

    /// S.out is the root output; S.junk is read by nobody; A.scratch is
    /// read only by the rule defining S.junk (dead chain).
    fn degraded() -> Grammar {
        let mut g = GrammarBuilder::new("degraded");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let junk = g.syn(s, "junk");
        let scratch = g.syn(a, "scratch");
        let v = g.syn(a, "v");
        let mk = g.production("mk", s, &[a]);
        g.copy(mk, Occ::lhs(out), Occ::new(1, v));
        g.copy(mk, Occ::lhs(junk), Occ::new(1, scratch));
        let leaf = g.production("leaf", a, &[]);
        g.constant(leaf, Occ::lhs(scratch), Value::Int(1));
        g.constant(leaf, Occ::lhs(v), Value::Int(2));
        g.finish().unwrap()
    }

    #[test]
    fn unused_and_dead_are_found() {
        let g = degraded();
        let live = Liveness::compute(&g);
        let unused: Vec<String> = live
            .unused_attrs(&g)
            .into_iter()
            .map(|a| attr_name(&g, a))
            .collect();
        // S.junk is never read (it is a root *output*? no — it IS syn of
        // root, so it is exempt). A.scratch IS read (by the junk rule), so
        // the unused set is empty here.
        assert!(unused.is_empty(), "{unused:?}");
        // But the junk/scratch chain is dead: junk is a root output, so it
        // is live; scratch feeds it, so nothing is dead either.
        assert!(live.dead_rules(&g).is_empty());
    }

    /// A non-output junk attribute: S.w is unused, and the rule defining
    /// it is dead. The root is a *different* phylum so w is not exempt.
    #[test]
    fn non_output_junk_is_unused_and_its_rules_dead() {
        let mut gb = GrammarBuilder::new("junk");
        let r = gb.phylum("R");
        let rout = gb.syn(r, "out");
        let s2 = gb.phylum("S");
        let sout = gb.syn(s2, "v");
        let sw = gb.syn(s2, "w");
        let top = gb.production("top", r, &[s2]);
        gb.copy(top, Occ::lhs(rout), Occ::new(1, sout));
        let leaf2 = gb.production("leaf", s2, &[]);
        gb.constant(leaf2, Occ::lhs(sout), Value::Int(1));
        gb.constant(leaf2, Occ::lhs(sw), Value::Int(2));
        let g2 = gb.finish().unwrap();
        let live = Liveness::compute(&g2);
        let unused = live.unused_attrs(&g2);
        assert_eq!(unused.len(), 1);
        assert_eq!(attr_name(&g2, unused[0]), "S.w");
        let dead = live.dead_rules(&g2);
        assert_eq!(dead.len(), 1, "{dead:?}");
        let (p, _) = dead[0];
        assert_eq!(g2.production(p).name(), "leaf");
    }

    #[test]
    fn diagnostics_name_the_entities() {
        let mut gb = GrammarBuilder::new("t");
        let r = gb.phylum("R");
        let rout = gb.syn(r, "out");
        let s2 = gb.phylum("S");
        let sv = gb.syn(s2, "v");
        let sw = gb.syn(s2, "w");
        let top = gb.production("top", r, &[s2]);
        gb.copy(top, Occ::lhs(rout), Occ::new(1, sv));
        let leaf2 = gb.production("leaf", s2, &[]);
        gb.constant(leaf2, Occ::lhs(sv), Value::Int(1));
        gb.constant(leaf2, Occ::lhs(sw), Value::Int(2));
        let g = gb.finish().unwrap();
        let live = Liveness::compute(&g);
        let mut diags = Vec::new();
        lint_liveness(&g, &live, &mut diags);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags
            .iter()
            .any(|d| d.code == Code::UnusedAttribute && d.message.contains("`S.w`")));
        assert!(diags
            .iter()
            .any(|d| d.code == Code::DeadRule && d.message.contains("`leaf`")));
    }
}
