//! # fnc2-lint — grammar-level static analyses and diagnostics
//!
//! FNC-2's generator front rejects circular grammars and reports the
//! class ladder; this crate grows that front into a proper *lint pass*
//! over the lowered AG (paper §3.1's "interactive circularity trace
//! system", generalized):
//!
//! * **liveness** ([`Liveness`]) — unused attributes (`L001`) and dead
//!   semantic rules (`L002`), by backward reachability from the root
//!   outputs;
//! * **usefulness** ([`Usefulness`]) — unreachable productions (`L003`)
//!   and underivable phyla (`L004`);
//! * **copy chains** ([`CopyGraph`]) — attributes that are pure copy
//!   plumbing (`L005`);
//! * **circularity witnesses** ([`lint_circularity`],
//!   [`verify_witness`]) — when an SNC/DNC/OAG test fails, the concrete
//!   cycle is rendered edge by edge and re-verified against the
//!   production's rules and the induced relations (`L010`–`L012`).
//!
//! Everything is surfaced through the severity-graded, stable-ordered
//! [`Diagnostic`] framework: reports sort by `(code, span, message)` and
//! render identically — byte for byte — across runs, in both text and
//! JSON. Front-end findings (`L100`–`L102`) are threaded through the same
//! framework by the driver crate.
//!
//! The verdicts are deliberately *sound* against the dynamic semantics,
//! and the fuzz harness enforces this: an attribute flagged `L001` is
//! never read by the exhaustive evaluator, a rule flagged `L002` never
//! fires under demand-driven evaluation of the root outputs, and every
//! circularity witness replays as a real dependency cycle.
//!
//! ```
//! use fnc2_ag::{GrammarBuilder, Occ, Value};
//! use fnc2_lint::{lint_grammar, Code};
//!
//! let mut g = GrammarBuilder::new("t");
//! let r = g.phylum("R");
//! let out = g.syn(r, "out");
//! let junk = g.phylum("S");
//! let w = g.syn(junk, "w");
//! let v = g.syn(junk, "v");
//! let top = g.production("top", r, &[junk]);
//! g.copy(top, Occ::lhs(out), Occ::new(1, v));
//! let leaf = g.production("leaf", junk, &[]);
//! g.constant(leaf, Occ::lhs(v), Value::Int(1));
//! g.constant(leaf, Occ::lhs(w), Value::Int(2));
//! let grammar = g.finish().unwrap();
//!
//! let report = lint_grammar(&grammar, None);
//! assert_eq!(report.with_code(Code::UnusedAttribute).count(), 1); // S.w
//! assert_eq!(report.with_code(Code::DeadRule).count(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod circ;
mod copies;
mod diag;
mod live;
mod reach;

use fnc2_ag::Grammar;
use fnc2_analysis::Classification;
use fnc2_obs::{Key, Recorder};

pub use circ::{lint_circularity, verify_witness, EdgeJustification, WitnessKind};
pub use copies::{lint_copies, CopyGraph};
pub use diag::{sort_diagnostics, Code, Diagnostic, LintReport, Severity, Span};
pub use live::{lint_liveness, Liveness};
pub use reach::{lint_usefulness, Usefulness};

/// Runs every grammar-level lint over `grammar`.
///
/// Pass the cascade's [`Classification`] to also get the circularity
/// lints (`L010`–`L012`); without it only the purely structural lints
/// run. The returned report is canonically sorted.
pub fn lint_grammar(grammar: &Grammar, class: Option<&Classification>) -> LintReport {
    let mut diags = Vec::new();
    let live = Liveness::compute(grammar);
    lint_liveness(grammar, &live, &mut diags);
    let useful = Usefulness::compute(grammar);
    lint_usefulness(grammar, &useful, &mut diags);
    let copies = CopyGraph::compute(grammar);
    lint_copies(grammar, &copies, &mut diags);
    if let Some(class) = class {
        lint_circularity(grammar, class, &mut diags);
    }
    LintReport::new(diags)
}

/// [`lint_grammar`], feeding the `lint.*` counters of `rec`.
pub fn lint_grammar_recorded<R: Recorder>(
    grammar: &Grammar,
    class: Option<&Classification>,
    rec: &mut R,
) -> LintReport {
    let report = lint_grammar(grammar, class);
    record_report(&report, rec);
    report
}

/// Feeds a report's tallies into the `lint.*` counters of `rec`. Called
/// by [`lint_grammar_recorded`]; drivers that assemble reports from other
/// sources (front-end failures, cached artifacts) call it directly.
pub fn record_report<R: Recorder>(report: &LintReport, rec: &mut R) {
    rec.count(Key::LintDiags, report.diags.len() as u64);
    rec.count(Key::LintErrors, report.errors() as u64);
    rec.count(Key::LintWarnings, report.warnings() as u64);
    let witnesses = report
        .diags
        .iter()
        .filter(|d| matches!(d.code, Code::NotSnc | Code::NotDnc | Code::NotOag))
        .count();
    rec.count(Key::LintWitnesses, witnesses as u64);
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{GrammarBuilder, Occ, Value};
    use fnc2_analysis::{classify, Inclusion};
    use fnc2_obs::Obs;

    use super::*;

    #[test]
    fn recorded_lint_feeds_counters() {
        let mut g = GrammarBuilder::new("circ");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let i = g.inh(a, "i");
        let sy = g.syn(a, "s");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(out), Occ::new(1, sy));
        g.copy(root, Occ::new(1, i), Occ::new(1, sy));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(sy), Occ::lhs(i));
        let g = g.finish().unwrap();
        let class = classify(&g, 1, Inclusion::Long).unwrap();

        let mut obs = Obs::new();
        let report = lint_grammar_recorded(&g, Some(&class), &mut obs);
        assert!(!report.is_clean());
        assert_eq!(
            obs.metrics.counter("lint.diagnostics"),
            report.diags.len() as u64
        );
        assert_eq!(obs.metrics.counter("lint.errors"), report.errors() as u64);
        assert_eq!(obs.metrics.counter("lint.witnesses"), 1);
    }

    #[test]
    fn clean_grammar_lints_clean() {
        let mut g = GrammarBuilder::new("count");
        let s = g.phylum("S");
        let n = g.syn(s, "n");
        let leaf = g.production("leaf", s, &[]);
        g.constant(leaf, Occ::lhs(n), Value::Int(0));
        let node = g.production("node", s, &[s]);
        g.func("succ", 1, |a| Value::Int(a[0].as_int() + 1));
        g.call(node, Occ::lhs(n), "succ", [Occ::new(1, n).into()]);
        let g = g.finish().unwrap();
        let class = classify(&g, 1, Inclusion::Long).unwrap();
        let report = lint_grammar(&g, Some(&class));
        assert!(report.is_clean(), "{}", report.render_text());
    }
}
