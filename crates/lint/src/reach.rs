//! Useless-symbol analysis: unreachable productions (`L003`) and
//! underivable phyla (`L004`).
//!
//! Classic grammar hygiene, transposed to the abstract AG: a phylum is
//! *derivable* when at least one of its productions has only derivable
//! RHS phyla (least fixpoint — the same bottom-up height argument as the
//! pipeline's smoke-tree builder), and a phylum is *reachable* when the
//! root derives it. A production is useless when its LHS is unreachable
//! or any RHS phylum is underivable: no derivation tree can ever contain
//! it, so the evaluators can never visit it.

use fnc2_ag::{Grammar, PhylumId};

use crate::diag::{Code, Diagnostic, Span};

/// Reachability/derivability facts, exposed for the fuzz oracle.
#[derive(Clone, Debug)]
pub struct Usefulness {
    /// `derivable[ph]` — the phylum derives at least one finite tree.
    pub derivable: Vec<bool>,
    /// `reachable[ph]` — the root derives the phylum.
    pub reachable: Vec<bool>,
}

impl Usefulness {
    /// Computes both fixpoints for `grammar`.
    pub fn compute(grammar: &Grammar) -> Usefulness {
        let mut derivable = vec![false; grammar.phylum_count()];
        let mut changed = true;
        while changed {
            changed = false;
            for p in grammar.productions() {
                let prod = grammar.production(p);
                if derivable[prod.lhs().index()] {
                    continue;
                }
                if prod.rhs().iter().all(|ph| derivable[ph.index()]) {
                    derivable[prod.lhs().index()] = true;
                    changed = true;
                }
            }
        }

        let mut reachable = vec![false; grammar.phylum_count()];
        let mut work = vec![grammar.root()];
        reachable[grammar.root().index()] = true;
        while let Some(ph) = work.pop() {
            for &p in grammar.phylum(ph).productions() {
                for &child in grammar.production(p).rhs() {
                    if !reachable[child.index()] {
                        reachable[child.index()] = true;
                        work.push(child);
                    }
                }
            }
        }
        Usefulness {
            derivable,
            reachable,
        }
    }

    /// True when the production can appear in a derivation tree.
    pub fn production_useful(&self, grammar: &Grammar, p: fnc2_ag::ProductionId) -> bool {
        let prod = grammar.production(p);
        self.reachable[prod.lhs().index()] && prod.rhs().iter().all(|ph| self.derivable[ph.index()])
    }

    /// Phyla that derive no finite tree, in id order.
    pub fn underivable(&self, grammar: &Grammar) -> Vec<PhylumId> {
        grammar
            .phyla()
            .filter(|ph| !self.derivable[ph.index()])
            .collect()
    }
}

/// Runs the usefulness lints, appending `L003`/`L004` diagnostics.
pub fn lint_usefulness(grammar: &Grammar, useful: &Usefulness, diags: &mut Vec<Diagnostic>) {
    for ph in useful.underivable(grammar) {
        let name = grammar.phylum(ph).name();
        diags.push(
            Diagnostic::new(
                Code::UnderivablePhylum,
                Span::anchor(name),
                format!("phylum `{name}` derives no finite tree"),
            )
            .with_note("every production of this phylum mentions an underivable phylum"),
        );
    }
    for p in grammar.productions() {
        if useful.production_useful(grammar, p) {
            continue;
        }
        let prod = grammar.production(p);
        let name = prod.name();
        let reason = if !useful.reachable[prod.lhs().index()] {
            format!(
                "its left-hand side `{}` is unreachable from the root `{}`",
                grammar.phylum(prod.lhs()).name(),
                grammar.phylum(grammar.root()).name()
            )
        } else {
            "a right-hand-side phylum derives no finite tree".to_string()
        };
        diags.push(
            Diagnostic::new(
                Code::UnreachableProduction,
                Span::anchor(format!("production {name}")),
                format!("production `{name}` can appear in no derivation tree"),
            )
            .with_note(reason),
        );
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{GrammarBuilder, Occ, Value};

    use super::*;

    #[test]
    fn orphan_phylum_and_bottomless_recursion_are_flagged() {
        let mut g = GrammarBuilder::new("useless");
        let s = g.phylum("S");
        let orphan = g.phylum("Orphan"); // never on any RHS reachable from S
        let pit = g.phylum("Pit"); // only derives itself
        let v = g.syn(s, "v");
        let ov = g.syn(orphan, "v");
        let pv = g.syn(pit, "v");
        let leaf = g.production("leaf", s, &[]);
        g.constant(leaf, Occ::lhs(v), Value::Int(1));
        let oleaf = g.production("oleaf", orphan, &[]);
        g.constant(oleaf, Occ::lhs(ov), Value::Int(2));
        let spin = g.production("spin", pit, &[pit]);
        g.copy(spin, Occ::lhs(pv), Occ::new(1, pv));
        let grammar = g.finish().unwrap();

        let useful = Usefulness::compute(&grammar);
        assert!(useful.derivable[s.index()]);
        assert!(useful.derivable[orphan.index()]);
        assert!(!useful.derivable[pit.index()]);
        assert!(useful.reachable[s.index()]);
        assert!(!useful.reachable[orphan.index()]);

        let mut diags = Vec::new();
        lint_usefulness(&grammar, &useful, &mut diags);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::UnderivablePhylum && d.message.contains("`Pit`")));
        assert!(diags
            .iter()
            .any(|d| d.code == Code::UnreachableProduction && d.message.contains("`oleaf`")));
        assert!(diags
            .iter()
            .any(|d| d.code == Code::UnreachableProduction && d.message.contains("`spin`")));
    }

    #[test]
    fn clean_grammar_has_no_usefulness_findings() {
        let mut g = GrammarBuilder::new("clean");
        let s = g.phylum("S");
        let v = g.syn(s, "v");
        let leaf = g.production("leaf", s, &[]);
        g.constant(leaf, Occ::lhs(v), Value::Int(0));
        let node = g.production("node", s, &[s]);
        g.copy(node, Occ::lhs(v), Occ::new(1, v));
        let grammar = g.finish().unwrap();
        let useful = Usefulness::compute(&grammar);
        let mut diags = Vec::new();
        lint_usefulness(&grammar, &useful, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
