//! The severity-graded, stable-ordered diagnostic framework.
//!
//! Every finding of the lint pass — and every front-end finding threaded
//! through it — is a [`Diagnostic`]: a stable code, a severity, a span
//! (source position and/or grammar-entity anchor), a one-line message,
//! and related notes. Diagnostics sort deterministically by
//! `(code, span, message)` so text and JSON reports are byte-stable
//! across runs.

use std::cmp::Ordering;
use std::fmt;

use fnc2_obs::Json;

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The grammar is usable, but something is off.
    Warning,
    /// The grammar is rejected (circularity, well-formedness).
    Error,
}

impl Severity {
    /// Lowercase tag used in reports.
    pub fn tag(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses a report tag back into a severity.
    pub fn from_tag(tag: &str) -> Option<Severity> {
        match tag {
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// The stable lint-code vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// `L001` — an attribute no semantic rule ever reads.
    UnusedAttribute,
    /// `L002` — a semantic rule whose target cannot reach a root output.
    DeadRule,
    /// `L003` — a production that can appear in no derivation tree.
    UnreachableProduction,
    /// `L004` — a phylum that derives no finite tree.
    UnderivablePhylum,
    /// `L005` — a pure copy-propagation chain across attributes.
    CopyChain,
    /// `L010` — the grammar is not strongly non-circular (rejected).
    NotSnc,
    /// `L011` — SNC but not doubly non-circular (no start-anywhere).
    NotDnc,
    /// `L012` — SNC/DNC but not OAG within the allowed ladder.
    NotOag,
    /// `L100` — a well-formedness violation from the front end
    /// (missing/duplicate rules after auto-copy insertion).
    WellFormedness,
    /// `L101` — a front-end semantic (type/resolution) error.
    FrontCheck,
    /// `L102` — a front-end syntax error.
    FrontSyntax,
}

impl Code {
    /// Every code, in code order.
    pub const ALL: [Code; 11] = [
        Code::UnusedAttribute,
        Code::DeadRule,
        Code::UnreachableProduction,
        Code::UnderivablePhylum,
        Code::CopyChain,
        Code::NotSnc,
        Code::NotDnc,
        Code::NotOag,
        Code::WellFormedness,
        Code::FrontCheck,
        Code::FrontSyntax,
    ];

    /// The stable report code.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnusedAttribute => "L001",
            Code::DeadRule => "L002",
            Code::UnreachableProduction => "L003",
            Code::UnderivablePhylum => "L004",
            Code::CopyChain => "L005",
            Code::NotSnc => "L010",
            Code::NotDnc => "L011",
            Code::NotOag => "L012",
            Code::WellFormedness => "L100",
            Code::FrontCheck => "L101",
            Code::FrontSyntax => "L102",
        }
    }

    /// Parses a stable report code (`"L001"`) back into a [`Code`].
    pub fn from_code_str(s: &str) -> Option<Code> {
        Code::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    /// The code's default severity.
    pub fn severity(self) -> Severity {
        match self {
            Code::UnusedAttribute
            | Code::DeadRule
            | Code::UnreachableProduction
            | Code::UnderivablePhylum
            | Code::CopyChain
            | Code::NotDnc
            | Code::NotOag => Severity::Warning,
            Code::NotSnc | Code::WellFormedness | Code::FrontCheck | Code::FrontSyntax => {
                Severity::Error
            }
        }
    }
}

/// Where a diagnostic points: an optional source position (front-end
/// findings) and a grammar-entity anchor (grammar-level findings).
///
/// Spans order by `(line, col, anchor)`; position `0:0` means "no source
/// position" and sorts first.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// 1-based source line, or 0 when the finding has no source position.
    pub line: u32,
    /// 1-based source column, or 0.
    pub col: u32,
    /// Grammar-entity anchor, e.g. `Seq.length` or `production pair`.
    pub anchor: String,
}

impl Span {
    /// A span anchored to a grammar entity, with no source position.
    pub fn anchor(anchor: impl Into<String>) -> Span {
        Span {
            line: 0,
            col: 0,
            anchor: anchor.into(),
        }
    }

    /// A span at a source position.
    pub fn at(line: u32, col: u32, anchor: impl Into<String>) -> Span {
        Span {
            line,
            col,
            anchor: anchor.into(),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{}:{}", self.line, self.col)?;
            if !self.anchor.is_empty() {
                write!(f, " ({})", self.anchor)?;
            }
            Ok(())
        } else {
            write!(f, "{}", self.anchor)
        }
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Severity (defaults to the code's, but `--deny warnings` style
    /// promotion happens at render time, not here).
    pub severity: Severity,
    /// Where the finding points.
    pub span: Span,
    /// The one-line message.
    pub message: String,
    /// Related notes (e.g. the cycle edges of a circularity witness).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity and no notes.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Appends a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// The deterministic ordering key: code, then span, then message.
    fn sort_key(&self) -> (&'static str, &Span, &str) {
        (self.code.as_str(), &self.span, &self.message)
    }

    /// This diagnostic as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("code", Json::str(self.code.as_str())),
            ("severity", Json::str(self.severity.tag())),
            (
                "span",
                Json::obj([
                    ("line", Json::Int(self.span.line as i64)),
                    ("col", Json::Int(self.span.col as i64)),
                    ("anchor", Json::str(self.span.anchor.clone())),
                ]),
            ),
            ("message", Json::str(self.message.clone())),
            (
                "notes",
                Json::Arr(self.notes.iter().map(|n| Json::str(n.as_str())).collect()),
            ),
        ])
    }

    /// Renders the diagnostic as compiler-style text.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "{}[{}]: {}\n  --> {}\n",
            self.severity.tag(),
            self.code.as_str(),
            self.message,
            self.span
        );
        for note in &self.notes {
            out.push_str("  note: ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }
}

/// Sorts diagnostics into the canonical deterministic order:
/// code, then span, then message.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        a.sort_key()
            .cmp(&b.sort_key())
            .then_with(|| a.notes.cmp(&b.notes))
            .then(Ordering::Equal)
    });
}

/// The outcome of a lint run: the sorted findings plus tallies.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// The findings, in canonical order.
    pub diags: Vec<Diagnostic>,
}

impl LintReport {
    /// Wraps and canonically sorts `diags`.
    pub fn new(mut diags: Vec<Diagnostic>) -> LintReport {
        sort_diagnostics(&mut diags);
        LintReport { diags }
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// True when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// All findings of `code`.
    pub fn with_code(&self, code: Code) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(move |d| d.code == code)
    }

    /// The report as a JSON object (deterministic: findings are sorted).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "diagnostics",
                Json::Arr(self.diags.iter().map(Diagnostic::to_json).collect()),
            ),
            ("errors", Json::Int(self.errors() as i64)),
            ("warnings", Json::Int(self.warnings() as i64)),
        ])
    }

    /// The report as compiler-style text, ending with a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.render_text());
        }
        out.push_str(&format!(
            "lint: {} error(s), {} warning(s)\n",
            self.errors(),
            self.warnings()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_ordered() {
        let strs: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
        let mut sorted = strs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(strs, sorted, "codes must be unique and in code order");
    }

    #[test]
    fn sorting_is_by_code_then_span_then_message() {
        let mk =
            |code: Code, anchor: &str, msg: &str| Diagnostic::new(code, Span::anchor(anchor), msg);
        let mut diags = vec![
            mk(Code::CopyChain, "b", "z"),
            mk(Code::UnusedAttribute, "c", "y"),
            mk(Code::CopyChain, "b", "a"),
            mk(Code::CopyChain, "a", "z"),
            mk(Code::UnusedAttribute, "c", "x"),
        ];
        sort_diagnostics(&mut diags);
        let keys: Vec<(&str, &str, &str)> = diags
            .iter()
            .map(|d| (d.code.as_str(), d.span.anchor.as_str(), d.message.as_str()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("L001", "c", "x"),
                ("L001", "c", "y"),
                ("L005", "a", "z"),
                ("L005", "b", "a"),
                ("L005", "b", "z"),
            ]
        );
    }

    #[test]
    fn text_and_json_are_deterministic() {
        let d = Diagnostic::new(
            Code::UnusedAttribute,
            Span::anchor("S.n"),
            "attribute `S.n` is never read",
        )
        .with_note("declared synthesized of S");
        let r1 = LintReport::new(vec![d.clone()]);
        let r2 = LintReport::new(vec![d]);
        assert_eq!(r1.to_json().to_string(), r2.to_json().to_string());
        assert_eq!(r1.render_text(), r2.render_text());
        assert!(r1.render_text().contains("warning[L001]"));
        assert!(r1.to_json().to_string().contains("\"code\":\"L001\""));
    }

    #[test]
    fn severity_tags_round_trip() {
        for s in [Severity::Warning, Severity::Error] {
            assert_eq!(Severity::from_tag(s.tag()), Some(s));
        }
        assert_eq!(Severity::from_tag("fatal"), None);
    }
}
