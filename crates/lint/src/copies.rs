//! Copy-chain analysis (`L005`): attributes whose value is only ever a
//! copy of another attribute.
//!
//! FNC-2's transport machinery (and this reproduction's auto-copy
//! insertion) makes pure copy rules cheap, but an attribute *every* one
//! of whose defining rules is a copy of the same other attribute is pure
//! plumbing: its value is always that attribute's value, hop by hop. The
//! lint follows unique-copy edges to their origin and reports chains of
//! two or more hops — the longer the chain, the more stores and visit
//! instructions the grammar spends moving a value that never changes.

use std::collections::BTreeMap;

use fnc2_ag::{Arg, AttrId, Grammar, ONode, RuleBody};

use crate::diag::{Code, Diagnostic, Span};
use crate::live::attr_name;

/// Per-attribute copy facts, exposed for tests and the fuzz oracle.
#[derive(Clone, Debug, Default)]
pub struct CopyGraph {
    /// `edges[a] = b` — every rule defining `a` is a pure copy of `b`.
    pub edges: BTreeMap<AttrId, AttrId>,
}

impl CopyGraph {
    /// Builds the unique-copy-source graph of `grammar`.
    ///
    /// An edge `a -> b` exists when `a` has at least one defining rule,
    /// every defining rule of `a` is `Copy` of an attribute occurrence,
    /// and all those occurrences name the same attribute `b != a`.
    pub fn compute(grammar: &Grammar) -> CopyGraph {
        // For each attribute: None = no defining rule seen yet;
        // Some(None) = disqualified; Some(Some(b)) = all copies of b so far.
        let mut src: Vec<Option<Option<AttrId>>> = vec![None; grammar.attr_count()];
        for p in grammar.productions() {
            for rule in grammar.production(p).rules() {
                let ONode::Attr(target) = rule.target() else {
                    continue;
                };
                let a = target.attr.index();
                let this_src = match rule.body() {
                    RuleBody::Copy(Arg::Node(ONode::Attr(o))) if o.attr != target.attr => {
                        Some(o.attr)
                    }
                    _ => None,
                };
                src[a] = Some(match (src[a], this_src) {
                    (None, s) => s,
                    (Some(Some(prev)), Some(next)) if prev == next => Some(prev),
                    _ => None,
                });
            }
        }
        let edges = src
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.flatten().map(|b| (AttrId::from_raw(i as u32), b)))
            .collect();
        CopyGraph { edges }
    }

    /// Maximal chains of unique-copy edges with at least `min_hops` hops,
    /// each as the sequence of attributes from consumer to origin.
    ///
    /// A chain starts at an attribute that is not itself the source of a
    /// unique-copy edge (so every maximal chain is reported exactly once)
    /// and follows edges until an attribute with no edge — or, for copy
    /// cycles, until the walk would revisit its own start.
    pub fn chains(&self, min_hops: usize) -> Vec<Vec<AttrId>> {
        let mut is_source = std::collections::HashSet::new();
        for b in self.edges.values() {
            is_source.insert(*b);
        }
        let mut out = Vec::new();
        for a in self.edges.keys() {
            if is_source.contains(a) {
                continue;
            }
            let mut chain = vec![*a];
            let mut cur = *a;
            while let Some(&next) = self.edges.get(&cur) {
                if chain.contains(&next) {
                    break; // copy cycle; circularity lints own that story
                }
                chain.push(next);
                cur = next;
            }
            if chain.len() > min_hops {
                out.push(chain);
            }
        }
        out
    }
}

/// Runs the copy-chain lint, appending `L005` diagnostics.
pub fn lint_copies(grammar: &Grammar, copies: &CopyGraph, diags: &mut Vec<Diagnostic>) {
    for chain in copies.chains(2) {
        let head = attr_name(grammar, chain[0]);
        let rendered: Vec<String> = chain.iter().map(|&a| attr_name(grammar, a)).collect();
        diags.push(
            Diagnostic::new(
                Code::CopyChain,
                Span::anchor(head.clone()),
                format!(
                    "attribute `{head}` is pure copy plumbing: {}",
                    rendered.join(" <- ")
                ),
            )
            .with_note(format!(
                "{} hop(s); every defining rule along the chain is a copy, so the value \
                 originates at `{}`",
                chain.len() - 1,
                rendered.last().unwrap()
            )),
        );
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{GrammarBuilder, Occ, Value};

    use super::*;

    /// R.out <- S.mid <- T.v, with T.v computed from a constant.
    #[test]
    fn two_hop_chain_is_reported() {
        let mut g = GrammarBuilder::new("chain");
        let r = g.phylum("R");
        let s = g.phylum("S");
        let t = g.phylum("T");
        let out = g.syn(r, "out");
        let mid = g.syn(s, "mid");
        let v = g.syn(t, "v");
        let top = g.production("top", r, &[s]);
        g.copy(top, Occ::lhs(out), Occ::new(1, mid));
        let step = g.production("step", s, &[t]);
        g.copy(step, Occ::lhs(mid), Occ::new(1, v));
        let leaf = g.production("leaf", t, &[]);
        g.constant(leaf, Occ::lhs(v), Value::Int(7));
        let grammar = g.finish().unwrap();

        let copies = CopyGraph::compute(&grammar);
        assert_eq!(copies.edges.len(), 2);
        let chains = copies.chains(2);
        assert_eq!(chains.len(), 1, "{chains:?}");
        assert_eq!(chains[0], vec![out, mid, v]);

        let mut diags = Vec::new();
        lint_copies(&grammar, &copies, &mut diags);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("R.out <- S.mid <- T.v"));
    }

    /// A single copy hop is idiomatic transport, not a finding; an
    /// attribute defined by copies of *different* sources is not pure
    /// plumbing either.
    #[test]
    fn single_hops_and_mixed_sources_are_not_flagged() {
        let mut g = GrammarBuilder::new("ok");
        let r = g.phylum("R");
        let s = g.phylum("S");
        let out = g.syn(r, "out");
        let a = g.syn(s, "a");
        let b = g.syn(s, "b");
        let top = g.production("top", r, &[s]);
        g.copy(top, Occ::lhs(out), Occ::new(1, a));
        let alt = g.production("alt", r, &[s]);
        g.copy(alt, Occ::lhs(out), Occ::new(1, b));
        let leaf = g.production("leaf", s, &[]);
        g.constant(leaf, Occ::lhs(a), Value::Int(1));
        g.constant(leaf, Occ::lhs(b), Value::Int(2));
        let grammar = g.finish().unwrap();

        let copies = CopyGraph::compute(&grammar);
        assert!(copies.edges.is_empty(), "{:?}", copies.edges);
        let mut diags = Vec::new();
        lint_copies(&grammar, &copies, &mut diags);
        assert!(diags.is_empty());
    }
}
