//! Circularity diagnostics (`L010`/`L011`/`L012`) and the witness
//! verifier.
//!
//! When a class test of the cascade fails, the analysis crate extracts a
//! [`CircWitness`] — a concrete cycle of attribute occurrences inside one
//! production's pasted dependency graph. This module renders witnesses as
//! diagnostics (one note per cycle edge, `explain`-style) and — the
//! soundness half — *re-verifies* them: every edge of a reported cycle
//! must be justified by a semantic rule of the production or by an
//! induced relation (`IO` below, `OI` above, `DS` for the ordered test)
//! the failed test actually computed. A witness that verifies is not a
//! fixpoint artifact; for grammars that are truly circular the dynamic
//! evaluator reproduces the cycle at run time (the fuzz oracle checks
//! this).

use fnc2_ag::{Grammar, ONode};
use fnc2_analysis::{explain, AttrIndex, CircWitness, Classification};

use crate::diag::{Code, Diagnostic, Span};

/// How one edge of a verified witness cycle is justified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeJustification {
    /// A semantic rule of the production defines the edge head from the
    /// edge tail.
    Rule,
    /// The edge is an induced (`IO`/`OI`/`DS`) pair at one occurrence
    /// position.
    Induced,
    /// An ordered-test edge contributed by the candidate total order of
    /// the phylum (only admissible for `L012` witnesses — the failing
    /// order is not recoverable after the test rejects it).
    Order,
}

/// Which failed test produced a witness, selecting the admissible
/// induced relations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WitnessKind {
    /// SNC failure: `D(p)` ∪ pasted `IO` on RHS positions.
    Snc,
    /// DNC failure: additionally `OI` pasted on the LHS.
    Dnc,
    /// OAG failure: `DS` pasted on every position, plus order edges.
    Oag,
}

/// Checks that `witness` is a well-formed, fully justified cycle.
///
/// Returns one justification per cycle edge, or a description of the
/// first unjustifiable edge. A one-node witness is the ordered test's
/// degenerate fallback (the `DS` cycle shows in no single production's
/// pasted graph); it is accepted for [`WitnessKind::Oag`] only.
pub fn verify_witness(
    grammar: &Grammar,
    class: &Classification,
    kind: WitnessKind,
    witness: &CircWitness,
) -> Result<Vec<EdgeJustification>, String> {
    let p = witness.production;
    if p.index() >= grammar.production_count() {
        return Err(format!("witness names unknown production {p}"));
    }
    if witness.cycle.len() == 1 {
        return if kind == WitnessKind::Oag {
            Ok(Vec::new())
        } else {
            Err("one-node witness outside the ordered test".to_string())
        };
    }
    if witness.cycle.len() < 3 {
        return Err(format!(
            "cycle of {} node(s) cannot close",
            witness.cycle.len()
        ));
    }
    if witness.cycle.first() != witness.cycle.last() {
        return Err("cycle does not return to its first node".to_string());
    }
    let ix = AttrIndex::new(grammar);
    let prod = grammar.production(p);
    let mut justs = Vec::with_capacity(witness.cycle.len() - 1);
    for pair in witness.cycle.windows(2) {
        let (from, to) = (pair[0], pair[1]);
        // A semantic rule of p justifies any edge shape.
        if let Some(rule) = grammar.rule_for(p, to) {
            if rule.read_nodes().any(|n| n == from) {
                justs.push(EdgeJustification::Rule);
                continue;
            }
        }
        // Induced edges relate two attributes at the same position.
        let (ONode::Attr(fo), ONode::Attr(t)) = (from, to) else {
            return Err(format!(
                "no rule justifies edge {} -> {}",
                grammar.occ_name(p, from),
                grammar.occ_name(p, to)
            ));
        };
        if fo.pos != t.pos || fo.pos as usize > prod.arity() {
            return Err(format!(
                "edge {} -> {} crosses positions without a rule",
                grammar.occ_name(p, from),
                grammar.occ_name(p, to)
            ));
        }
        let ph = prod.phylum_at(fo.pos);
        let (fl, tl) = (ix.local(grammar, fo.attr), ix.local(grammar, t.attr));
        let induced = match kind {
            WitnessKind::Snc => fo.pos > 0 && class.snc.io.get(ph).get(fl, tl),
            WitnessKind::Dnc => {
                if fo.pos > 0 {
                    class.snc.io.get(ph).get(fl, tl)
                } else {
                    class.dnc.as_ref().is_some_and(|d| d.oi.get(ph).get(fl, tl))
                }
            }
            WitnessKind::Oag => class.oag.as_ref().is_some_and(|o| o.ds.get(ph).get(fl, tl)),
        };
        if induced {
            justs.push(EdgeJustification::Induced);
        } else if kind == WitnessKind::Oag {
            // The candidate order related every attribute pair of the
            // phylum; the rejected order itself is gone, so same-position
            // edges are admissible as order edges.
            justs.push(EdgeJustification::Order);
        } else {
            return Err(format!(
                "edge {} -> {} is neither a rule nor an induced {} pair",
                grammar.occ_name(p, from),
                grammar.occ_name(p, to),
                match kind {
                    WitnessKind::Snc => "IO",
                    WitnessKind::Dnc => "IO/OI",
                    WitnessKind::Oag => "DS",
                }
            ));
        }
    }
    Ok(justs)
}

/// Pushes a witness diagnostic: headline from the failed class, notes
/// from the rendered explanation (one per line), plus the verifier's
/// verdict.
fn witness_diag(
    grammar: &Grammar,
    class: &Classification,
    kind: WitnessKind,
    witness: &CircWitness,
    code: Code,
    message: String,
) -> Diagnostic {
    let prod = grammar.production(witness.production);
    let mut d = Diagnostic::new(
        code,
        Span::anchor(format!("production {}", prod.name())),
        message,
    );
    for line in explain(grammar, witness).lines() {
        d = d.with_note(line.trim_start());
    }
    match verify_witness(grammar, class, kind, witness) {
        Ok(justs) if !justs.is_empty() => {
            d = d.with_note(format!(
                "witness verified: {} edge(s), {} from semantic rules",
                justs.len(),
                justs
                    .iter()
                    .filter(|j| **j == EdgeJustification::Rule)
                    .count()
            ));
        }
        Ok(_) => {
            d = d.with_note(
                "witness is the ordered test's degenerate phylum-level fallback".to_string(),
            );
        }
        Err(e) => {
            d = d.with_note(format!("witness FAILED verification: {e}"));
        }
    }
    d
}

/// Runs the circularity lints over a classification, appending
/// `L010`/`L011`/`L012` diagnostics.
pub fn lint_circularity(grammar: &Grammar, class: &Classification, diags: &mut Vec<Diagnostic>) {
    if let Some(w) = &class.snc.witness {
        diags.push(witness_diag(
            grammar,
            class,
            WitnessKind::Snc,
            w,
            Code::NotSnc,
            "grammar is not strongly non-circular; no evaluator can be generated".to_string(),
        ));
        return; // the cascade stopped here; nothing further was computed
    }
    if let Some(w) = class.dnc.as_ref().and_then(|d| d.witness.as_ref()) {
        diags.push(
            witness_diag(
                grammar,
                class,
                WitnessKind::Dnc,
                w,
                Code::NotDnc,
                "grammar is SNC but not doubly non-circular".to_string(),
            )
            .with_note("start-anywhere and incremental evaluation are unavailable"),
        );
    }
    if let Some(o) = &class.oag {
        if let Some(w) = &o.witness {
            diags.push(
                witness_diag(
                    grammar,
                    class,
                    WitnessKind::Oag,
                    w,
                    Code::NotOag,
                    format!(
                        "grammar is not ordered after {} repair step(s); \
                         falling back to the SNC transformation",
                        o.repairs_used
                    ),
                )
                .with_note(format!(
                    "evaluation proceeds via the {} plan set",
                    class.class
                )),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{GrammarBuilder, Occ, Value};
    use fnc2_analysis::{classify, AgClass, Inclusion};

    use super::*;

    /// The classic circular AG: A.i := A.s with A.s := A.i below.
    fn circular() -> fnc2_ag::Grammar {
        let mut g = GrammarBuilder::new("circ");
        let s = g.phylum("S");
        let a = g.phylum("A");
        let out = g.syn(s, "out");
        let i = g.inh(a, "i");
        let sy = g.syn(a, "s");
        let root = g.production("root", s, &[a]);
        g.copy(root, Occ::lhs(out), Occ::new(1, sy));
        g.copy(root, Occ::new(1, i), Occ::new(1, sy));
        let leaf = g.production("leaf", a, &[]);
        g.copy(leaf, Occ::lhs(sy), Occ::lhs(i));
        g.finish().unwrap()
    }

    #[test]
    fn not_snc_yields_verified_witness_diag() {
        let g = circular();
        let class = classify(&g, 1, Inclusion::Long).unwrap();
        assert_eq!(class.class, AgClass::NotSnc);
        let w = class.snc.witness.as_ref().unwrap();
        let justs = verify_witness(&g, &class, WitnessKind::Snc, w).unwrap();
        assert_eq!(justs.len(), w.cycle.len() - 1);
        assert!(justs.contains(&EdgeJustification::Rule));

        let mut diags = Vec::new();
        lint_circularity(&g, &class, &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::NotSnc);
        assert!(diags[0]
            .notes
            .iter()
            .any(|n| n.contains("circular dependency in production `root`")));
        assert!(diags[0]
            .notes
            .iter()
            .any(|n| n.contains("witness verified")));
    }

    #[test]
    fn fabricated_witnesses_are_rejected() {
        let g = circular();
        let class = classify(&g, 1, Inclusion::Long).unwrap();
        let real = class.snc.witness.clone().unwrap();

        // Not closed.
        let mut open = real.clone();
        open.cycle.pop();
        open.cycle.push(ONode::Attr(Occ::lhs(
            g.attr_by_name(g.phylum_by_name("S").unwrap(), "out")
                .unwrap(),
        )));
        assert!(verify_witness(&g, &class, WitnessKind::Snc, &open).is_err());

        // Reversed edges are unjustified (dependencies are directed).
        let mut rev = real.clone();
        rev.cycle.reverse();
        // A symmetric 2-cycle would survive reversal; the real witness here
        // is not symmetric, so reversal must break at least one edge.
        if rev.cycle != real.cycle {
            assert!(verify_witness(&g, &class, WitnessKind::Snc, &rev).is_err());
        }

        // One-node degenerate form is Oag-only.
        let deg = CircWitness {
            production: real.production,
            cycle: vec![real.cycle[0]],
        };
        assert!(verify_witness(&g, &class, WitnessKind::Snc, &deg).is_err());
        assert!(verify_witness(&g, &class, WitnessKind::Oag, &deg).is_ok());
    }

    #[test]
    fn evaluable_grammar_has_no_circ_diags() {
        let mut g = GrammarBuilder::new("ok");
        let s = g.phylum("S");
        let n = g.syn(s, "n");
        let leaf = g.production("leaf", s, &[]);
        g.constant(leaf, Occ::lhs(n), Value::Int(0));
        let g = g.finish().unwrap();
        let class = classify(&g, 1, Inclusion::Long).unwrap();
        let mut diags = Vec::new();
        lint_circularity(&g, &class, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
