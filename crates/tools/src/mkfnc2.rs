//! `mkfnc2` — application construction: module dependency graphs, build
//! order, and source statistics (paper §3.3 and Table 4).
//!
//! "Mkfnc2 automates the construction of complete applications using FNC-2
//! and the other processors"; its first job (AG 1 of Table 1) is "the
//! construction of the module dependency graph". Given a set of OLGA
//! source files, this module parses them, extracts the import relation,
//! computes a topological build order (diagnosing cycles), and produces the
//! per-subsystem source statistics of Table 4.

use std::collections::HashMap;
use std::fmt;

use fnc2_gfa::Digraph;
use fnc2_olga::ast::Unit;
use fnc2_olga::{parse_units, ParseError};

/// A source file of the application.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// File name (for reports).
    pub name: String,
    /// Subsystem it belongs to (Table 4 groups by subsystem).
    pub subsystem: String,
    /// OLGA source text.
    pub text: String,
}

/// One unit in the project graph.
#[derive(Clone, Debug)]
pub struct UnitInfo {
    /// Unit name.
    pub name: String,
    /// Defining file.
    pub file: String,
    /// Whether it is an AG (vs. a module).
    pub is_ag: bool,
    /// Modules it imports.
    pub imports: Vec<String>,
    /// Line count of its file.
    pub lines: usize,
}

/// Project analysis errors.
#[derive(Debug)]
pub enum ProjectError {
    /// A file failed to parse.
    Parse {
        /// File name.
        file: String,
        /// Underlying error.
        error: ParseError,
    },
    /// Two units share a name.
    Duplicate {
        /// The clashing name.
        name: String,
    },
    /// An import cannot be resolved.
    Unresolved {
        /// Importing unit.
        unit: String,
        /// Missing module.
        import: String,
    },
    /// The import relation is cyclic.
    Cycle {
        /// Unit names along the cycle.
        units: Vec<String>,
    },
}

impl fmt::Display for ProjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjectError::Parse { file, error } => write!(f, "{file}: {error}"),
            ProjectError::Duplicate { name } => write!(f, "duplicate unit name `{name}`"),
            ProjectError::Unresolved { unit, import } => {
                write!(f, "unit `{unit}` imports unknown module `{import}`")
            }
            ProjectError::Cycle { units } => {
                write!(f, "import cycle: {}", units.join(" -> "))
            }
        }
    }
}

impl std::error::Error for ProjectError {}

/// The Table 4 row of one subsystem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubsystemStats {
    /// Subsystem name.
    pub name: String,
    /// Number of files.
    pub files: usize,
    /// Minimum lines per file.
    pub min_lines: usize,
    /// Maximum lines per file.
    pub max_lines: usize,
    /// Total lines.
    pub total_lines: usize,
}

impl SubsystemStats {
    /// Average lines per file.
    pub fn avg_lines(&self) -> usize {
        self.total_lines.checked_div(self.files).unwrap_or(0)
    }
}

/// The analyzed project.
#[derive(Clone, Debug)]
pub struct Project {
    /// All units, indexed densely.
    pub units: Vec<UnitInfo>,
    /// A topological build order (dependencies first).
    pub build_order: Vec<String>,
    /// Per-subsystem statistics, sorted by name.
    pub stats: Vec<SubsystemStats>,
}

/// Analyzes a set of source files.
///
/// # Errors
///
/// Reports parse errors, duplicate unit names, unresolved imports, and
/// import cycles (with the cycle's members).
pub fn analyze_project(files: &[SourceFile]) -> Result<Project, ProjectError> {
    let mut units: Vec<UnitInfo> = Vec::new();
    let mut by_name: HashMap<String, usize> = HashMap::new();
    for f in files {
        let parsed = parse_units(&f.text).map_err(|error| ProjectError::Parse {
            file: f.name.clone(),
            error,
        })?;
        let lines = f.text.lines().count();
        for u in parsed {
            let (name, is_ag, imports) = match &u {
                Unit::Module(m) => (
                    m.name.clone(),
                    false,
                    m.imports.iter().map(|i| i.from.clone()).collect::<Vec<_>>(),
                ),
                Unit::Ag(a) => (
                    a.name.clone(),
                    true,
                    a.imports.iter().map(|i| i.from.clone()).collect::<Vec<_>>(),
                ),
            };
            if by_name.contains_key(&name) {
                return Err(ProjectError::Duplicate { name });
            }
            by_name.insert(name.clone(), units.len());
            units.push(UnitInfo {
                name,
                file: f.name.clone(),
                is_ag,
                imports,
                lines,
            });
        }
    }

    // Dependency graph: edge importee -> importer.
    let mut g = Digraph::new(units.len());
    for (i, u) in units.iter().enumerate() {
        for imp in &u.imports {
            let Some(&j) = by_name.get(imp) else {
                return Err(ProjectError::Unresolved {
                    unit: u.name.clone(),
                    import: imp.clone(),
                });
            };
            g.add_edge(j, i);
        }
    }
    let build_order = match g.topo_order() {
        Some(order) => order.into_iter().map(|i| units[i].name.clone()).collect(),
        None => {
            let cycle = g.find_cycle().expect("cyclic graph has a cycle");
            return Err(ProjectError::Cycle {
                units: cycle.into_iter().map(|i| units[i].name.clone()).collect(),
            });
        }
    };

    // Table 4 statistics (per file, grouped by subsystem).
    let mut per: HashMap<&str, Vec<usize>> = HashMap::new();
    for f in files {
        per.entry(&f.subsystem)
            .or_default()
            .push(f.text.lines().count());
    }
    let mut stats: Vec<SubsystemStats> = per
        .into_iter()
        .map(|(name, lines)| SubsystemStats {
            name: name.to_string(),
            files: lines.len(),
            min_lines: lines.iter().copied().min().unwrap_or(0),
            max_lines: lines.iter().copied().max().unwrap_or(0),
            total_lines: lines.iter().sum(),
        })
        .collect();
    stats.sort_by(|a, b| a.name.cmp(&b.name));

    Ok(Project {
        units,
        build_order,
        stats,
    })
}

/// Renders the Table-4-style report.
pub fn render_stats(stats: &[SubsystemStats]) -> String {
    let mut out = String::new();
    out.push_str("subsystem        # files   min   max   total   ave.\n");
    let mut files = 0;
    let mut total = 0;
    let mut min = usize::MAX;
    let mut max = 0;
    for s in stats {
        out.push_str(&format!(
            "{:<16} {:>7} {:>5} {:>5} {:>7} {:>6}\n",
            s.name,
            s.files,
            s.min_lines,
            s.max_lines,
            s.total_lines,
            s.avg_lines()
        ));
        files += s.files;
        total += s.total_lines;
        min = min.min(s.min_lines);
        max = max.max(s.max_lines);
    }
    if files > 0 {
        out.push_str(&format!(
            "{:<16} {:>7} {:>5} {:>5} {:>7} {:>6}\n",
            "total",
            files,
            min,
            max,
            total,
            total / files
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(name: &str, subsystem: &str, text: &str) -> SourceFile {
        SourceFile {
            name: name.into(),
            subsystem: subsystem.into(),
            text: text.into(),
        }
    }

    #[test]
    fn build_order_respects_imports() {
        let files = vec![
            file(
                "app.olga",
                "app",
                "module app; import helper from util; function go(x : int) : int = helper(x); end",
            ),
            file(
                "util.olga",
                "util",
                "module util; export helper; function helper(x : int) : int = x; end",
            ),
        ];
        let p = analyze_project(&files).unwrap();
        let order = &p.build_order;
        let util_at = order.iter().position(|n| n == "util").unwrap();
        let app_at = order.iter().position(|n| n == "app").unwrap();
        assert!(util_at < app_at);
    }

    #[test]
    fn cycles_are_diagnosed() {
        let files = vec![
            file("a.olga", "s", "module a; import x from b; end"),
            file("b.olga", "s", "module b; import y from a; end"),
        ];
        match analyze_project(&files) {
            Err(ProjectError::Cycle { units }) => {
                assert!(units.contains(&"a".to_string()));
                assert!(units.contains(&"b".to_string()));
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn unresolved_import_reported() {
        let files = vec![file("a.olga", "s", "module a; import x from ghost; end")];
        assert!(matches!(
            analyze_project(&files),
            Err(ProjectError::Unresolved { .. })
        ));
    }

    #[test]
    fn stats_are_per_subsystem() {
        let files = vec![
            file("a.olga", "front", "module a;\nend\n"),
            file("b.olga", "front", "module b;\n\n\nend\n"),
            file("c.olga", "back", "module c;\nend\n"),
        ];
        let p = analyze_project(&files).unwrap();
        assert_eq!(p.stats.len(), 2);
        let front = p.stats.iter().find(|s| s.name == "front").unwrap();
        assert_eq!(front.files, 2);
        assert_eq!(front.min_lines, 2);
        assert_eq!(front.max_lines, 4);
        assert_eq!(front.total_lines, 6);
        assert_eq!(front.avg_lines(), 3);
        let report = render_stats(&p.stats);
        assert!(report.contains("front"));
        assert!(report.contains("total"));
    }

    #[test]
    fn ags_participate_in_the_graph() {
        let files = vec![
            file(
                "lib.olga",
                "lib",
                "module lib; export two; const two : int = 2; end",
            ),
            file(
                "g.olga",
                "ag",
                r#"
                attribute grammar g;
                  import two from lib;
                  phylum S;
                  operator leaf : S ::= ;
                  synthesized v : int of S;
                  for leaf { S.v := two; }
                end
                "#,
            ),
        ];
        let p = analyze_project(&files).unwrap();
        assert!(p.units.iter().any(|u| u.is_ag && u.name == "g"));
        let order = &p.build_order;
        assert!(
            order.iter().position(|n| n == "lib").unwrap()
                < order.iter().position(|n| n == "g").unwrap()
        );
    }
}
