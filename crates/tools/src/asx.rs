//! `asx` — analysis of attributed abstract syntaxes (paper §3.3).
//!
//! "Asx analyses attributed abstract syntax descriptions, which play a
//! great role in our formalism since they describe the input and output
//! data of the evaluators." Beyond the hard well-definedness rules enforced
//! by grammar construction, `asx` reports structural diagnostics: phyla
//! unreachable from the root, phyla that cannot derive a finite tree, and
//! attributes that are computed but never used.

use fnc2_ag::{AttrKind, Grammar, ONode, Occ, PhylumId};

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsxDiag {
    /// Phylum not reachable from the root.
    Unreachable {
        /// Phylum name.
        phylum: String,
    },
    /// Phylum from which no finite tree derives (every production loops).
    NotProductive {
        /// Phylum name.
        phylum: String,
    },
    /// Attribute never read by any rule (and not a root output).
    UnusedAttribute {
        /// Phylum name.
        phylum: String,
        /// Attribute name.
        attr: String,
    },
}

impl std::fmt::Display for AsxDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsxDiag::Unreachable { phylum } => {
                write!(f, "phylum `{phylum}` is unreachable from the root")
            }
            AsxDiag::NotProductive { phylum } => {
                write!(f, "phylum `{phylum}` cannot derive a finite tree")
            }
            AsxDiag::UnusedAttribute { phylum, attr } => {
                write!(f, "attribute `{phylum}.{attr}` is never used")
            }
        }
    }
}

/// The report of one analysis run.
#[derive(Clone, Debug, Default)]
pub struct AsxReport {
    /// Structural warnings.
    pub diags: Vec<AsxDiag>,
}

impl AsxReport {
    /// True if no diagnostics were produced.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }
}

/// Analyzes a (well-defined) grammar.
pub fn analyze(grammar: &Grammar) -> AsxReport {
    let mut diags = Vec::new();

    // Reachability from the root.
    let mut reach = vec![false; grammar.phylum_count()];
    let mut stack = vec![grammar.root()];
    reach[grammar.root().index()] = true;
    while let Some(ph) = stack.pop() {
        for &p in grammar.phylum(ph).productions() {
            for &r in grammar.production(p).rhs() {
                if !reach[r.index()] {
                    reach[r.index()] = true;
                    stack.push(r);
                }
            }
        }
    }
    for ph in grammar.phyla() {
        if !reach[ph.index()] {
            diags.push(AsxDiag::Unreachable {
                phylum: grammar.phylum(ph).name().to_string(),
            });
        }
    }

    // Productivity: fixpoint of "has a production whose RHS phyla are all
    // productive".
    let mut productive = vec![false; grammar.phylum_count()];
    let mut changed = true;
    while changed {
        changed = false;
        for ph in grammar.phyla() {
            if productive[ph.index()] {
                continue;
            }
            let ok = grammar.phylum(ph).productions().iter().any(|&p| {
                grammar
                    .production(p)
                    .rhs()
                    .iter()
                    .all(|r| productive[r.index()])
            });
            if ok {
                productive[ph.index()] = true;
                changed = true;
            }
        }
    }
    for ph in grammar.phyla() {
        if !productive[ph.index()] {
            diags.push(AsxDiag::NotProductive {
                phylum: grammar.phylum(ph).name().to_string(),
            });
        }
    }

    // Unused attributes: never read anywhere, and not synthesized on the
    // root (root outputs are the evaluator's results).
    let mut used = vec![false; grammar.attr_count()];
    for p in grammar.productions() {
        for rule in grammar.production(p).rules() {
            for n in rule.read_nodes() {
                if let ONode::Attr(Occ { attr, .. }) = n {
                    used[attr.index()] = true;
                }
            }
        }
    }
    for ph in grammar.phyla() {
        for &a in grammar.phylum(ph).attrs() {
            let info = grammar.attr(a);
            let root_output = ph == grammar.root() && info.kind() == AttrKind::Synthesized;
            if !used[a.index()] && !root_output {
                diags.push(AsxDiag::UnusedAttribute {
                    phylum: grammar.phylum(ph).name().to_string(),
                    attr: info.name().to_string(),
                });
            }
        }
    }

    AsxReport { diags }
}

/// The phyla reachable from the root (diagnostic helper for the module
/// graph display of Figure 4).
pub fn reachable(grammar: &Grammar) -> Vec<PhylumId> {
    let mut reach = vec![false; grammar.phylum_count()];
    let mut stack = vec![grammar.root()];
    reach[grammar.root().index()] = true;
    let mut out = vec![grammar.root()];
    while let Some(ph) = stack.pop() {
        for &p in grammar.phylum(ph).productions() {
            for &r in grammar.production(p).rhs() {
                if !reach[r.index()] {
                    reach[r.index()] = true;
                    stack.push(r);
                    out.push(r);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{GrammarBuilder, Value};

    use super::*;

    #[test]
    fn clean_grammar() {
        let mut g = GrammarBuilder::new("ok");
        let s = g.phylum("S");
        let v = g.syn(s, "v");
        let leaf = g.production("leaf", s, &[]);
        g.constant(leaf, Occ::lhs(v), Value::Int(1));
        let g = g.finish().unwrap();
        assert!(analyze(&g).is_clean());
        assert_eq!(reachable(&g).len(), 1);
    }

    #[test]
    fn unreachable_and_unproductive_reported() {
        let mut g = GrammarBuilder::new("odd");
        let s = g.phylum("S");
        let dead = g.phylum("Dead"); // never on any RHS of a reachable phylum
        let inf = g.phylum("Inf"); // only recursive productions
        let v = g.syn(s, "v");
        let w = g.syn(dead, "w");
        let u = g.syn(inf, "u");
        let leaf = g.production("leaf", s, &[]);
        g.constant(leaf, Occ::lhs(v), Value::Int(1));
        let dleaf = g.production("dleaf", dead, &[]);
        g.constant(dleaf, Occ::lhs(w), Value::Int(2));
        let spin = g.production("spin", inf, &[inf]);
        g.copy(spin, Occ::lhs(u), Occ::new(1, u));
        let g = g.finish().unwrap();
        let r = analyze(&g);
        assert!(r.diags.contains(&AsxDiag::Unreachable {
            phylum: "Dead".into()
        }));
        assert!(r.diags.contains(&AsxDiag::Unreachable {
            phylum: "Inf".into()
        }));
        assert!(r.diags.contains(&AsxDiag::NotProductive {
            phylum: "Inf".into()
        }));
        // Dead.w and Inf.u are unused (not root outputs).
        assert!(r
            .diags
            .iter()
            .any(|d| matches!(d, AsxDiag::UnusedAttribute { attr, .. } if attr == "w")));
    }

    #[test]
    fn root_outputs_are_not_unused() {
        let mut g = GrammarBuilder::new("t");
        let s = g.phylum("S");
        let v = g.syn(s, "v"); // root synthesized: the result
        let leaf = g.production("leaf", s, &[]);
        g.constant(leaf, Occ::lhs(v), Value::Int(1));
        let g = g.finish().unwrap();
        assert!(analyze(&g).is_clean());
    }
}
