//! `ppat` — generation of unparsers for attributed abstract trees
//! (paper §3.3, Figure 4).
//!
//! A [`PpatSpec`] gives one template per operator: literal text, child
//! splices, the node's token, and simple box-style layout (newline,
//! indent/dedent — the `boxes` files of Figure 4). [`Unparser`] renders
//! both input [`Tree`]s and the output [`Term`] values of tree-to-tree
//! mappings; "most of the unparser is independent from the input tree
//! language", which is why one generator covers both.

use std::collections::HashMap;
use std::fmt;

use fnc2_ag::{Grammar, NodeId, Tree, Value};

/// One template item.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// Literal text.
    Text(String),
    /// Splice the `i`-th child (1-based, like `VISIT`).
    Child(usize),
    /// Splice the node's lexical token.
    Token,
    /// Line break at the current indentation.
    Newline,
    /// Increase indentation.
    Indent,
    /// Decrease indentation.
    Dedent,
}

/// Templates per operator name.
#[derive(Clone, Debug, Default)]
pub struct PpatSpec {
    templates: HashMap<String, Vec<Item>>,
    /// Text emitted for operators without a template:
    /// `op(child, …)`.
    pub generic_fallback: bool,
}

impl PpatSpec {
    /// An empty spec with the generic fallback enabled.
    pub fn new() -> PpatSpec {
        PpatSpec {
            templates: HashMap::new(),
            generic_fallback: true,
        }
    }

    /// Adds a template for `operator`.
    pub fn template(&mut self, operator: impl Into<String>, items: Vec<Item>) -> &mut Self {
        self.templates.insert(operator.into(), items);
        self
    }
}

/// Specification errors found by the generator.
#[derive(Clone, Debug, PartialEq)]
pub enum PpatError {
    /// Template names an operator the grammar lacks.
    UnknownOperator(String),
    /// `Child(i)` out of the operator's arity.
    ChildOutOfRange {
        /// Operator.
        operator: String,
        /// The index used.
        index: usize,
        /// The operator's arity.
        arity: usize,
    },
}

impl fmt::Display for PpatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PpatError::UnknownOperator(o) => write!(f, "unknown operator `{o}`"),
            PpatError::ChildOutOfRange {
                operator,
                index,
                arity,
            } => write!(
                f,
                "child ${index} out of range in template of `{operator}` (arity {arity})"
            ),
        }
    }
}

impl std::error::Error for PpatError {}

/// A generated unparser.
#[derive(Clone, Debug)]
pub struct Unparser {
    spec: PpatSpec,
}

impl Unparser {
    /// Generates an unparser for `grammar`, validating every template.
    ///
    /// # Errors
    ///
    /// Reports unknown operators and out-of-range child splices.
    pub fn generate(grammar: &Grammar, spec: PpatSpec) -> Result<Unparser, PpatError> {
        for (op, items) in &spec.templates {
            let Some(p) = grammar.production_by_name(op) else {
                return Err(PpatError::UnknownOperator(op.clone()));
            };
            let arity = grammar.production(p).arity();
            for item in items {
                if let Item::Child(i) = item {
                    if *i == 0 || *i > arity {
                        return Err(PpatError::ChildOutOfRange {
                            operator: op.clone(),
                            index: *i,
                            arity,
                        });
                    }
                }
            }
        }
        Ok(Unparser { spec })
    }

    /// Builds an unparser without validating templates against an input
    /// grammar — for unparsers of *output* trees (the target language of a
    /// tree-to-tree mapping has no grammar object on this side).
    pub fn generate_unchecked(spec: PpatSpec) -> Unparser {
        Unparser { spec }
    }

    /// Unparses an abstract tree.
    pub fn unparse(&self, grammar: &Grammar, tree: &Tree) -> String {
        let mut out = Render::new();
        self.node(grammar, tree, tree.root(), &mut out);
        out.text
    }

    fn node(&self, grammar: &Grammar, tree: &Tree, id: NodeId, out: &mut Render) {
        let prod = grammar.production(tree.node(id).production());
        match self.spec.templates.get(prod.name()) {
            Some(items) => {
                for item in items {
                    match item {
                        Item::Text(t) => out.push(t),
                        Item::Token => {
                            if let Some(v) = tree.node(id).token() {
                                out.push(&v.to_string());
                            }
                        }
                        Item::Child(i) => {
                            let c = tree.node(id).children()[i - 1];
                            self.node(grammar, tree, c, out);
                        }
                        Item::Newline => out.newline(),
                        Item::Indent => out.indent += 1,
                        Item::Dedent => out.indent = out.indent.saturating_sub(1),
                    }
                }
            }
            None => {
                out.push(prod.name());
                if prod.arity() > 0 {
                    out.push("(");
                    for (i, &c) in tree.node(id).children().iter().enumerate() {
                        if i > 0 {
                            out.push(", ");
                        }
                        self.node(grammar, tree, c, out);
                    }
                    out.push(")");
                }
            }
        }
    }

    /// Unparses an output-tree [`Value::Term`] (and scalars embedded in
    /// it), using the same templates keyed by term operator.
    pub fn unparse_term(&self, value: &Value) -> String {
        let mut out = Render::new();
        self.term(value, &mut out);
        out.text
    }

    fn term(&self, value: &Value, out: &mut Render) {
        match value {
            Value::Term(t) => match self.spec.templates.get(&t.op) {
                Some(items) => {
                    for item in items {
                        match item {
                            Item::Text(s) => out.push(s),
                            Item::Token => {}
                            Item::Child(i) => {
                                if let Some(c) = t.children.get(i - 1) {
                                    self.term(c, out);
                                }
                            }
                            Item::Newline => out.newline(),
                            Item::Indent => out.indent += 1,
                            Item::Dedent => out.indent = out.indent.saturating_sub(1),
                        }
                    }
                }
                None => {
                    out.push(&t.op);
                    if !t.children.is_empty() {
                        out.push("(");
                        for (i, c) in t.children.iter().enumerate() {
                            if i > 0 {
                                out.push(", ");
                            }
                            self.term(c, out);
                        }
                        out.push(")");
                    }
                }
            },
            other => out.push(&other.to_string()),
        }
    }
}

struct Render {
    text: String,
    indent: usize,
    at_line_start: bool,
}

impl Render {
    fn new() -> Render {
        Render {
            text: String::new(),
            indent: 0,
            at_line_start: true,
        }
    }

    fn push(&mut self, s: &str) {
        if self.at_line_start && !s.is_empty() {
            self.text.push_str(&"    ".repeat(self.indent));
            self.at_line_start = false;
        }
        self.text.push_str(s);
    }

    fn newline(&mut self) {
        self.text.push('\n');
        self.at_line_start = true;
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::{GrammarBuilder, Occ, TreeBuilder};

    use super::*;

    fn expr_grammar() -> Grammar {
        let mut g = GrammarBuilder::new("expr");
        let e = g.phylum("E");
        let v = g.syn(e, "v");
        g.func("add", 2, |a| Value::Int(a[0].as_int() + a[1].as_int()));
        let add = g.production("add", e, &[e, e]);
        g.call(
            add,
            Occ::lhs(v),
            "add",
            [Occ::new(1, v).into(), Occ::new(2, v).into()],
        );
        let lit = g.production("lit", e, &[]);
        g.copy(lit, Occ::lhs(v), fnc2_ag::Arg::Token);
        g.finish().unwrap()
    }

    #[test]
    fn template_unparse_roundtrip() {
        let g = expr_grammar();
        let mut spec = PpatSpec::new();
        spec.template(
            "add",
            vec![
                Item::Text("(".into()),
                Item::Child(1),
                Item::Text(" + ".into()),
                Item::Child(2),
                Item::Text(")".into()),
            ],
        );
        spec.template("lit", vec![Item::Token]);
        let up = Unparser::generate(&g, spec).unwrap();

        let mut tb = TreeBuilder::new(&g);
        let lit = g.production_by_name("lit").unwrap();
        let a = tb.node_with_token(lit, &[], Some(Value::Int(1))).unwrap();
        let b = tb.node_with_token(lit, &[], Some(Value::Int(2))).unwrap();
        let c = tb.node_with_token(lit, &[], Some(Value::Int(3))).unwrap();
        let ab = tb.op("add", &[a, b]).unwrap();
        let root = tb.op("add", &[ab, c]).unwrap();
        let tree = tb.finish_root(root).unwrap();
        assert_eq!(up.unparse(&g, &tree), "((1 + 2) + 3)");
    }

    #[test]
    fn generic_fallback() {
        let g = expr_grammar();
        let up = Unparser::generate(&g, PpatSpec::new()).unwrap();
        let mut tb = TreeBuilder::new(&g);
        let lit = g.production_by_name("lit").unwrap();
        let a = tb.node_with_token(lit, &[], Some(Value::Int(1))).unwrap();
        let b = tb.node_with_token(lit, &[], Some(Value::Int(2))).unwrap();
        let root = tb.op("add", &[a, b]).unwrap();
        let tree = tb.finish_root(root).unwrap();
        assert_eq!(up.unparse(&g, &tree), "add(lit, lit)");
    }

    #[test]
    fn layout_items() {
        let g = expr_grammar();
        let mut spec = PpatSpec::new();
        spec.template(
            "add",
            vec![
                Item::Text("add".into()),
                Item::Indent,
                Item::Newline,
                Item::Child(1),
                Item::Newline,
                Item::Child(2),
                Item::Dedent,
            ],
        );
        spec.template("lit", vec![Item::Token]);
        let up = Unparser::generate(&g, spec).unwrap();
        let mut tb = TreeBuilder::new(&g);
        let lit = g.production_by_name("lit").unwrap();
        let a = tb.node_with_token(lit, &[], Some(Value::Int(1))).unwrap();
        let b = tb.node_with_token(lit, &[], Some(Value::Int(2))).unwrap();
        let root = tb.op("add", &[a, b]).unwrap();
        let tree = tb.finish_root(root).unwrap();
        assert_eq!(up.unparse(&g, &tree), "add\n    1\n    2");
    }

    #[test]
    fn validation_errors() {
        let g = expr_grammar();
        let mut spec = PpatSpec::new();
        spec.template("nope", vec![]);
        assert!(matches!(
            Unparser::generate(&g, spec),
            Err(PpatError::UnknownOperator(_))
        ));
        let mut spec = PpatSpec::new();
        spec.template("lit", vec![Item::Child(1)]);
        assert!(matches!(
            Unparser::generate(&g, spec),
            Err(PpatError::ChildOutOfRange { arity: 0, .. })
        ));
    }

    #[test]
    fn term_unparse() {
        let g = expr_grammar();
        let mut spec = PpatSpec::new();
        spec.template(
            "push",
            vec![Item::Text("PUSH ".into()), Item::Child(1), Item::Newline],
        );
        let up = Unparser::generate_unchecked(spec);
        let code = Value::term(
            "seq",
            [
                Value::term("push", [Value::Int(1)]),
                Value::term("push", [Value::Int(2)]),
            ],
        );
        let text = up.unparse_term(&code);
        assert!(text.contains("PUSH 1\n"));
        assert!(text.contains("PUSH 2\n"));
        let _ = g;
    }
}
