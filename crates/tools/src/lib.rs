//! # fnc2-tools — the companion processors (paper §3.3)
//!
//! "FNC-2 comes with several companion processors": this crate reproduces
//! the three that matter to the evaluation:
//!
//! * [`asx`](mod@crate) — attributed-abstract-syntax analysis
//!   ([`analyze`]): reachability, productivity, unused attributes;
//! * `ppat` — unparser generation from per-operator templates
//!   ([`Unparser`], for both input trees and output terms);
//! * `mkfnc2` — application construction: module dependency graph, build
//!   order, cycle diagnosis, and the Table 4 source statistics
//!   ([`analyze_project`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod asx;
mod mkfnc2;
mod ppat;

pub use asx::{analyze, reachable, AsxDiag, AsxReport};
pub use mkfnc2::{
    analyze_project, render_stats, Project, ProjectError, SourceFile, SubsystemStats, UnitInfo,
};
pub use ppat::{Item, PpatError, PpatSpec, Unparser};
