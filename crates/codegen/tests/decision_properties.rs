//! Property test: decision-tree compilation preserves linear first-match
//! semantics, on random pattern matrices and random scrutinees drawn
//! from a seeded inline generator (same cases every run).

use fnc2_ag::Value;
use fnc2_codegen::{compile_arms, run_decision};
use fnc2_olga::ast::Pat;
use fnc2_olga::Pos;

fn p0() -> Pos {
    Pos { line: 0, col: 0 }
}

/// Inline SplitMix64 (this crate sits below the corpus, which hosts the
/// shared test PRNG, so a local copy avoids a dependency cycle).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Random patterns over ints, bools, lists and pairs, depth-bounded.
fn random_pat(rng: &mut Rng, depth: usize) -> Pat {
    let leaf_only = depth == 0;
    match rng.below(if leaf_only { 5 } else { 7 }) {
        0 => Pat::Wild(p0()),
        1 => Pat::Int(rng.below(4) as i64, p0()),
        2 => Pat::Bool(rng.below(2) == 0, p0()),
        3 => Pat::Nil(p0()),
        4 => {
            let name = ["a", "b", "c"][rng.below(3)];
            Pat::Bind(name.to_string(), p0())
        }
        5 => Pat::Cons(
            Box::new(random_pat(rng, depth - 1)),
            Box::new(random_pat(rng, depth - 1)),
            p0(),
        ),
        _ => Pat::Tuple((0..2).map(|_| random_pat(rng, depth - 1)).collect(), p0()),
    }
}

/// Random values in the same space.
fn random_value(rng: &mut Rng, depth: usize) -> Value {
    let leaf_only = depth == 0;
    match rng.below(if leaf_only { 3 } else { 5 }) {
        0 => Value::Int(rng.below(4) as i64),
        1 => Value::Bool(rng.below(2) == 0),
        2 => Value::list([]),
        3 => {
            let n = rng.below(3);
            Value::list((0..n).map(|_| random_value(rng, depth - 1)))
        }
        _ => Value::tuple((0..2).map(|_| random_value(rng, depth - 1))),
    }
}

/// Reference: linear first-match with structural semantics.
fn linear_match(pats: &[Pat], v: &Value) -> Option<usize> {
    fn matches(p: &Pat, v: &Value) -> bool {
        match (p, v) {
            (Pat::Wild(_) | Pat::Bind(..), _) => true,
            (Pat::Int(i, _), Value::Int(j)) => i == j,
            (Pat::Bool(b, _), Value::Bool(c)) => b == c,
            (Pat::Str(s, _), Value::Str(t)) => s.as_str() == &**t,
            (Pat::Nil(_), Value::List(l)) => l.is_empty(),
            (Pat::Cons(h, t, _), Value::List(l)) => {
                !l.is_empty()
                    && matches(h, &l[0])
                    && matches(t, &Value::list(l[1..].iter().cloned()))
            }
            (Pat::Tuple(ps, _), Value::Tuple(items)) => {
                ps.len() == items.len() && ps.iter().zip(items.iter()).all(|(p, v)| matches(p, v))
            }
            (Pat::Term { op, args, .. }, Value::Term(t)) => {
                *op == t.op
                    && args.len() == t.children.len()
                    && args.iter().zip(&t.children).all(|(p, v)| matches(p, v))
            }
            _ => false,
        }
    }
    pats.iter().position(|p| matches(p, v))
}

#[test]
fn decision_tree_equals_linear_match() {
    let mut rng = Rng(0xdec1);
    for _ in 0..256 {
        let n_pats = 1 + rng.below(5);
        let pats: Vec<Pat> = (0..n_pats).map(|_| random_pat(&mut rng, 3)).collect();
        let n_vals = 1 + rng.below(5);
        let values: Vec<Value> = (0..n_vals).map(|_| random_value(&mut rng, 3)).collect();
        let tree = compile_arms(&pats);
        for v in &values {
            let got = run_decision(&tree, v).map(|(arm, _)| arm);
            let want = linear_match(&pats, v);
            assert_eq!(got, want, "patterns {pats:?} value {v:?}");
        }
    }
}
