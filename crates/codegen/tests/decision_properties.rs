//! Property test: decision-tree compilation preserves linear first-match
//! semantics, on random pattern matrices and random scrutinees.

use fnc2_ag::Value;
use fnc2_codegen::{compile_arms, run_decision};
use fnc2_olga::ast::Pat;
use fnc2_olga::Pos;
use proptest::prelude::*;

fn p0() -> Pos {
    Pos { line: 0, col: 0 }
}

/// Random patterns over ints, bools, lists and pairs.
fn pat_strategy() -> impl Strategy<Value = Pat> {
    let leaf = prop_oneof![
        Just(Pat::Wild(p0())),
        (0i64..4).prop_map(|i| Pat::Int(i, p0())),
        proptest::bool::ANY.prop_map(|b| Pat::Bool(b, p0())),
        Just(Pat::Nil(p0())),
        "[a-c]".prop_map(|s| Pat::Bind(s, p0())),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(h, t)| Pat::Cons(Box::new(h), Box::new(t), p0())),
            proptest::collection::vec(inner, 2..3).prop_map(|ps| Pat::Tuple(ps, p0())),
        ]
    })
}

/// Random values in the same space.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        (0i64..4).prop_map(Value::Int),
        proptest::bool::ANY.prop_map(Value::Bool),
        Just(Value::list([])),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Value::list),
            proptest::collection::vec(inner, 2..3).prop_map(Value::tuple),
        ]
    })
}

/// Reference: linear first-match with structural semantics.
fn linear_match(pats: &[Pat], v: &Value) -> Option<usize> {
    fn matches(p: &Pat, v: &Value) -> bool {
        match (p, v) {
            (Pat::Wild(_) | Pat::Bind(..), _) => true,
            (Pat::Int(i, _), Value::Int(j)) => i == j,
            (Pat::Bool(b, _), Value::Bool(c)) => b == c,
            (Pat::Str(s, _), Value::Str(t)) => s.as_str() == &**t,
            (Pat::Nil(_), Value::List(l)) => l.is_empty(),
            (Pat::Cons(h, t, _), Value::List(l)) => {
                !l.is_empty()
                    && matches(h, &l[0])
                    && matches(t, &Value::list(l[1..].iter().cloned()))
            }
            (Pat::Tuple(ps, _), Value::Tuple(items)) => {
                ps.len() == items.len() && ps.iter().zip(items.iter()).all(|(p, v)| matches(p, v))
            }
            (Pat::Term { op, args, .. }, Value::Term(t)) => {
                *op == t.op
                    && args.len() == t.children.len()
                    && args.iter().zip(&t.children).all(|(p, v)| matches(p, v))
            }
            _ => false,
        }
    }
    pats.iter().position(|p| matches(p, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decision_tree_equals_linear_match(
        pats in proptest::collection::vec(pat_strategy(), 1..6),
        values in proptest::collection::vec(value_strategy(), 1..6),
    ) {
        let tree = compile_arms(&pats);
        for v in &values {
            let got = run_decision(&tree, v).map(|(arm, _)| arm);
            let want = linear_match(&pats, v);
            prop_assert_eq!(got, want, "patterns {:?} value {:?}", pats, v);
        }
    }
}
