//! Integration tests: generate C and Lisp for a real AG; the C text is
//! syntax-checked with the system compiler when one is available.

use std::io::Write as _;
use std::process::Command;

use fnc2_analysis::{snc_test, snc_to_l_ordered, Inclusion};
use fnc2_codegen::{to_c, to_lisp};
use fnc2_olga::{lower, parse_unit, Compiler};
use fnc2_visit::build_visit_seqs;

const DESK: &str = r#"
attribute grammar desk;
  phylum Prog, Expr;
  root Prog;
  operator prog : Prog ::= Expr;
  operator add  : Expr ::= Expr Expr;
  operator lit  : Expr ::= ;
  operator var  : Expr ::= ;
  synthesized value : int of Prog, Expr;
  inherited env : map of int of Expr;
  function get(e : map of int, k : string) : int =
    if bound(e, k) then lookup(e, k) else error("unbound " ++ k) end;
  function classify(l : list of int) : string =
    case l of [] => "none" | x :: [] => itoa(x) | _ :: _ => "many" end;
  for prog {
    Expr.env := insert(empty_map(), "x", 10);
    local banner : string := classify([1]);
    Prog.value := Expr.value + strlen(banner) - 1;
  }
  for add { Expr$1.value := Expr$2.value + Expr$3.value; }
  for lit { Expr.value := token(); }
  for var { Expr.value := get(Expr.env, token()); }
end
"#;

fn artifacts() -> (
    fnc2_olga::CheckedAg,
    fnc2_ag::Grammar,
    fnc2_visit::VisitSeqs,
) {
    let fnc2_olga::ast::Unit::Ag(ag) = parse_unit(DESK).unwrap() else {
        panic!("expected AG")
    };
    let checked = Compiler::new().check_ag(ag).unwrap();
    let (grammar, _) = lower(&checked).unwrap();
    let snc = snc_test(&grammar);
    assert!(snc.is_snc());
    let lo = snc_to_l_ordered(&grammar, &snc, Inclusion::Long).unwrap();
    let seqs = build_visit_seqs(&grammar, &lo);
    (checked, grammar, seqs)
}

#[test]
fn c_translation_is_complete_and_compiles() {
    let (checked, grammar, seqs) = artifacts();
    let c = to_c(&checked, &grammar, &seqs);
    // Structural checks.
    assert!(c.contains("static V f_get(V e, V k)"));
    assert!(c.contains("evaluate_root"));
    assert!(c.contains("visit_prog_pi0_v1"));
    assert!(c.contains("n->kids[0]"));
    assert!(c.contains("no garbage collector"));
    // Balanced braces.
    let open = c.matches('{').count();
    let close = c.matches('}').count();
    assert_eq!(open, close, "unbalanced braces");

    // Compile with the system C compiler when present.
    if Command::new("cc").arg("--version").output().is_ok() {
        let dir = std::env::temp_dir().join("fnc2_codegen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("desk.c");
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(c.as_bytes()).unwrap();
        drop(f);
        let out = Command::new("cc")
            .args(["-std=c99", "-fsyntax-only", "-Wno-unused-function"])
            .arg(&path)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "cc rejected the generated C:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn lisp_translation_is_balanced() {
    let (checked, grammar, seqs) = artifacts();
    let l = to_lisp(&checked, &grammar, &seqs);
    assert!(l.contains("(defun f-get ("));
    assert!(l.contains("(defun visit "));
    assert!(l.contains("evaluate-root"));
    // Balanced parentheses outside strings.
    let mut depth: i64 = 0;
    let mut in_str = false;
    let mut prev = ' ';
    for ch in l.chars() {
        match ch {
            '"' if prev != '\\' => in_str = !in_str,
            '(' if !in_str => depth += 1,
            ')' if !in_str => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced parens");
        prev = ch;
    }
    assert_eq!(depth, 0, "unbalanced parens at end");
}

#[test]
fn tail_recursive_function_becomes_a_loop_in_c() {
    let src = r#"
attribute grammar t;
  phylum S;
  operator leaf : S ::= ;
  synthesized v : int of S;
  function count(l : list of int, acc : int) : int =
    case l of [] => acc | _ :: r => count(r, acc + 1) end;
  for leaf { S.v := count([1, 2, 3], 0); }
end
"#;
    let fnc2_olga::ast::Unit::Ag(ag) = parse_unit(src).unwrap() else {
        panic!()
    };
    let checked = Compiler::new().check_ag(ag).unwrap();
    let (grammar, _) = lower(&checked).unwrap();
    let snc = snc_test(&grammar);
    let lo = snc_to_l_ordered(&grammar, &snc, Inclusion::Long).unwrap();
    let seqs = build_visit_seqs(&grammar, &lo);
    let c = to_c(&checked, &grammar, &seqs);
    assert!(
        c.contains("tail-recursion eliminated"),
        "expected TCO marker in:\n{c}"
    );
}

#[test]
fn model_rules_translate_to_c() {
    let src = r#"
attribute grammar modeled;
  phylum Prog, Stmts, Stmt;
  root Prog;
  operator prog : Prog ::= Stmts;
  operator cons : Stmts ::= Stmt Stmts;
  operator nil  : Stmts ::= ;
  operator one  : Stmt ::= ;
  synthesized count : int of Prog, Stmts, Stmt with sum;
  synthesized names : list of string of Prog, Stmts, Stmt with concat;
  threaded lab : int of Stmts, Stmt;
  for prog { Stmts.lab_in := 0; }
  for nil { Stmts.count := 0; Stmts.names := []; }
  for one { Stmt.count := 1; Stmt.names := ["x"]; Stmt.lab_out := Stmt.lab_in + 1; }
end
"#;
    let fnc2_olga::ast::Unit::Ag(ag) = parse_unit(src).unwrap() else {
        panic!()
    };
    let checked = Compiler::new().check_ag(ag).unwrap();
    let (grammar, _) = lower(&checked).unwrap();
    let snc = snc_test(&grammar);
    assert!(snc.is_snc());
    let lo = snc_to_l_ordered(&grammar, &snc, Inclusion::Long).unwrap();
    let seqs = build_visit_seqs(&grammar, &lo);
    let c = to_c(&checked, &grammar, &seqs);
    assert!(
        c.contains("v_add") || c.contains("v_append"),
        "model folds inlined"
    );
    assert!(
        !c.contains("unreachable: computed rules"),
        "all rules emitted"
    );
    if Command::new("cc").arg("--version").output().is_ok() {
        let dir = std::env::temp_dir().join("fnc2_codegen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("modeled.c");
        std::fs::write(&path, &c).unwrap();
        let out = Command::new("cc")
            .args(["-std=c99", "-fsyntax-only", "-Wno-unused-function"])
            .arg(&path)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "cc rejected: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let l = to_lisp(&checked, &grammar, &seqs);
    assert!(l.contains("v-append") || l.contains("(+ "));
}
