//! The common optimizer preceding the translators (paper §3.2): "a common
//! optimizer, which in particular performs tail recursion elimination and
//! builds deterministic decision trees for the OLGA pattern-matching
//! construct".

use std::collections::HashMap;

use fnc2_olga::ast::{Expr, Pat};

// ---------------------------------------------------------------------------
// Tail-recursion analysis (AG 6 of Table 1 is exactly this test)
// ---------------------------------------------------------------------------

/// Result of the tail-recursion test on one function.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TailInfo {
    /// Number of self-calls in tail position.
    pub tail_self_calls: usize,
    /// Number of self-calls in non-tail position.
    pub non_tail_self_calls: usize,
}

impl TailInfo {
    /// True if the function can be compiled to a loop: it calls itself, and
    /// only in tail position.
    pub fn is_tail_recursive(&self) -> bool {
        self.tail_self_calls > 0 && self.non_tail_self_calls == 0
    }
}

/// Analyzes the body of function `name`.
pub fn tail_info(name: &str, body: &Expr) -> TailInfo {
    let mut info = TailInfo::default();
    walk(name, body, true, &mut info);
    info
}

fn walk(name: &str, e: &Expr, tail: bool, info: &mut TailInfo) {
    match e {
        Expr::Call { name: n, args, .. } => {
            for a in args {
                walk(name, a, false, info);
            }
            if n == name {
                if tail {
                    info.tail_self_calls += 1;
                } else {
                    info.non_tail_self_calls += 1;
                }
            }
        }
        Expr::Unop { expr, .. } => walk(name, expr, false, info),
        Expr::Binop { lhs, rhs, .. } => {
            walk(name, lhs, false, info);
            walk(name, rhs, false, info);
        }
        Expr::If {
            cond, then, els, ..
        } => {
            walk(name, cond, false, info);
            walk(name, then, tail, info);
            walk(name, els, tail, info);
        }
        Expr::Let { value, body, .. } => {
            walk(name, value, false, info);
            walk(name, body, tail, info);
        }
        Expr::Case {
            scrutinee, arms, ..
        } => {
            walk(name, scrutinee, false, info);
            for (_, b) in arms {
                walk(name, b, tail, info);
            }
        }
        Expr::ListLit(items, _) | Expr::TupleLit(items, _) => {
            for i in items {
                walk(name, i, false, info);
            }
        }
        Expr::TreeCons { args, .. } => {
            for a in args {
                walk(name, a, false, info);
            }
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Decision trees for pattern matching
// ---------------------------------------------------------------------------

/// A path into the scrutinee value: child indices from the root
/// (for tuples, list head `0`/tail `1` after a cons test, term children).
pub type Path = Vec<usize>;

/// A primitive test performed at a path.
#[derive(Clone, Debug, PartialEq)]
pub enum Test {
    /// Integer equality.
    IntIs(i64),
    /// Boolean equality.
    BoolIs(bool),
    /// String equality.
    StrIs(String),
    /// The list at the path is empty.
    IsNil,
    /// The list at the path is nonempty (its head is path+`[0]`, its tail
    /// path+`[1]`).
    IsCons,
    /// The term at the path has the given operator and arity.
    IsTerm(String, usize),
    /// The value at the path is a tuple of the given arity.
    IsTuple(usize),
}

/// A deterministic decision tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Decision {
    /// Evaluate arm `arm` with the given variable bindings (name → path).
    Leaf {
        /// 0-based arm index of the original `case`.
        arm: usize,
        /// Binder name → access path.
        bindings: Vec<(String, Path)>,
    },
    /// No arm matches (run-time match failure).
    Fail,
    /// Perform `test` at `path`; on success continue with `yes`, else `no`.
    Test {
        /// Where to test.
        path: Path,
        /// What to test.
        test: Test,
        /// Success branch.
        yes: Box<Decision>,
        /// Failure branch.
        no: Box<Decision>,
    },
}

impl Decision {
    /// Number of internal test nodes.
    pub fn test_count(&self) -> usize {
        match self {
            Decision::Test { yes, no, .. } => 1 + yes.test_count() + no.test_count(),
            _ => 0,
        }
    }

    /// Maximum depth of tests along any branch.
    pub fn depth(&self) -> usize {
        match self {
            Decision::Test { yes, no, .. } => 1 + yes.depth().max(no.depth()),
            _ => 0,
        }
    }
}

/// Compiles the arms of a `case` into a decision tree (first-match
/// semantics preserved).
pub fn compile_arms(pats: &[Pat]) -> Decision {
    let rows: Vec<Row2> = pats
        .iter()
        .enumerate()
        .map(|(i, p)| Row2 {
            obligations: vec![(Vec::new(), p.clone())],
            bindings: Vec::new(),
            arm: i,
        })
        .collect();
    build(rows)
}

fn build(mut rows: Vec<Row2>) -> Decision {
    // Simplify irrefutable obligations (wildcards, binders, tuples
    // expanded structurally).
    for r in &mut rows {
        r.simplify();
    }
    let Some(first) = rows.first() else {
        return Decision::Fail;
    };
    if first.obligations.is_empty() {
        return Decision::Leaf {
            arm: first.arm,
            bindings: first.bindings.clone(),
        };
    }
    // Pick the first obligation of the first row as the test column.
    let (path, pat) = first.obligations[0].clone();
    let test = test_of(&pat);
    // Split rows on the test outcome.
    let mut yes_rows: Vec<Row2> = Vec::new();
    let mut no_rows: Vec<Row2> = Vec::new();
    for r in &rows {
        match r.refine(&path, &test) {
            Refined::Yes(r2) => yes_rows.push(r2),
            Refined::No(r2) => no_rows.push(r2),
            Refined::Both(a, b) => {
                yes_rows.push(a);
                no_rows.push(b);
            }
        }
    }
    Decision::Test {
        path,
        test,
        yes: Box::new(build(yes_rows)),
        no: Box::new(build(no_rows)),
    }
}

/// A row of the pattern matrix during construction.
#[derive(Clone, Debug)]
struct Row2 {
    obligations: Vec<(Path, Pat)>,
    bindings: Vec<(String, Path)>,
    arm: usize,
}

enum Refined {
    Yes(Row2),
    No(Row2),
    Both(Row2, Row2),
}

impl Row2 {
    fn simplify(&mut self) {
        let mut out: Vec<(Path, Pat)> = Vec::new();
        let mut todo: Vec<(Path, Pat)> = std::mem::take(&mut self.obligations);
        todo.reverse();
        while let Some((path, pat)) = todo.pop() {
            match pat {
                Pat::Wild(_) => {}
                Pat::Bind(n, _) => self.bindings.push((n, path)),
                other => out.push((path, other)),
            }
        }
        self.obligations = out;
    }

    fn refine(&self, path: &Path, test: &Test) -> Refined {
        // Find this row's obligation at `path`, if any.
        let Some(ix) = self.obligations.iter().position(|(p, _)| p == path) else {
            // Unconstrained at this path: the row survives both branches.
            return Refined::Both(self.clone(), self.clone());
        };
        let (_, pat) = &self.obligations[ix];
        let own = test_of(pat);
        let mut without = self.clone();
        without.obligations.remove(ix);
        if own == *test {
            // Compatible: expand sub-obligations in the yes branch.
            match pat.clone() {
                Pat::Cons(h, tl, _) => {
                    let mut hp = path.clone();
                    hp.push(0);
                    let mut tp = path.clone();
                    tp.push(1);
                    without.obligations.push((hp, *h));
                    without.obligations.push((tp, *tl));
                }
                Pat::Term { args, .. } | Pat::Tuple(args, _) => {
                    for (i, p) in args.into_iter().enumerate() {
                        let mut sp = path.clone();
                        sp.push(i);
                        without.obligations.push((sp, p));
                    }
                }
                _ => {}
            }
            without.simplify();
            Refined::Yes(without)
        } else {
            // Either mutually exclusive with the test (the row can only
            // match in the no-branch) or a different test on the same path
            // (retried in the no-branch, preserving first-match order).
            let _ = incompatible(&own, test);
            Refined::No(self.clone())
        }
    }
}

fn test_of(p: &Pat) -> Test {
    match p {
        Pat::Int(i, _) => Test::IntIs(*i),
        Pat::Bool(b, _) => Test::BoolIs(*b),
        Pat::Str(s, _) => Test::StrIs(s.clone()),
        Pat::Nil(_) => Test::IsNil,
        Pat::Cons(..) => Test::IsCons,
        Pat::Term { op, args, .. } => Test::IsTerm(op.clone(), args.len()),
        Pat::Tuple(ps, _) => Test::IsTuple(ps.len()),
        Pat::Wild(_) | Pat::Bind(..) => {
            unreachable!("irrefutable patterns are simplified away")
        }
    }
}

/// True if passing `test` rules out `own` entirely.
fn incompatible(own: &Test, test: &Test) -> bool {
    use Test::*;
    match (own, test) {
        (IntIs(a), IntIs(b)) => a != b,
        (BoolIs(a), BoolIs(b)) => a != b,
        (StrIs(a), StrIs(b)) => a != b,
        (IsNil, IsCons) | (IsCons, IsNil) => true,
        (IsTerm(a, n), IsTerm(b, m)) => a != b || n != m,
        (IsTuple(n), IsTuple(m)) => n != m,
        _ => false,
    }
}

/// Evaluates a decision tree against a value — the reference semantics used
/// to prove the compilation faithful to linear first-match.
pub fn run_decision(
    d: &Decision,
    scrutinee: &fnc2_ag::Value,
) -> Option<(usize, HashMap<String, fnc2_ag::Value>)> {
    fn at<'v>(
        v: &'v fnc2_ag::Value,
        path: &[usize],
    ) -> Option<std::borrow::Cow<'v, fnc2_ag::Value>> {
        use std::borrow::Cow;
        let mut cur = Cow::Borrowed(v);
        for &i in path {
            let next: fnc2_ag::Value = match &*cur {
                fnc2_ag::Value::Tuple(items) => items.get(i)?.clone(),
                fnc2_ag::Value::List(items) => {
                    if i == 0 {
                        items.first()?.clone()
                    } else {
                        fnc2_ag::Value::list(items.iter().skip(1).cloned())
                    }
                }
                fnc2_ag::Value::Term(t) => t.children.get(i)?.clone(),
                _ => return None,
            };
            cur = Cow::Owned(next);
        }
        Some(cur)
    }
    match d {
        Decision::Fail => None,
        Decision::Leaf { arm, bindings } => {
            let mut env = HashMap::new();
            for (n, p) in bindings {
                env.insert(n.clone(), at(scrutinee, p)?.into_owned());
            }
            Some((*arm, env))
        }
        Decision::Test {
            path,
            test,
            yes,
            no,
        } => {
            let v = at(scrutinee, path)?;
            let pass = match (test, &*v) {
                (Test::IntIs(i), fnc2_ag::Value::Int(j)) => i == j,
                (Test::BoolIs(b), fnc2_ag::Value::Bool(c)) => b == c,
                (Test::StrIs(s), fnc2_ag::Value::Str(t)) => s.as_str() == &**t,
                (Test::IsNil, fnc2_ag::Value::List(l)) => l.is_empty(),
                (Test::IsCons, fnc2_ag::Value::List(l)) => !l.is_empty(),
                (Test::IsTerm(op, ar), fnc2_ag::Value::Term(t)) => {
                    *op == t.op && *ar == t.children.len()
                }
                (Test::IsTuple(n), fnc2_ag::Value::Tuple(items)) => *n == items.len(),
                _ => false,
            };
            run_decision(if pass { yes } else { no }, scrutinee)
        }
    }
}

#[cfg(test)]
mod tests {
    use fnc2_ag::Value;
    use fnc2_olga::ast::Unit;
    use fnc2_olga::parse_unit;

    use super::*;

    fn fun_body(src: &str, name: &str) -> Expr {
        let Unit::Module(m) = parse_unit(src).unwrap() else {
            panic!()
        };
        m.funcs
            .iter()
            .find(|f| f.name == name)
            .unwrap()
            .body
            .clone()
    }

    #[test]
    fn tail_recursion_detected() {
        let src = r#"
            module m;
              function last(l : list of int, d : int) : int =
                case l of [] => d | x :: r => last(r, x) end;
              function suml(l : list of int) : int =
                case l of [] => 0 | x :: r => x + suml(r) end;
              function plain(x : int) : int = x + 1;
            end
        "#;
        let last = tail_info("last", &fun_body(src, "last"));
        assert!(last.is_tail_recursive());
        assert_eq!(last.tail_self_calls, 1);
        let suml = tail_info("suml", &fun_body(src, "suml"));
        assert!(!suml.is_tail_recursive());
        assert_eq!(suml.non_tail_self_calls, 1);
        let plain = tail_info("plain", &fun_body(src, "plain"));
        assert!(!plain.is_tail_recursive());
    }

    fn arms_of(src: &str, name: &str) -> Vec<Pat> {
        match fun_body(src, name) {
            Expr::Case { arms, .. } => arms.into_iter().map(|(p, _)| p).collect(),
            other => panic!("expected case, got {other:?}"),
        }
    }

    #[test]
    fn decision_tree_matches_linear_semantics() {
        let src = r#"
            module m;
              function f(l : list of int) : int =
                case l of
                  [] => 0
                | 1 :: [] => 10
                | x :: [] => x
                | _ :: _ :: _ => 2
                end;
            end
        "#;
        let pats = arms_of(src, "f");
        let d = compile_arms(&pats);
        assert!(d.test_count() >= 3);

        let cases = [
            (Value::list([]), 0usize),
            (Value::list([Value::Int(1)]), 1),
            (Value::list([Value::Int(7)]), 2),
            (Value::list([Value::Int(1), Value::Int(2)]), 3),
        ];
        for (v, want_arm) in cases {
            let (arm, _) = run_decision(&d, &v).unwrap_or_else(|| panic!("no match for {v:?}"));
            assert_eq!(arm, want_arm, "scrutinee {v:?}");
        }
    }

    #[test]
    fn decision_tree_bindings() {
        let src = r#"
            module m;
              function g(p : tuple(int, int)) : int =
                case p of (0, y) => y | (x, y) => x + y end;
            end
        "#;
        let pats = arms_of(src, "g");
        let d = compile_arms(&pats);
        let v = Value::tuple([Value::Int(0), Value::Int(5)]);
        let (arm, env) = run_decision(&d, &v).unwrap();
        assert_eq!(arm, 0);
        assert_eq!(env["y"], Value::Int(5));
        let v = Value::tuple([Value::Int(3), Value::Int(4)]);
        let (arm, env) = run_decision(&d, &v).unwrap();
        assert_eq!(arm, 1);
        assert_eq!(env["x"], Value::Int(3));
        assert_eq!(env["y"], Value::Int(4));
    }

    #[test]
    fn term_patterns_in_decision_trees() {
        let src = r#"
            module m;
              function h(t : tree) : int =
                case t of @leaf(n) => 1 | @fork(_, _) => 2 end;
            end
        "#;
        let pats = arms_of(src, "h");
        let d = compile_arms(&pats);
        let leaf = Value::term("leaf", [Value::Int(9)]);
        assert_eq!(run_decision(&d, &leaf).unwrap().0, 0);
        let fork = Value::term("fork", [leaf.clone(), leaf.clone()]);
        assert_eq!(run_decision(&d, &fork).unwrap().0, 1);
        let other = Value::term("odd", []);
        assert!(run_decision(&d, &other).is_none());
    }

    #[test]
    fn fail_on_no_arms() {
        assert_eq!(compile_arms(&[]), Decision::Fail);
    }
}
