//! # fnc2-codegen — the translators and the common optimizer (paper §3.2)
//!
//! The back end of the FNC-2 system: a **common optimizer** performing
//! tail-recursion elimination ([`tail_info`]) and building deterministic
//! **decision trees** for the OLGA pattern-matching construct
//! ([`compile_arms`]), followed by two translators producing complete
//! source texts for a generated evaluator: [`to_c`] and [`to_lisp`].
//!
//! Like the 1990 implementation, the C back end is deliberately naïve about
//! memory (no garbage collector) — the paper names that as the main reason
//! the bootstrapped system ran 2–4× slower than the hand-written one.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod c;
mod lisp;
mod optimizer;

pub use c::{module_to_c, to_c};
pub use lisp::to_lisp;
pub use optimizer::{compile_arms, run_decision, tail_info, Decision, Path, TailInfo, Test};
