//! The `Recorder` trait, the shared counter vocabulary, and the
//! all-in-one [`Obs`] session.
//!
//! The evaluators and analysis fixpoints are generic over `R: Recorder`.
//! [`NoopRecorder`]'s methods are empty and `trace()` is `false`, so the
//! uninstrumented instantiation monomorphizes to the exact code that ran
//! before this layer existed — hot paths pay nothing. [`Obs`] is the live
//! implementation bundling a phase timer, a metrics registry, and an
//! optional trace buffer.

use crate::event::{Event, Resolver, TraceBuffer};
use crate::json::Json;
use crate::metrics::MetricsRegistry;
use crate::phase::PhaseTimer;
use crate::profile::RuleProfiler;
use crate::span::{chrome_trace, SpanEvent, SpanTracer};

/// The shared counter vocabulary.
///
/// Every counter that used to live in one of the three ad-hoc stats
/// structs (`EvalStats`, `SpaceRunStats`, `IncrementalStats`) plus the
/// cascade-side tallies is a `Key`. Dense numbering lets instrumented
/// code count into a fixed array ([`Counters`]) without string hashing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Key {
    /// Visits performed by the exhaustive evaluator.
    EvalVisits,
    /// Semantic rules fired by the exhaustive evaluator.
    EvalEvals,
    /// Copy rules executed by the exhaustive evaluator.
    EvalCopies,
    /// Visits performed by the space-optimized evaluator.
    SpaceVisits,
    /// Semantic rules fired by the space-optimized evaluator.
    SpaceEvals,
    /// Copy rules skipped (storage-shared) by the space-optimized evaluator.
    SpaceCopiesSkipped,
    /// High-water mark of live attribute cells (max semantics).
    SpaceMaxLiveCells,
    /// Attribute cells still resident in the tree after a run.
    SpaceFinalNodeCells,
    /// Attribute instances recomputed by the incremental evaluator.
    IncReevaluated,
    /// Recomputed instances whose value changed.
    IncChanged,
    /// Recomputed instances whose value was unchanged (propagation cut).
    IncUnchanged,
    /// Fresh instances with no previous value to compare against.
    IncUnknown,
    /// Worklist pops across all GFA fixpoints.
    GfaFixpointSteps,
    /// Worklist pops that changed their node's value.
    GfaFixpointChanges,
    /// Total partitions over all phyla after the transformation.
    TransformPartitions,
    /// Visit plans computed by the transformation.
    TransformPlans,
    /// Plans served from the memo table.
    TransformReuses,
    /// Plans computed fresh.
    TransformFresh,
    /// Attribute occurrences assigned to global variables.
    SpacePlanVariables,
    /// Attribute occurrences assigned to global stacks.
    SpacePlanStacks,
    /// Attribute occurrences left in tree nodes.
    SpacePlanNode,
    /// Copy rules eliminated by storage grouping.
    SpacePlanCopiesEliminated,
    /// Constant fetches served from the evaluator's interned pool
    /// (proof that per-execution deep clones of `Arg::Const` are gone).
    EvalConstHits,
    /// Trees evaluated by the parallel batch driver.
    ParTrees,
    /// Successful steals performed by the work-stealing pool.
    ParSteals,
    /// Evaluations cut short by an exhausted [`fnc2-guard`] budget.
    GuardBudgetExceeded,
    /// Worker panics caught and classified by the batch driver.
    GuardPanicsCaught,
    /// Space-plan → exhaustive degradations taken by the pipeline.
    GuardDegraded,
    /// Per-tree retry attempts performed by the batch driver.
    ParRetries,
    /// Compiled-table artifacts loaded from the cache (or `--tables`).
    TablesCacheHit,
    /// Cache lookups that found no artifact for the fingerprint.
    TablesCacheMiss,
    /// Artifacts rejected (stale fingerprint, version skew, corruption)
    /// and recovered from by full recompilation.
    TablesCacheRejected,
    /// Values found already canonical in the hash-cons intern table.
    EvalInternHits,
    /// Fresh values canonicalized into the hash-cons intern table.
    EvalInternMisses,
    /// Semantic-function applications served from the memo cache.
    EvalMemoHits,
    /// High-water occupancy of the hash-cons intern table.
    EvalInternSize,
    /// Corrupt/mismatched artifacts moved to the cache's `quarantine/`
    /// subdirectory instead of being silently overwritten.
    TablesQuarantined,
    /// Orphaned cache temp files removed by startup sweeps or `cache-gc`.
    TablesTempsSwept,
    /// Records appended to a batch checkpoint journal.
    ParCkptAppended,
    /// Trees skipped on `--resume` because the journal already had them.
    ParCkptResumed,
    /// Diagnostics produced by the grammar lint pass.
    LintDiags,
    /// Error-severity lint diagnostics.
    LintErrors,
    /// Warning-severity lint diagnostics.
    LintWarnings,
    /// Circularity witnesses extracted and verified by the lint pass.
    LintWitnesses,
}

impl Key {
    /// Number of keys; the length of a [`Counters`] block.
    pub const COUNT: usize = Key::ALL.len();

    /// Every key, in numbering order.
    pub const ALL: [Key; 44] = [
        Key::EvalVisits,
        Key::EvalEvals,
        Key::EvalCopies,
        Key::SpaceVisits,
        Key::SpaceEvals,
        Key::SpaceCopiesSkipped,
        Key::SpaceMaxLiveCells,
        Key::SpaceFinalNodeCells,
        Key::IncReevaluated,
        Key::IncChanged,
        Key::IncUnchanged,
        Key::IncUnknown,
        Key::GfaFixpointSteps,
        Key::GfaFixpointChanges,
        Key::TransformPartitions,
        Key::TransformPlans,
        Key::TransformReuses,
        Key::TransformFresh,
        Key::SpacePlanVariables,
        Key::SpacePlanStacks,
        Key::SpacePlanNode,
        Key::SpacePlanCopiesEliminated,
        Key::EvalConstHits,
        Key::ParTrees,
        Key::ParSteals,
        Key::GuardBudgetExceeded,
        Key::GuardPanicsCaught,
        Key::GuardDegraded,
        Key::ParRetries,
        Key::TablesCacheHit,
        Key::TablesCacheMiss,
        Key::TablesCacheRejected,
        Key::EvalInternHits,
        Key::EvalInternMisses,
        Key::EvalMemoHits,
        Key::EvalInternSize,
        Key::TablesQuarantined,
        Key::TablesTempsSwept,
        Key::ParCkptAppended,
        Key::ParCkptResumed,
        Key::LintDiags,
        Key::LintErrors,
        Key::LintWarnings,
        Key::LintWitnesses,
    ];

    /// The canonical dotted metric name.
    pub fn name(self) -> &'static str {
        match self {
            Key::EvalVisits => "eval.visits",
            Key::EvalEvals => "eval.evals",
            Key::EvalCopies => "eval.copies",
            Key::SpaceVisits => "space.visits",
            Key::SpaceEvals => "space.evals",
            Key::SpaceCopiesSkipped => "space.copies_skipped",
            Key::SpaceMaxLiveCells => "space.max_live_cells",
            Key::SpaceFinalNodeCells => "space.final_node_cells",
            Key::IncReevaluated => "inc.reevaluated",
            Key::IncChanged => "inc.changed",
            Key::IncUnchanged => "inc.unchanged",
            Key::IncUnknown => "inc.unknown",
            Key::GfaFixpointSteps => "gfa.fixpoint.steps",
            Key::GfaFixpointChanges => "gfa.fixpoint.changes",
            Key::TransformPartitions => "transform.partitions",
            Key::TransformPlans => "transform.plans",
            Key::TransformReuses => "transform.reuses",
            Key::TransformFresh => "transform.fresh",
            Key::SpacePlanVariables => "space.plan.variables",
            Key::SpacePlanStacks => "space.plan.stacks",
            Key::SpacePlanNode => "space.plan.node",
            Key::SpacePlanCopiesEliminated => "space.plan.copies_eliminated",
            Key::EvalConstHits => "eval.const_hits",
            Key::ParTrees => "par.trees",
            Key::ParSteals => "par.steals",
            Key::GuardBudgetExceeded => "guard.budget_exceeded",
            Key::GuardPanicsCaught => "guard.panics_caught",
            Key::GuardDegraded => "guard.degraded",
            Key::ParRetries => "par.retries",
            Key::TablesCacheHit => "tables.cache_hit",
            Key::TablesCacheMiss => "tables.cache_miss",
            Key::TablesCacheRejected => "tables.cache_rejected",
            Key::EvalInternHits => "eval.intern_hits",
            Key::EvalInternMisses => "eval.intern_misses",
            Key::EvalMemoHits => "eval.memo_hits",
            Key::EvalInternSize => "eval.intern_size",
            Key::TablesQuarantined => "tables.quarantined",
            Key::TablesTempsSwept => "tables.temps_swept",
            Key::ParCkptAppended => "par.ckpt_appended",
            Key::ParCkptResumed => "par.ckpt_resumed",
            Key::LintDiags => "lint.diagnostics",
            Key::LintErrors => "lint.errors",
            Key::LintWarnings => "lint.warnings",
            Key::LintWitnesses => "lint.witnesses",
        }
    }

    /// True for keys with high-water-mark (max) semantics rather than
    /// additive semantics.
    pub fn is_high_water(self) -> bool {
        matches!(self, Key::SpaceMaxLiveCells | Key::EvalInternSize)
    }
}

/// A dense block of counters indexed by [`Key`].
///
/// This is what the evaluators count into internally; the legacy stats
/// structs are thin views over one of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Counters {
    values: [u64; Key::COUNT],
}

impl Default for Counters {
    fn default() -> Counters {
        Counters {
            values: [0; Key::COUNT],
        }
    }
}

impl Counters {
    /// An all-zero block.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Adds `delta` to `key`.
    #[inline]
    pub fn add(&mut self, key: Key, delta: u64) {
        self.values[key as usize] += delta;
    }

    /// Raises `key` to at least `value` (high-water mark).
    #[inline]
    pub fn raise(&mut self, key: Key, value: u64) {
        let slot = &mut self.values[key as usize];
        *slot = (*slot).max(value);
    }

    /// Reads `key`.
    #[inline]
    pub fn get(&self, key: Key) -> u64 {
        self.values[key as usize]
    }

    /// Sets `key` to `value`.
    #[inline]
    pub fn set(&mut self, key: Key, value: u64) {
        self.values[key as usize] = value;
    }

    /// Replays this block into a recorder, respecting each key's
    /// additive or high-water semantics. Zero values are skipped.
    pub fn replay<R: Recorder + ?Sized>(&self, rec: &mut R) {
        for key in Key::ALL {
            let v = self.get(key);
            if v == 0 {
                continue;
            }
            if key.is_high_water() {
                rec.count_max(key, v);
            } else {
                rec.count(key, v);
            }
        }
    }

    /// Merges another block into this one, respecting each key's
    /// additive or high-water semantics. Used by the batch driver to
    /// combine worker-local shards deterministically.
    pub fn merge(&mut self, other: &Counters) {
        for key in Key::ALL {
            let v = other.get(key);
            if key.is_high_water() {
                self.raise(key, v);
            } else {
                self.add(key, v);
            }
        }
    }
}

/// Worker shards count directly into a dense block; the batch driver
/// merges the shards and replays the sum into the real recorder.
impl Recorder for Counters {
    #[inline]
    fn count(&mut self, key: Key, delta: u64) {
        self.add(key, delta);
    }

    #[inline]
    fn count_max(&mut self, key: Key, value: u64) {
        self.raise(key, value);
    }
}

/// The instrumentation sink the cascade and the evaluators are generic
/// over.
///
/// All methods default to no-ops; `trace()` defaults to `false` so event
/// construction can be skipped entirely at call sites
/// (`if rec.trace() { rec.emit(...) }`).
pub trait Recorder {
    /// Adds `delta` to the counter `key`.
    #[inline]
    fn count(&mut self, key: Key, delta: u64) {
        let _ = (key, delta);
    }

    /// Raises the counter `key` to at least `value`.
    #[inline]
    fn count_max(&mut self, key: Key, value: u64) {
        let _ = (key, value);
    }

    /// Records `value` into the histogram named `name`.
    #[inline]
    fn observe(&mut self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Whether event tracing is active. Call sites must gate `emit` on
    /// this so uninstrumented runs never build an [`Event`].
    #[inline]
    fn trace(&self) -> bool {
        false
    }

    /// Captures an event. Only called when `trace()` is true.
    #[inline]
    fn emit(&mut self, event: Event) {
        let _ = event;
    }

    /// Whether per-rule cost profiling is active. Call sites must gate
    /// the profiling block on this so the disabled path stays free.
    #[inline]
    fn profiling(&self) -> bool {
        false
    }

    /// Decides whether the next rule firing should be wall-clock
    /// sampled. Only called when `profiling()` is true.
    #[inline]
    fn sample_rule(&mut self) -> bool {
        false
    }

    /// Attributes one rule firing to `(production, rule)`; `nanos`
    /// carries the elapsed time when the firing was sampled. Only called
    /// when `profiling()` is true.
    #[inline]
    fn rule_cost(&mut self, production: u32, rule: u32, is_copy: bool, nanos: Option<u64>) {
        let _ = (production, rule, is_copy, nanos);
    }

    /// Whether span tracing is active. Call sites must gate the span
    /// methods on this so uninstrumented runs never format span names.
    #[inline]
    fn spans(&self) -> bool {
        false
    }

    /// Opens a span. Only called when `spans()` is true.
    #[inline]
    fn span_begin(&mut self, cat: &'static str, name: String) {
        let _ = (cat, name);
    }

    /// Closes the innermost open span. Only called when `spans()` is true.
    #[inline]
    fn span_end(&mut self) {}

    /// Records a point-in-time marker. Only called when `spans()` is true.
    #[inline]
    fn span_instant(&mut self, cat: &'static str, name: String) {
        let _ = (cat, name);
    }

    /// A worker-local span shard with thread id `tid` sharing this
    /// recorder's epoch, or `None` when span tracing is off. The batch
    /// driver records per-tree spans into shards and merges them back
    /// with [`absorb_spans`](Self::absorb_spans).
    #[inline]
    fn span_shard(&self, tid: u32) -> Option<SpanTracer> {
        let _ = tid;
        None
    }

    /// Merges a worker shard's span events back into this recorder.
    #[inline]
    fn absorb_spans(&mut self, shard: SpanTracer) {
        let _ = shard;
    }
}

/// The zero-cost recorder: every method is a no-op and `trace()` is
/// `false`, so instrumented code monomorphizes back to the bare loop.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

impl Recorder for &mut NoopRecorder {}

/// A live instrumentation session: phase timer + metrics registry +
/// optional bounded event trace + optional span tracer and rule
/// profiler.
#[derive(Debug, Default)]
pub struct Obs {
    /// Cascade phase spans.
    pub phases: PhaseTimer,
    /// Named counters and histograms.
    pub metrics: MetricsRegistry,
    /// The event ring, when tracing is enabled.
    pub events: Option<TraceBuffer>,
    /// The span timeline, when span tracing is enabled.
    pub span_tracer: Option<SpanTracer>,
    /// The per-rule cost profiler, when profiling is enabled.
    pub profile: Option<RuleProfiler>,
}

impl Obs {
    /// A session with metrics and phase timing but no event tracing.
    pub fn new() -> Obs {
        Obs::default()
    }

    /// A session that additionally traces events into a ring of
    /// `capacity` entries.
    pub fn with_trace(capacity: usize) -> Obs {
        Obs {
            events: Some(TraceBuffer::new(capacity)),
            ..Obs::default()
        }
    }

    /// Enables span tracing. The tracer's epoch is shared with the phase
    /// timer so the two timestamp sources align in the exported
    /// timeline.
    pub fn enable_spans(&mut self) {
        if self.span_tracer.is_some() {
            return;
        }
        let tracer = match self.phases.epoch() {
            Some(epoch) => SpanTracer::with_epoch(epoch, 0),
            None => {
                let t = SpanTracer::new();
                self.phases.set_epoch(t.epoch());
                t
            }
        };
        self.span_tracer = Some(tracer);
    }

    /// Enables per-rule cost profiling with sampling period
    /// `sample_every` (see [`RuleProfiler::with_sample_every`]).
    pub fn enable_profile(&mut self, sample_every: u32) {
        if self.profile.is_none() {
            self.profile = Some(RuleProfiler::with_sample_every(sample_every));
        }
    }

    /// The whole session — cascade phases (tid 0) plus recorded spans —
    /// as a Chrome trace-event document, loadable in Perfetto.
    pub fn chrome_trace(&self) -> Json {
        let mut events: Vec<SpanEvent> = Vec::new();
        // Phase spans become B/E pairs on tid 0. Ids live in their own
        // namespace (bit 62 set — tracer ids are `tid << 32 | seq`, far
        // below it, and the id still fits a JSON i64) so they never
        // collide with tracer ids.
        let mut stack: Vec<(usize, u64)> = Vec::new();
        for (i, s) in self.phases.spans().iter().enumerate() {
            while stack.last().is_some_and(|&(d, _)| d >= s.depth) {
                stack.pop();
            }
            let id = (1u64 << 62) | i as u64;
            let start = (s.start_nanos / 1_000).min(u64::MAX as u128) as u64;
            let end = ((s.start_nanos + s.nanos) / 1_000).min(u64::MAX as u128) as u64;
            events.push(SpanEvent::Begin {
                id,
                parent: stack.last().map(|&(_, p)| p),
                tid: 0,
                ts_us: start,
                name: s.name.to_string(),
                cat: "phase",
            });
            events.push(SpanEvent::End {
                id,
                tid: 0,
                ts_us: end,
            });
            stack.push((s.depth, id));
        }
        if let Some(t) = &self.span_tracer {
            events.extend(t.events().iter().cloned());
        }
        let mut tids: Vec<u32> = events.iter().map(SpanEvent::tid).collect();
        tids.sort_unstable();
        tids.dedup();
        let names: Vec<(u32, String)> = tids
            .into_iter()
            .map(|tid| {
                let name = if tid == 0 {
                    "cascade".to_string()
                } else {
                    format!("worker {tid}")
                };
                (tid, name)
            })
            .collect();
        let name_refs: Vec<(u32, &str)> = names.iter().map(|(t, n)| (*t, n.as_str())).collect();
        chrome_trace(&events, &name_refs)
    }

    /// The full report — `{phases, counters, histograms, trace?}` — as a
    /// single JSON document.
    pub fn to_json(&self) -> Json {
        let metrics = self.metrics.to_json();
        let mut pairs = vec![
            ("phases".to_string(), self.phases.to_json()),
            (
                "counters".to_string(),
                metrics.get("counters").cloned().unwrap_or(Json::Null),
            ),
            (
                "histograms".to_string(),
                metrics.get("histograms").cloned().unwrap_or(Json::Null),
            ),
        ];
        if let Some(p) = &self.profile {
            if !p.is_empty() {
                pairs.push(("profile".to_string(), p.to_json(&crate::event::RawResolver)));
            }
        }
        if let Some(buf) = &self.events {
            let mut trace_pairs = vec![
                ("total", Json::Int(buf.total() as i64)),
                ("dropped", Json::Int(buf.dropped() as i64)),
            ];
            if let Some((from, to)) = buf.dropped_span() {
                trace_pairs.push((
                    "dropped_span",
                    Json::obj([
                        ("from", Json::Int(from as i64)),
                        ("to", Json::Int(to as i64)),
                    ]),
                ));
            }
            pairs.push((
                "trace".to_string(),
                Json::obj(
                    trace_pairs.into_iter().chain([(
                        "events",
                        Json::Arr(
                            buf.iter()
                                .map(|(seq, e)| {
                                    let mut obj = match e.to_json() {
                                        Json::Obj(p) => p,
                                        _ => unreachable!(),
                                    };
                                    obj.insert(0, ("seq".to_string(), Json::Int(seq as i64)));
                                    Json::Obj(obj)
                                })
                                .collect(),
                        ),
                    )]),
                ),
            ));
        }
        Json::Obj(pairs)
    }

    /// Renders the report for a human: phases, then metrics, then (if
    /// traced) the event log via `resolver`.
    pub fn render(&self, resolver: &dyn Resolver) -> String {
        let mut out = String::new();
        if !self.phases.spans().is_empty() {
            out.push_str("phases:\n");
            out.push_str(&self.phases.render());
        }
        if !self.metrics.is_empty() {
            out.push_str("metrics:\n");
            out.push_str(&self.metrics.render());
        }
        if let Some(p) = &self.profile {
            if !p.is_empty() {
                out.push_str(&p.render(resolver, 20));
            }
        }
        if let Some(buf) = &self.events {
            out.push_str(&format!(
                "trace ({} events, {} dropped):\n",
                buf.total(),
                buf.dropped()
            ));
            out.push_str(&buf.render(resolver));
        }
        out
    }
}

impl Recorder for Obs {
    #[inline]
    fn count(&mut self, key: Key, delta: u64) {
        self.metrics.count(key.name(), delta);
    }

    #[inline]
    fn count_max(&mut self, key: Key, value: u64) {
        self.metrics.count_max(key.name(), value);
    }

    #[inline]
    fn observe(&mut self, name: &'static str, value: u64) {
        self.metrics.observe(name, value);
    }

    #[inline]
    fn trace(&self) -> bool {
        self.events.is_some()
    }

    #[inline]
    fn emit(&mut self, event: Event) {
        if let Some(buf) = &mut self.events {
            buf.push(event);
        }
    }

    #[inline]
    fn profiling(&self) -> bool {
        self.profile.is_some()
    }

    #[inline]
    fn sample_rule(&mut self) -> bool {
        self.profile
            .as_mut()
            .map(RuleProfiler::should_sample)
            .unwrap_or(false)
    }

    #[inline]
    fn rule_cost(&mut self, production: u32, rule: u32, is_copy: bool, nanos: Option<u64>) {
        if let Some(p) = &mut self.profile {
            p.record(production, rule, is_copy, nanos);
        }
    }

    #[inline]
    fn spans(&self) -> bool {
        self.span_tracer.is_some()
    }

    #[inline]
    fn span_begin(&mut self, cat: &'static str, name: String) {
        if let Some(t) = &mut self.span_tracer {
            t.begin(cat, name);
        }
    }

    #[inline]
    fn span_end(&mut self) {
        if let Some(t) = &mut self.span_tracer {
            t.end();
        }
    }

    #[inline]
    fn span_instant(&mut self, cat: &'static str, name: String) {
        if let Some(t) = &mut self.span_tracer {
            t.instant(cat, name);
        }
    }

    #[inline]
    fn span_shard(&self, tid: u32) -> Option<SpanTracer> {
        self.span_tracer.as_ref().map(|t| t.shard(tid))
    }

    #[inline]
    fn absorb_spans(&mut self, shard: SpanTracer) {
        if let Some(t) = &mut self.span_tracer {
            t.absorb(shard);
        }
    }
}

impl Recorder for &mut Obs {
    #[inline]
    fn count(&mut self, key: Key, delta: u64) {
        (**self).count(key, delta);
    }

    #[inline]
    fn count_max(&mut self, key: Key, value: u64) {
        (**self).count_max(key, value);
    }

    #[inline]
    fn observe(&mut self, name: &'static str, value: u64) {
        (**self).observe(name, value);
    }

    #[inline]
    fn trace(&self) -> bool {
        (**self).trace()
    }

    #[inline]
    fn emit(&mut self, event: Event) {
        (**self).emit(event);
    }

    #[inline]
    fn profiling(&self) -> bool {
        (**self).profiling()
    }

    #[inline]
    fn sample_rule(&mut self) -> bool {
        (**self).sample_rule()
    }

    #[inline]
    fn rule_cost(&mut self, production: u32, rule: u32, is_copy: bool, nanos: Option<u64>) {
        (**self).rule_cost(production, rule, is_copy, nanos);
    }

    #[inline]
    fn spans(&self) -> bool {
        (**self).spans()
    }

    #[inline]
    fn span_begin(&mut self, cat: &'static str, name: String) {
        (**self).span_begin(cat, name);
    }

    #[inline]
    fn span_end(&mut self) {
        (**self).span_end();
    }

    #[inline]
    fn span_instant(&mut self, cat: &'static str, name: String) {
        (**self).span_instant(cat, name);
    }

    #[inline]
    fn span_shard(&self, tid: u32) -> Option<SpanTracer> {
        (**self).span_shard(tid)
    }

    #[inline]
    fn absorb_spans(&mut self, shard: SpanTracer) {
        (**self).absorb_spans(shard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_names_are_unique_and_ordered() {
        let mut names: Vec<_> = Key::ALL.iter().map(|k| k.name()).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
        for (i, k) in Key::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i);
        }
    }

    #[test]
    fn counters_replay_respects_semantics() {
        let mut c = Counters::new();
        c.add(Key::EvalVisits, 3);
        c.raise(Key::SpaceMaxLiveCells, 9);
        c.raise(Key::SpaceMaxLiveCells, 4);
        assert_eq!(c.get(Key::SpaceMaxLiveCells), 9);

        let mut obs = Obs::new();
        obs.count_max(Key::SpaceMaxLiveCells, 20);
        c.replay(&mut obs);
        assert_eq!(obs.metrics.counter("eval.visits"), 3);
        // replay must not lower an existing high-water mark
        assert_eq!(obs.metrics.counter("space.max_live_cells"), 20);
    }

    #[test]
    fn noop_recorder_reports_no_tracing() {
        let rec = NoopRecorder;
        assert!(!rec.trace());
    }

    #[test]
    fn obs_collects_counts_and_events() {
        let mut obs = Obs::with_trace(4);
        obs.count(Key::EvalEvals, 2);
        obs.observe("wave", 5);
        assert!(obs.trace());
        obs.emit(Event::RuleFired {
            node: 0,
            production: 1,
            rule: 2,
        });
        let j = obs.to_json();
        assert_eq!(
            j.get("counters")
                .and_then(|c| c.get("eval.evals"))
                .and_then(Json::as_int),
            Some(2)
        );
        let trace = j.get("trace").unwrap();
        assert_eq!(trace.get("total").and_then(Json::as_int), Some(1));
        assert_eq!(trace.get("events").and_then(Json::as_arr).unwrap().len(), 1);
    }
}
