//! # fnc2-obs — unified instrumentation for the FNC-2 reproduction
//!
//! One dependency-free layer for everything the paper's §4 evaluation
//! measures:
//!
//! * [`PhaseTimer`] — nested wall-clock spans around every stage of the
//!   Figure 3 cascade (OLGA parse/check/lower, SNC/DNC/OAG(k) tests, the
//!   SNC→l-ordered transformation, visit-sequence generation, space
//!   analysis), yielding a Table 1-style generation-time breakdown.
//! * [`MetricsRegistry`] — named counters and histograms fed by the
//!   evaluators and the analysis fixpoints through the shared [`Key`]
//!   vocabulary.
//! * [`TraceBuffer`] — a bounded ring of evaluation [`Event`]s
//!   (`VisitEnter`, `RuleFired`, `AttrStored`, `StatusComputed`, …) with
//!   a JSON-lines exporter and a human-readable pretty-printer.
//! * [`SpanTracer`] — hierarchical, thread-aware spans with Chrome
//!   trace-event JSON export (Perfetto-loadable), aligned with the phase
//!   timer through a shared epoch.
//! * [`RuleProfiler`] — per-`(production, rule)` firing counts and
//!   sampled wall time, ranked into a "hot rules" report.
//!
//! Instrumented code is generic over [`Recorder`]; the default
//! [`NoopRecorder`] compiles to nothing, so runs without `--metrics` or
//! `--trace` pay zero cost. [`Obs`] is the live session combining all
//! three facilities, and [`Json`] is the in-house JSON value used for
//! every machine-readable report.

pub mod event;
pub mod json;
pub mod metrics;
pub mod phase;
pub mod profile;
pub mod record;
pub mod span;

pub use event::{ChangeStatus, Event, RawResolver, Resolver, StorageClass, TraceBuffer};
pub use json::{Json, JsonError};
pub use metrics::{Histogram, MetricsRegistry};
pub use phase::{PhaseSpan, PhaseTimer};
pub use profile::{RuleCost, RuleProfiler, DEFAULT_SAMPLE_EVERY};
pub use record::{Counters, Key, NoopRecorder, Obs, Recorder};
pub use span::{chrome_trace, validate_chrome_trace, SpanEvent, SpanTracer};
