//! Per-rule cost profiling.
//!
//! A [`RuleProfiler`] attributes evaluation work to `(production, rule)`
//! pairs: every firing is counted, and every Nth firing is additionally
//! wall-clock sampled (the caller times the rule body and reports the
//! elapsed nanoseconds). Sampling keeps the enabled-path overhead small
//! while still ranking rules by estimated total time — the estimate for
//! a pair is `mean sampled nanoseconds × total fires`.
//!
//! The profiler lives behind the [`Recorder`](crate::Recorder) trait
//! (`profiling()` / `sample_rule()` / `rule_cost()`), so evaluators
//! instantiated with [`NoopRecorder`](crate::NoopRecorder) compile the
//! whole mechanism away.

use std::collections::HashMap;

use crate::event::Resolver;
use crate::json::Json;

/// Default sampling period: every 16th firing is wall-clock timed.
pub const DEFAULT_SAMPLE_EVERY: u32 = 16;

/// Accumulated cost of one `(production, rule)` pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleCost {
    /// Total firings observed.
    pub fires: u64,
    /// Firings that were copy rules.
    pub copy_fires: u64,
    /// Firings that were wall-clock sampled.
    pub samples: u64,
    /// Summed nanoseconds over the sampled firings.
    pub sampled_nanos: u64,
}

impl RuleCost {
    /// Mean nanoseconds per firing over the sampled subset, if any
    /// firing was sampled.
    pub fn mean_nanos(&self) -> Option<f64> {
        (self.samples > 0).then(|| self.sampled_nanos as f64 / self.samples as f64)
    }

    /// Estimated total nanoseconds: mean sampled cost scaled to every
    /// firing. Zero when nothing was sampled.
    pub fn estimated_total_nanos(&self) -> u128 {
        if self.samples == 0 {
            return 0;
        }
        (self.sampled_nanos as u128) * (self.fires as u128) / (self.samples as u128)
    }
}

/// The per-rule cost profiler.
#[derive(Clone, Debug)]
pub struct RuleProfiler {
    costs: HashMap<(u32, u32), RuleCost>,
    sample_every: u32,
    until_sample: u32,
}

impl Default for RuleProfiler {
    fn default() -> RuleProfiler {
        RuleProfiler::new()
    }
}

impl RuleProfiler {
    /// A profiler with the default sampling period.
    pub fn new() -> RuleProfiler {
        RuleProfiler::with_sample_every(DEFAULT_SAMPLE_EVERY)
    }

    /// A profiler sampling every `n`th firing (`n == 1` samples every
    /// firing; `n == 0` is treated as 1).
    pub fn with_sample_every(n: u32) -> RuleProfiler {
        let n = n.max(1);
        RuleProfiler {
            costs: HashMap::new(),
            sample_every: n,
            // Sample the first firing so short runs still get timings.
            until_sample: 1,
        }
    }

    /// The sampling period.
    pub fn sample_every(&self) -> u32 {
        self.sample_every
    }

    /// Decides whether the next firing should be wall-clock sampled.
    /// Deterministic: every `sample_every`th call (starting with the
    /// first) answers `true`.
    pub fn should_sample(&mut self) -> bool {
        self.until_sample -= 1;
        if self.until_sample == 0 {
            self.until_sample = self.sample_every;
            true
        } else {
            false
        }
    }

    /// Records one firing of rule `rule` of production `production`.
    /// `nanos` carries the wall-clock sample when the caller timed this
    /// firing (i.e. when [`should_sample`](Self::should_sample) said so).
    pub fn record(&mut self, production: u32, rule: u32, is_copy: bool, nanos: Option<u64>) {
        let c = self.costs.entry((production, rule)).or_default();
        c.fires += 1;
        if is_copy {
            c.copy_fires += 1;
        }
        if let Some(ns) = nanos {
            c.samples += 1;
            c.sampled_nanos += ns;
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Total firings across all pairs.
    pub fn total_fires(&self) -> u64 {
        self.costs.values().map(|c| c.fires).sum()
    }

    /// All pairs ranked hottest-first: by estimated total nanoseconds,
    /// then by firing count, then by `(production, rule)` — a total,
    /// deterministic order.
    pub fn ranked(&self) -> Vec<((u32, u32), RuleCost)> {
        let mut v: Vec<_> = self.costs.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by(|a, b| {
            b.1.estimated_total_nanos()
                .cmp(&a.1.estimated_total_nanos())
                .then(b.1.fires.cmp(&a.1.fires))
                .then(a.0.cmp(&b.0))
        });
        v
    }

    /// The ranked report as JSON: an array of
    /// `{production, rule, fires, copy_fires, samples, sampled_nanos,
    /// est_total_nanos}` objects, hottest first, names resolved through
    /// `resolver`.
    pub fn to_json(&self, resolver: &dyn Resolver) -> Json {
        Json::Arr(
            self.ranked()
                .into_iter()
                .map(|((p, r), c)| {
                    Json::obj([
                        ("production", Json::str(resolver.production(p))),
                        ("rule", Json::str(resolver.rule(p, r))),
                        ("production_id", Json::Int(p as i64)),
                        ("rule_id", Json::Int(r as i64)),
                        ("fires", Json::Int(c.fires as i64)),
                        ("copy_fires", Json::Int(c.copy_fires as i64)),
                        ("samples", Json::Int(c.samples as i64)),
                        ("sampled_nanos", Json::Int(c.sampled_nanos as i64)),
                        (
                            "est_total_nanos",
                            Json::Int(c.estimated_total_nanos().min(i64::MAX as u128) as i64),
                        ),
                    ])
                })
                .collect(),
        )
    }

    /// Renders the top `top` pairs as an aligned text table.
    pub fn render(&self, resolver: &dyn Resolver, top: usize) -> String {
        let ranked = self.ranked();
        let total_est: u128 = ranked.iter().map(|(_, c)| c.estimated_total_nanos()).sum();
        let mut out = format!(
            "hot rules ({} pairs, {} fires, sample 1/{}):\n{:<40} {:>10} {:>8} {:>12} {:>6}\n",
            ranked.len(),
            self.total_fires(),
            self.sample_every,
            "rule",
            "fires",
            "copies",
            "est total",
            "%"
        );
        for ((p, r), c) in ranked.iter().take(top) {
            let est = c.estimated_total_nanos();
            let pct = if total_est > 0 {
                est as f64 * 100.0 / total_est as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<40} {:>10} {:>8} {:>9.3} ms {:>5.1}%\n",
                format!("{} :: {}", resolver.production(*p), resolver.rule(*p, *r)),
                c.fires,
                c.copy_fires,
                est as f64 / 1e6,
                pct
            ));
        }
        if ranked.len() > top {
            out.push_str(&format!("... {} more pairs\n", ranked.len() - top));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::event::RawResolver;

    use super::*;

    #[test]
    fn sampling_is_periodic_and_first_fire_sampled() {
        let mut p = RuleProfiler::with_sample_every(4);
        let pattern: Vec<bool> = (0..9).map(|_| p.should_sample()).collect();
        assert_eq!(
            pattern,
            vec![true, false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn ranking_orders_by_estimated_cost_then_fires() {
        let mut p = RuleProfiler::new();
        // (0,0): many cheap fires, one sample of 10ns -> est 1000ns.
        for _ in 0..100 {
            p.record(0, 0, true, None);
        }
        p.record(0, 0, true, Some(10)); // 101 fires total
                                        // (1,0): few expensive fires -> est 5 * 1000 = 5000ns.
        for _ in 0..4 {
            p.record(1, 0, false, None);
        }
        p.record(1, 0, false, Some(1000));
        let ranked = p.ranked();
        assert_eq!(ranked[0].0, (1, 0));
        assert_eq!(ranked[1].0, (0, 0));
        assert_eq!(ranked[1].1.fires, 101);
        assert_eq!(ranked[1].1.copy_fires, 101);
        let j = p.to_json(&RawResolver);
        assert_eq!(j.as_arr().unwrap().len(), 2);
        let txt = p.render(&RawResolver, 10);
        assert!(txt.contains("p1 :: r0"));
    }

    #[test]
    fn unsampled_pairs_rank_by_fires() {
        let mut p = RuleProfiler::new();
        p.record(2, 1, false, None);
        p.record(2, 1, false, None);
        p.record(3, 0, false, None);
        let ranked = p.ranked();
        assert_eq!(ranked[0].0, (2, 1));
        assert_eq!(ranked[0].1.estimated_total_nanos(), 0);
    }
}
