//! Hierarchical, thread-aware span tracing with Chrome trace-event
//! export.
//!
//! A [`SpanTracer`] records `Begin`/`End`/`Instant` events with
//! monotonic microsecond timestamps against a shared epoch. Every
//! tracer carries a thread id (`tid`); the batch driver hands each
//! worker its own shard via [`SpanTracer::shard`] — shards share the
//! epoch, so merged timelines stay aligned — and merges them back with
//! [`SpanTracer::absorb`]. Span ids are unique across shards
//! (`tid << 32 | seq`), and begin events carry their parent's id, so
//! the nesting survives the merge even though the exported format only
//! encodes it implicitly through timestamps.
//!
//! [`chrome_trace`] serializes any event list into the Chrome
//! trace-event JSON format (the `{"traceEvents": [...]}` flavour), which
//! loads directly in Perfetto or `chrome://tracing`.
//! [`validate_chrome_trace`] checks the invariants the viewers rely on —
//! matched `B`/`E` pairs and monotonic timestamps per tid — and backs
//! the golden-file tests.

use std::time::Instant;

use crate::json::Json;

/// One traced event: a span boundary or a point-in-time marker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpanEvent {
    /// A span opened.
    Begin {
        /// Unique span id (`tid << 32 | per-shard sequence`).
        id: u64,
        /// The id of the enclosing open span on the same tracer, if any.
        parent: Option<u64>,
        /// Thread id the span runs on (0 = the coordinating thread).
        tid: u32,
        /// Microseconds since the tracer's epoch.
        ts_us: u64,
        /// Span name, e.g. `"visit 1 (root)"`.
        name: String,
        /// Category tag, e.g. `"phase"`, `"visit"`, `"par"`, `"guard"`.
        cat: &'static str,
    },
    /// The matching span closed.
    End {
        /// Id of the span being closed.
        id: u64,
        /// Thread id (must equal the begin event's).
        tid: u32,
        /// Microseconds since the tracer's epoch.
        ts_us: u64,
    },
    /// A point-in-time marker (budget trip, retry, caught panic, …).
    Instant {
        /// Thread id the event occurred on.
        tid: u32,
        /// Microseconds since the tracer's epoch.
        ts_us: u64,
        /// Marker name.
        name: String,
        /// Category tag.
        cat: &'static str,
    },
}

impl SpanEvent {
    /// The event's timestamp in microseconds since the epoch.
    pub fn ts_us(&self) -> u64 {
        match self {
            SpanEvent::Begin { ts_us, .. }
            | SpanEvent::End { ts_us, .. }
            | SpanEvent::Instant { ts_us, .. } => *ts_us,
        }
    }

    /// The thread id the event belongs to.
    pub fn tid(&self) -> u32 {
        match self {
            SpanEvent::Begin { tid, .. }
            | SpanEvent::End { tid, .. }
            | SpanEvent::Instant { tid, .. } => *tid,
        }
    }
}

/// A span recorder for one thread of execution.
///
/// Spans nest through an explicit open-span stack; [`begin`](Self::begin)
/// links each new span to the innermost open one. Events accumulate in
/// append order, which is chronological per tracer because the clock is
/// monotonic.
#[derive(Debug)]
pub struct SpanTracer {
    epoch: Instant,
    tid: u32,
    next_seq: u32,
    open: Vec<u64>,
    events: Vec<SpanEvent>,
}

impl Default for SpanTracer {
    fn default() -> SpanTracer {
        SpanTracer::new()
    }
}

impl SpanTracer {
    /// A tracer for the coordinating thread (tid 0) with a fresh epoch.
    pub fn new() -> SpanTracer {
        SpanTracer::with_epoch(Instant::now(), 0)
    }

    /// A tracer with an explicit epoch and thread id — used to align the
    /// span timeline with a [`PhaseTimer`](crate::PhaseTimer) that
    /// started earlier.
    pub fn with_epoch(epoch: Instant, tid: u32) -> SpanTracer {
        SpanTracer {
            epoch,
            tid,
            next_seq: 0,
            open: Vec::new(),
            events: Vec::new(),
        }
    }

    /// The tracer's epoch, for sharing with other timestamp sources.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// The tracer's thread id.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// A worker-local shard with the same epoch and its own `tid`.
    /// Shards record independently (no synchronization) and are merged
    /// back with [`absorb`](Self::absorb).
    pub fn shard(&self, tid: u32) -> SpanTracer {
        SpanTracer::with_epoch(self.epoch, tid)
    }

    /// Microseconds elapsed since the epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    fn next_id(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        ((self.tid as u64) << 32) | seq as u64
    }

    /// Opens a span nested under the innermost open span. Returns its id.
    pub fn begin(&mut self, cat: &'static str, name: impl Into<String>) -> u64 {
        let id = self.next_id();
        let ev = SpanEvent::Begin {
            id,
            parent: self.open.last().copied(),
            tid: self.tid,
            ts_us: self.now_us(),
            name: name.into(),
            cat,
        };
        self.open.push(id);
        self.events.push(ev);
        id
    }

    /// Closes the innermost open span. A stray `end` with nothing open is
    /// ignored rather than corrupting the stream.
    pub fn end(&mut self) {
        if let Some(id) = self.open.pop() {
            self.events.push(SpanEvent::End {
                id,
                tid: self.tid,
                ts_us: self.now_us(),
            });
        }
    }

    /// Records a point-in-time marker.
    pub fn instant(&mut self, cat: &'static str, name: impl Into<String>) {
        self.events.push(SpanEvent::Instant {
            tid: self.tid,
            ts_us: self.now_us(),
            name: name.into(),
            cat,
        });
    }

    /// Closes any spans left open (error-path cleanup before export).
    pub fn close_open(&mut self) {
        while !self.open.is_empty() {
            self.end();
        }
    }

    /// Appends a worker shard's events. Call in a deterministic (worker
    /// index) order; the Chrome exporter re-sorts by timestamp anyway.
    pub fn absorb(&mut self, mut shard: SpanTracer) {
        shard.close_open();
        self.events.append(&mut shard.events);
    }

    /// The recorded events, in append order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events as a Chrome trace document (see [`chrome_trace`]).
    pub fn to_chrome_json(&self) -> Json {
        chrome_trace(&self.events, &[])
    }
}

/// Serializes span events into the Chrome trace-event JSON format.
///
/// Events are stable-sorted by timestamp; within one tid the input order
/// is chronological, so the sort preserves per-thread `B`/`E` pairing
/// while interleaving threads correctly. `thread_names` adds `M`
/// (metadata) records so Perfetto labels the tracks.
pub fn chrome_trace(events: &[SpanEvent], thread_names: &[(u32, &str)]) -> Json {
    let mut order: Vec<&SpanEvent> = events.iter().collect();
    order.sort_by_key(|e| e.ts_us());
    let mut out: Vec<Json> = Vec::with_capacity(order.len() + thread_names.len());
    for (tid, name) in thread_names {
        out.push(Json::obj([
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(*tid as i64)),
            ("args", Json::obj([("name", Json::str(*name))])),
        ]));
    }
    for e in order {
        out.push(match e {
            SpanEvent::Begin {
                id,
                parent,
                tid,
                ts_us,
                name,
                cat,
            } => {
                let mut args = vec![("id".to_string(), Json::Int(*id as i64))];
                if let Some(p) = parent {
                    args.push(("parent".to_string(), Json::Int(*p as i64)));
                }
                Json::obj([
                    ("name", Json::str(name.clone())),
                    ("cat", Json::str(*cat)),
                    ("ph", Json::str("B")),
                    ("pid", Json::Int(1)),
                    ("tid", Json::Int(*tid as i64)),
                    ("ts", Json::Int(*ts_us as i64)),
                    ("args", Json::Obj(args)),
                ])
            }
            SpanEvent::End { tid, ts_us, .. } => Json::obj([
                ("ph", Json::str("E")),
                ("pid", Json::Int(1)),
                ("tid", Json::Int(*tid as i64)),
                ("ts", Json::Int(*ts_us as i64)),
            ]),
            SpanEvent::Instant {
                tid,
                ts_us,
                name,
                cat,
            } => Json::obj([
                ("name", Json::str(name.clone())),
                ("cat", Json::str(*cat)),
                ("ph", Json::str("i")),
                ("s", Json::str("t")),
                ("pid", Json::Int(1)),
                ("tid", Json::Int(*tid as i64)),
                ("ts", Json::Int(*ts_us as i64)),
            ]),
        });
    }
    Json::obj([
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::str("ms")),
    ])
}

/// Checks that `doc` is a structurally valid Chrome trace: a
/// `traceEvents` array whose duration events form matched `B`/`E` pairs
/// per tid with monotonically non-decreasing timestamps per tid.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate_chrome_trace(doc: &Json) -> Result<(), String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    // tid -> (open B count, last ts seen)
    let mut per_tid: std::collections::HashMap<i64, (usize, i64)> =
        std::collections::HashMap::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        if !matches!(ph, "B" | "E" | "i") {
            return Err(format!("event {i}: unsupported ph {ph:?}"));
        }
        let tid = e
            .get("tid")
            .and_then(Json::as_int)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        let ts = e
            .get("ts")
            .and_then(Json::as_int)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if ts < 0 {
            return Err(format!("event {i}: negative ts"));
        }
        if matches!(ph, "B" | "i") && e.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("event {i}: {ph} without a name"));
        }
        let entry = per_tid.entry(tid).or_insert((0, 0));
        if ts < entry.1 {
            return Err(format!(
                "event {i}: ts {ts} < previous ts {} on tid {tid}",
                entry.1
            ));
        }
        entry.1 = ts;
        match ph {
            "B" => entry.0 += 1,
            "E" => {
                if entry.0 == 0 {
                    return Err(format!("event {i}: E without open B on tid {tid}"));
                }
                entry.0 -= 1;
            }
            _ => {}
        }
    }
    for (tid, (open, _)) in per_tid {
        if open != 0 {
            return Err(format!("tid {tid}: {open} unclosed B events"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_link_parents() {
        let mut t = SpanTracer::new();
        let outer = t.begin("phase", "outer");
        let inner = t.begin("phase", "inner");
        t.end();
        t.instant("guard", "trip");
        t.end();
        assert_eq!(t.len(), 5);
        match &t.events()[1] {
            SpanEvent::Begin { id, parent, .. } => {
                assert_eq!(*id, inner);
                assert_eq!(*parent, Some(outer));
            }
            other => panic!("unexpected {other:?}"),
        }
        validate_chrome_trace(&t.to_chrome_json()).unwrap();
    }

    #[test]
    fn shards_share_the_epoch_and_merge() {
        let mut main = SpanTracer::new();
        main.begin("par", "batch");
        let mut a = main.shard(1);
        let mut b = main.shard(2);
        a.begin("par", "tree 0");
        a.end();
        b.begin("par", "tree 1");
        // left open on purpose: absorb must close it
        main.absorb(a);
        main.absorb(b);
        main.end();
        let ids: Vec<u64> = main
            .events()
            .iter()
            .filter_map(|e| match e {
                SpanEvent::Begin { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(ids.len(), dedup.len(), "span ids collide across shards");
        validate_chrome_trace(&main.to_chrome_json()).unwrap();
    }

    #[test]
    fn validator_rejects_unmatched_and_nonmonotonic() {
        let unmatched = Json::obj([(
            "traceEvents",
            Json::Arr(vec![Json::obj([
                ("name", Json::str("x")),
                ("ph", Json::str("B")),
                ("pid", Json::Int(1)),
                ("tid", Json::Int(0)),
                ("ts", Json::Int(5)),
            ])]),
        )]);
        assert!(validate_chrome_trace(&unmatched).is_err());

        let backwards = Json::obj([(
            "traceEvents",
            Json::Arr(vec![
                Json::obj([
                    ("name", Json::str("x")),
                    ("ph", Json::str("i")),
                    ("pid", Json::Int(1)),
                    ("tid", Json::Int(0)),
                    ("ts", Json::Int(5)),
                ]),
                Json::obj([
                    ("name", Json::str("y")),
                    ("ph", Json::str("i")),
                    ("pid", Json::Int(1)),
                    ("tid", Json::Int(0)),
                    ("ts", Json::Int(2)),
                ]),
            ]),
        )]);
        assert!(validate_chrome_trace(&backwards).is_err());
    }

    #[test]
    fn chrome_export_escapes_names() {
        let mut t = SpanTracer::new();
        t.begin("phase", "tricky \"name\"\nwith\tescapes\\");
        t.end();
        let doc = t.to_chrome_json();
        let text = doc.to_string();
        // The serialized document must parse back to the same value.
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        validate_chrome_trace(&back).unwrap();
    }
}
