//! A minimal, dependency-free JSON value: compact emitter plus a strict
//! parser, enough for the instrumentation reports, the JSON-lines event
//! exporter, and the benchmark table dumps. Not a general-purpose JSON
//! library — numbers are `i64` or `f64`, strings are UTF-8 only.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A float (emitted with enough precision to round-trip).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) => {
                if x.is_finite() {
                    // `{:?}` prints shortest-round-trip floats ("1.5", "0.1").
                    let s = format!("{x:?}");
                    f.write_str(&s)
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    escape_into(&mut buf, k);
                    f.write_str(&buf)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<&BTreeMap<String, u64>> for Json {
    fn from(map: &BTreeMap<String, u64>) -> Json {
        Json::Obj(
            map.iter()
                .map(|(k, v)| (k.clone(), Json::Int(*v as i64)))
                .collect(),
        )
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            at: self.at,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected {")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected :")?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.at + 5 > self.bytes.len() {
                                return Err(self.err("bad \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.at + 1..self.at + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are rejected; the emitter never
                            // produces them.
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.at += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.at += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_parse_round_trip() {
        let v = Json::obj([
            ("name", Json::str("fnc2 \"obs\"\n")),
            ("n", Json::Int(-42)),
            ("x", Json::Float(1.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Int(1), Json::str("two"), Json::Arr(vec![])]),
            ),
        ]);
        let text = v.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("01x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn control_characters_are_escaped() {
        let text = Json::str("a\u{1}b").to_string();
        assert_eq!(text, "\"a\\u0001b\"");
        assert_eq!(Json::parse(&text).unwrap(), Json::str("a\u{1}b"));
    }

    #[test]
    fn object_lookup() {
        let v = Json::obj([("k", Json::Int(7))]);
        assert_eq!(v.get("k").and_then(Json::as_int), Some(7));
        assert_eq!(v.get("missing"), None);
    }
}
