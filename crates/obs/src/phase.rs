//! Nested phase timing for the generator cascade.
//!
//! A [`PhaseTimer`] records wall-clock spans for every stage of the
//! Figure 3 cascade (OLGA parse/check/lower, the class tests, the
//! transformation, visit-sequence generation, space analysis). Spans nest:
//! the facade opens an `analysis` span and the class tests open `snc`,
//! `dnc`, … inside it. The finished report is the per-AG generation-time
//! breakdown of the paper's Table 1.

use std::time::Instant;

use crate::json::Json;

/// One (possibly still open) phase span.
#[derive(Clone, Debug)]
pub struct PhaseSpan {
    /// Phase name, e.g. `"analysis.snc"`.
    pub name: &'static str,
    /// Nesting depth (0 for top-level phases).
    pub depth: usize,
    /// Elapsed wall-clock nanoseconds; 0 while the span is open.
    pub nanos: u128,
    /// Nanoseconds from the timer's epoch to the span's start — the
    /// offset the Chrome trace exporter places the span at.
    pub start_nanos: u128,
}

/// A stack-disciplined phase timer.
///
/// `enter`/`leave` must nest; [`PhaseTimer::time`] enforces that shape.
/// All start offsets are measured against one epoch, set lazily at the
/// first `enter` (or explicitly with [`set_epoch`](Self::set_epoch) to
/// align with a span tracer).
#[derive(Debug, Default)]
pub struct PhaseTimer {
    spans: Vec<PhaseSpan>,
    open: Vec<(usize, Instant)>,
    epoch: Option<Instant>,
}

impl PhaseTimer {
    /// An empty timer.
    pub fn new() -> PhaseTimer {
        PhaseTimer::default()
    }

    /// The epoch start offsets are measured against, once any span has
    /// been entered (or an epoch was supplied).
    pub fn epoch(&self) -> Option<Instant> {
        self.epoch
    }

    /// Supplies the epoch explicitly. No-op once one is established —
    /// recorded offsets must not shift under already-captured spans.
    pub fn set_epoch(&mut self, epoch: Instant) {
        self.epoch.get_or_insert(epoch);
    }

    /// Opens a span named `name` nested under the currently open span.
    pub fn enter(&mut self, name: &'static str) {
        let now = Instant::now();
        let epoch = *self.epoch.get_or_insert(now);
        let depth = self.open.len();
        self.spans.push(PhaseSpan {
            name,
            depth,
            nanos: 0,
            start_nanos: now.duration_since(epoch).as_nanos(),
        });
        self.open.push((self.spans.len() - 1, now));
    }

    /// Closes the innermost open span.
    ///
    /// # Panics
    ///
    /// Panics if no span is open (an `enter`/`leave` imbalance).
    pub fn leave(&mut self) {
        let (ix, started) = self.open.pop().expect("leave without enter");
        self.spans[ix].nanos = started.elapsed().as_nanos();
    }

    /// Runs `f` inside a span named `name`.
    pub fn time<T>(&mut self, name: &'static str, f: impl FnOnce(&mut Self) -> T) -> T {
        self.enter(name);
        let out = f(self);
        self.leave();
        out
    }

    /// All spans, in the order they were entered.
    pub fn spans(&self) -> &[PhaseSpan] {
        &self.spans
    }

    /// Total nanoseconds of the completed span named `name` (summing over
    /// repeats, e.g. one `oag` span per tested `k`).
    pub fn nanos_of(&self, name: &str) -> u128 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.nanos)
            .sum()
    }

    /// Renders the spans as an indented text table (ns → ms formatting).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let ms = s.nanos as f64 / 1e6;
            out.push_str(&format!(
                "{:indent$}{:<24} {:>10.3} ms\n",
                "",
                s.name,
                ms,
                indent = s.depth * 2
            ));
        }
        out
    }

    /// The spans as a JSON array of `{name, depth, nanos}` objects.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.spans
                .iter()
                .map(|s| {
                    Json::obj([
                        ("name", Json::str(s.name)),
                        ("depth", Json::Int(s.depth as i64)),
                        ("nanos", Json::Int(s.nanos.min(i64::MAX as u128) as i64)),
                        (
                            "start_nanos",
                            Json::Int(s.start_nanos.min(i64::MAX as u128) as i64),
                        ),
                    ])
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_order() {
        let mut t = PhaseTimer::new();
        t.time("outer", |t| {
            t.time("inner-a", |_| {});
            t.time("inner-b", |_| {});
        });
        t.time("tail", |_| {});
        let names: Vec<_> = t.spans().iter().map(|s| (s.name, s.depth)).collect();
        assert_eq!(
            names,
            vec![("outer", 0), ("inner-a", 1), ("inner-b", 1), ("tail", 0)]
        );
        // The outer span covers its children.
        assert!(t.nanos_of("outer") >= t.nanos_of("inner-a") + t.nanos_of("inner-b"));
    }

    #[test]
    fn repeated_names_accumulate() {
        let mut t = PhaseTimer::new();
        t.time("oag", |_| {});
        t.time("oag", |_| {});
        assert_eq!(t.spans().len(), 2);
        let total = t.nanos_of("oag");
        assert_eq!(total, t.spans().iter().map(|s| s.nanos).sum::<u128>());
    }

    #[test]
    fn start_offsets_grow_with_enter_order() {
        let mut t = PhaseTimer::new();
        t.time("a", |t| t.time("b", |_| {}));
        t.time("c", |_| {});
        let starts: Vec<u128> = t.spans().iter().map(|s| s.start_nanos).collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]), "{starts:?}");
        assert!(t.epoch().is_some());
    }

    #[test]
    fn render_and_json_carry_all_spans() {
        let mut t = PhaseTimer::new();
        t.time("a", |t| t.time("b", |_| {}));
        let txt = t.render();
        assert!(txt.contains("a") && txt.contains("  b"));
        let j = t.to_json();
        assert_eq!(j.as_arr().unwrap().len(), 2);
    }
}
