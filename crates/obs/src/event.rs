//! Evaluation event tracing.
//!
//! The tracer extends the spirit of the circularity trace in
//! `fnc2-analysis` from failures to successful runs: every visit entry,
//! rule firing, attribute store, and incremental status decision can be
//! captured into a bounded ring buffer and exported as JSON lines or
//! pretty-printed for a human.
//!
//! Events carry raw indices (node ids, production ids, attribute ids, …)
//! because this crate sits below `fnc2-ag` in the dependency order; the
//! pretty-printer accepts a [`Resolver`] so higher layers can map the
//! indices back to grammar names.

use crate::json::Json;

/// Where an attribute instance was stored by the space-optimized runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageClass {
    /// A global variable (single live instance per run).
    Global,
    /// A global stack slot.
    Stack,
    /// Retained in the tree node.
    Node,
}

impl StorageClass {
    /// Lowercase tag used in JSON output.
    pub fn tag(self) -> &'static str {
        match self {
            StorageClass::Global => "global",
            StorageClass::Stack => "stack",
            StorageClass::Node => "node",
        }
    }
}

/// The incremental evaluator's verdict for a recomputed instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChangeStatus {
    /// Recomputed and the value differed.
    Changed,
    /// Recomputed (or compared) and the value was equal — propagation cut.
    Unchanged,
    /// No previous value existed (fresh subtree); nothing to compare.
    Unknown,
}

impl ChangeStatus {
    /// Lowercase tag used in JSON output.
    pub fn tag(self) -> &'static str {
        match self {
            ChangeStatus::Changed => "changed",
            ChangeStatus::Unchanged => "unchanged",
            ChangeStatus::Unknown => "unknown",
        }
    }
}

/// One evaluation event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A visit-sequence visit started at `node`.
    VisitEnter {
        /// Tree node index.
        node: u32,
        /// Production applied at the node.
        production: u32,
        /// 1-based visit number.
        visit: u16,
    },
    /// The matching visit finished.
    VisitLeave {
        /// Tree node index.
        node: u32,
        /// Production applied at the node.
        production: u32,
        /// 1-based visit number.
        visit: u16,
    },
    /// A semantic rule was evaluated.
    RuleFired {
        /// Tree node index the rule ran at.
        node: u32,
        /// Production the rule belongs to.
        production: u32,
        /// Rule index within the production.
        rule: u32,
    },
    /// A semantic rule read an attribute instance as an argument.
    AttrRead {
        /// Tree node index the instance belongs to.
        node: u32,
        /// Attribute id.
        attr: u32,
    },
    /// The space-optimized runtime wrote an attribute instance.
    AttrStored {
        /// Tree node index.
        node: u32,
        /// Attribute id.
        attr: u32,
        /// Where the instance went.
        class: StorageClass,
    },
    /// The incremental evaluator classified a recomputed instance.
    StatusComputed {
        /// Tree node index.
        node: u32,
        /// Attribute id.
        attr: u32,
        /// The verdict.
        status: ChangeStatus,
    },
}

impl Event {
    /// The event's type tag as used in JSON output.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::VisitEnter { .. } => "visit_enter",
            Event::VisitLeave { .. } => "visit_leave",
            Event::RuleFired { .. } => "rule_fired",
            Event::AttrRead { .. } => "attr_read",
            Event::AttrStored { .. } => "attr_stored",
            Event::StatusComputed { .. } => "status_computed",
        }
    }

    /// The event as a JSON object (without its sequence number).
    pub fn to_json(&self) -> Json {
        match *self {
            Event::VisitEnter {
                node,
                production,
                visit,
            }
            | Event::VisitLeave {
                node,
                production,
                visit,
            } => Json::obj([
                ("event", Json::str(self.kind())),
                ("node", Json::Int(node as i64)),
                ("production", Json::Int(production as i64)),
                ("visit", Json::Int(visit as i64)),
            ]),
            Event::RuleFired {
                node,
                production,
                rule,
            } => Json::obj([
                ("event", Json::str(self.kind())),
                ("node", Json::Int(node as i64)),
                ("production", Json::Int(production as i64)),
                ("rule", Json::Int(rule as i64)),
            ]),
            Event::AttrRead { node, attr } => Json::obj([
                ("event", Json::str(self.kind())),
                ("node", Json::Int(node as i64)),
                ("attr", Json::Int(attr as i64)),
            ]),
            Event::AttrStored { node, attr, class } => Json::obj([
                ("event", Json::str(self.kind())),
                ("node", Json::Int(node as i64)),
                ("attr", Json::Int(attr as i64)),
                ("class", Json::str(class.tag())),
            ]),
            Event::StatusComputed { node, attr, status } => Json::obj([
                ("event", Json::str(self.kind())),
                ("node", Json::Int(node as i64)),
                ("attr", Json::Int(attr as i64)),
                ("status", Json::str(status.tag())),
            ]),
        }
    }
}

/// Maps raw event indices back to grammar names for pretty-printing.
///
/// The default implementations print bare indices; `fnc2` implements
/// this against a checked grammar.
pub trait Resolver {
    /// Name of production `production`.
    fn production(&self, production: u32) -> String {
        format!("p{production}")
    }
    /// Name of attribute `attr`.
    fn attribute(&self, attr: u32) -> String {
        format!("a{attr}")
    }
    /// Display of rule `rule` of production `production`.
    fn rule(&self, production: u32, rule: u32) -> String {
        let _ = production;
        format!("r{rule}")
    }
}

/// A [`Resolver`] that prints bare indices.
#[derive(Clone, Copy, Debug, Default)]
pub struct RawResolver;

impl Resolver for RawResolver {}

/// A bounded ring buffer of traced events.
///
/// When full, the oldest events are dropped and counted; sequence
/// numbers are global, so the exporter can show exactly which prefix was
/// lost.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    events: Vec<(u64, Event)>,
    head: usize,
    next_seq: u64,
    capacity: usize,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            events: Vec::new(),
            head: 0,
            next_seq: 0,
            capacity: capacity.max(1),
        }
    }

    /// Appends an event, evicting the oldest if full. Returns the event's
    /// sequence number.
    pub fn push(&mut self, event: Event) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() < self.capacity {
            self.events.push((seq, event));
        } else {
            self.events[self.head] = (seq, event);
            self.head = (self.head + 1) % self.capacity;
        }
        seq
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of events ever pushed.
    pub fn total(&self) -> u64 {
        self.next_seq
    }

    /// Number of events evicted by overflow.
    pub fn dropped(&self) -> u64 {
        self.next_seq - self.events.len() as u64
    }

    /// The discarded sequence span as a half-open range `[from, to)`,
    /// or `None` if nothing was dropped. The ring evicts oldest-first,
    /// so the lost prefix is always `0..dropped()`.
    pub fn dropped_span(&self) -> Option<(u64, u64)> {
        let d = self.dropped();
        (d > 0).then_some((0, d))
    }

    /// Retained events, oldest first, with their sequence numbers.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Event)> {
        self.events[self.head..]
            .iter()
            .chain(self.events[..self.head].iter())
            .map(|(seq, e)| (*seq, e))
    }

    /// Number of retained events matching `pred`.
    pub fn count_matching(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.iter().filter(|(_, e)| pred(e)).count()
    }

    /// Exports the retained events as JSON lines, one object per event,
    /// each carrying its `seq`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (seq, event) in self.iter() {
            let mut obj = match event.to_json() {
                Json::Obj(pairs) => pairs,
                _ => unreachable!("events serialize to objects"),
            };
            obj.insert(0, ("seq".to_string(), Json::Int(seq as i64)));
            out.push_str(&Json::Obj(obj).to_string());
            out.push('\n');
        }
        out
    }

    /// Parses a JSON-lines export back into `(seq, object)` pairs.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line's error.
    pub fn parse_jsonl(text: &str) -> Result<Vec<(u64, Json)>, crate::json::JsonError> {
        let mut out = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let v = Json::parse(line)?;
            let seq = v.get("seq").and_then(Json::as_int).unwrap_or(0) as u64;
            out.push((seq, v));
        }
        Ok(out)
    }

    /// Renders the retained events for a human, using `resolver` for
    /// names. Visit nesting is shown by indentation.
    pub fn render(&self, resolver: &dyn Resolver) -> String {
        let mut out = String::new();
        if let Some((from, to)) = self.dropped_span() {
            out.push_str(&format!(
                "... {} earlier events dropped (seq {from}..{to} discarded; buffer capacity {})\n",
                self.dropped(),
                self.capacity
            ));
        }
        let mut depth = 0usize;
        for (seq, event) in self.iter() {
            if matches!(event, Event::VisitLeave { .. }) {
                depth = depth.saturating_sub(1);
            }
            let indent = "  ".repeat(depth);
            let line = match *event {
                Event::VisitEnter {
                    node,
                    production,
                    visit,
                } => format!(
                    "visit {visit} of node {node} [{}]",
                    resolver.production(production)
                ),
                Event::VisitLeave { visit, node, .. } => {
                    format!("end visit {visit} of node {node}")
                }
                Event::RuleFired {
                    node,
                    production,
                    rule,
                } => format!("fire {} at node {node}", resolver.rule(production, rule)),
                Event::AttrRead { node, attr } => {
                    format!("read {}@{node}", resolver.attribute(attr))
                }
                Event::AttrStored { node, attr, class } => format!(
                    "store {}@{node} -> {}",
                    resolver.attribute(attr),
                    class.tag()
                ),
                Event::StatusComputed { node, attr, status } => format!(
                    "status {}@{node}: {}",
                    resolver.attribute(attr),
                    status.tag()
                ),
            };
            out.push_str(&format!("{seq:>6}  {indent}{line}\n"));
            if matches!(event, Event::VisitEnter { .. }) {
                depth += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: u32) -> Event {
        Event::RuleFired {
            node,
            production: 0,
            rule: 0,
        }
    }

    #[test]
    fn ring_keeps_newest_in_order_on_overflow() {
        let mut buf = TraceBuffer::new(3);
        for i in 0..7 {
            buf.push(ev(i));
        }
        assert_eq!(buf.total(), 7);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 4);
        let got: Vec<(u64, u32)> = buf
            .iter()
            .map(|(seq, e)| match e {
                Event::RuleFired { node, .. } => (seq, *node),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, vec![(4, 4), (5, 5), (6, 6)]);
    }

    #[test]
    fn ring_without_overflow_keeps_everything() {
        let mut buf = TraceBuffer::new(8);
        for i in 0..5 {
            buf.push(ev(i));
        }
        assert_eq!(buf.dropped(), 0);
        let seqs: Vec<u64> = buf.iter().map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn jsonl_round_trip() {
        let mut buf = TraceBuffer::new(16);
        buf.push(Event::VisitEnter {
            node: 1,
            production: 2,
            visit: 1,
        });
        buf.push(Event::RuleFired {
            node: 1,
            production: 2,
            rule: 0,
        });
        buf.push(Event::AttrStored {
            node: 1,
            attr: 3,
            class: StorageClass::Stack,
        });
        buf.push(Event::StatusComputed {
            node: 1,
            attr: 3,
            status: ChangeStatus::Unchanged,
        });
        buf.push(Event::VisitLeave {
            node: 1,
            production: 2,
            visit: 1,
        });
        let text = buf.to_jsonl();
        assert_eq!(text.lines().count(), 5);
        let parsed = TraceBuffer::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), 5);
        assert_eq!(parsed[0].0, 0);
        assert_eq!(
            parsed[0].1.get("event").and_then(Json::as_str),
            Some("visit_enter")
        );
        assert_eq!(
            parsed[2].1.get("class").and_then(Json::as_str),
            Some("stack")
        );
        assert_eq!(
            parsed[3].1.get("status").and_then(Json::as_str),
            Some("unchanged")
        );
        assert_eq!(parsed[4].0, 4);
    }

    #[test]
    fn parse_jsonl_rejects_bad_lines() {
        assert!(TraceBuffer::parse_jsonl("{\"seq\":0}\nnot json\n").is_err());
    }

    #[test]
    fn pretty_print_indents_visits_and_reports_drops() {
        let mut buf = TraceBuffer::new(4);
        buf.push(ev(99)); // will be evicted
        buf.push(Event::VisitEnter {
            node: 0,
            production: 1,
            visit: 1,
        });
        buf.push(ev(0));
        buf.push(Event::VisitLeave {
            node: 0,
            production: 1,
            visit: 1,
        });
        buf.push(ev(7));
        let text = buf.render(&RawResolver);
        assert!(text.contains("1 earlier events dropped"));
        assert!(text.contains("seq 0..1 discarded"));
        assert_eq!(buf.dropped_span(), Some((0, 1)));
        assert!(text.contains("visit 1 of node 0 [p1]"));
        // The rule inside the visit is indented one level deeper than the
        // trailing rule outside it.
        let inside = text.lines().find(|l| l.contains("at node 0")).unwrap();
        let outside = text.lines().find(|l| l.contains("at node 7")).unwrap();
        let lead = |l: &str| l.chars().skip(8).take_while(|c| *c == ' ').count();
        assert!(lead(inside) > lead(outside));
    }
}
