//! Named counters and histograms.
//!
//! The registry is the sink the cascade's stats feed into: fixpoint
//! iteration counts from `fnc2-gfa`, partitions per phylum from the
//! SNC→l-ordered transformation, visit/eval/copy volume from the
//! evaluators, stack high-water marks from the space-optimized runtime,
//! changed/unchanged/unknown tallies from the incremental evaluator.

use std::collections::BTreeMap;

use crate::json::Json;

/// A fixed-bucket power-of-two histogram for small nonnegative samples
/// (partition counts, stack depths, re-evaluation wave sizes).
///
/// Bucket `i` counts samples `v` with `2^(i-1) < v <= 2^i` (bucket 0
/// counts zeros and ones); the last bucket is open-ended.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 16],
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        let ix = if value <= 1 {
            0
        } else {
            ((64 - (value - 1).leading_zeros()) as usize).min(self.buckets.len() - 1)
        };
        self.buckets[ix] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `{count, sum, max, mean, buckets}` as JSON.
    pub fn to_json(&self) -> Json {
        let last = self
            .buckets
            .iter()
            .rposition(|&b| b != 0)
            .map_or(0, |i| i + 1);
        Json::obj([
            ("count", Json::Int(self.count as i64)),
            ("sum", Json::Int(self.sum as i64)),
            ("max", Json::Int(self.max as i64)),
            ("mean", Json::Float(self.mean())),
            (
                "buckets",
                Json::Arr(
                    self.buckets[..last]
                        .iter()
                        .map(|&b| Json::Int(b as i64))
                        .collect(),
                ),
            ),
        ])
    }
}

/// A registry of named counters and histograms.
///
/// Names are dotted paths (`"eval.visits"`, `"gfa.fixpoint.steps"`);
/// output is sorted by name so reports are diff-stable.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the counter named `name`, creating it at zero.
    pub fn count(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Sets the counter named `name` to the larger of its current value
    /// and `value` (for high-water marks).
    pub fn count_max(&mut self, name: &str, value: u64) {
        let c = self.counters.entry(name.to_string()).or_insert(0);
        *c = (*c).max(value);
    }

    /// Records `value` into the histogram named `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Reads a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a histogram, if one was recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// `{counters: {...}, histograms: {...}}` as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("counters", Json::from(&self.counters)),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders counters and histogram summaries as aligned text lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        for (name, v) in &self.counters {
            out.push_str(&format!("{name:<width$}  {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name:<width$}  n={} mean={:.2} max={}\n",
                h.count(),
                h.mean(),
                h.max()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let mut m = MetricsRegistry::new();
        m.count("eval.visits", 3);
        m.count("eval.visits", 2);
        m.count("eval.copies", 1);
        assert_eq!(m.counter("eval.visits"), 5);
        assert_eq!(m.counter("missing"), 0);
        let names: Vec<_> = m.counters().map(|(k, _)| k.to_string()).collect();
        assert_eq!(names, vec!["eval.copies", "eval.visits"]);
    }

    #[test]
    fn count_max_keeps_high_water() {
        let mut m = MetricsRegistry::new();
        m.count_max("space.live", 4);
        m.count_max("space.live", 2);
        m.count_max("space.live", 9);
        assert_eq!(m.counter("space.live"), 9);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 5, 8, 9, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), 1_000_000);
        // 0,1 → bucket 0; 2 → bucket 1; 3,4 → bucket 2; 5,8 → bucket 3;
        // 9 → bucket 4.
        let j = h.to_json();
        let buckets = j.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets[0], Json::Int(2));
        assert_eq!(buckets[1], Json::Int(1));
        assert_eq!(buckets[2], Json::Int(2));
        assert_eq!(buckets[3], Json::Int(2));
        assert_eq!(buckets[4], Json::Int(1));
    }

    #[test]
    fn json_shape() {
        let mut m = MetricsRegistry::new();
        m.count("a.b", 7);
        m.observe("h", 3);
        let j = m.to_json();
        assert_eq!(
            j.get("counters")
                .and_then(|c| c.get("a.b"))
                .and_then(Json::as_int),
            Some(7)
        );
        assert!(j.get("histograms").and_then(|h| h.get("h")).is_some());
    }
}
