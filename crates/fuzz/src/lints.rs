//! The lint-soundness stage: static lint verdicts cross-checked against
//! the dynamic evaluators.
//!
//! The lint pass promises its findings are *sound* with respect to the
//! runtime semantics; this stage makes that promise falsifiable on the
//! same random grammar family the differential oracle uses:
//!
//! * an attribute flagged `L001` (never read) must never appear in the
//!   exhaustive evaluator's `AttrRead` trace;
//! * a rule flagged `L002` (dead) must never fire under demand-driven
//!   evaluation of the root outputs;
//! * injecting a rule mutation that removes the only reads of an
//!   attribute must *flip* that attribute to `L001` in the mutant's
//!   report (the lints notice semantic changes, not just cosmetics);
//! * every circularity witness extracted from a parametric family of
//!   genuinely circular grammars must verify edge by edge and replay as
//!   a real runtime cycle in the demand evaluator.

use std::collections::HashSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use fnc2_ag::{AttrId, Grammar, GrammarBuilder, ONode, Occ, TreeBuilder};
use fnc2_analysis::{classify, Inclusion};
use fnc2_guard::EvalBudget;
use fnc2_lint::{lint_grammar, verify_witness, Code, Liveness, WitnessKind};
use fnc2_obs::{Event, Recorder};
use fnc2_visit::{build_visit_seqs, DynamicEvaluator, EvalError, Evaluator, RootInputs};

use crate::gen::{build_grammar_pair, build_tree, CaseParams};
use crate::oracle::panic_message;

/// Counters of one passing lint case.
#[derive(Clone, Copy, Debug, Default)]
pub struct LintStats {
    /// `L001` verdicts checked against the exhaustive `AttrRead` trace.
    pub unused_checked: u64,
    /// `L002` verdicts checked against outputs-only demand evaluation.
    pub dead_checked: u64,
    /// Attributes an injected mutation flipped to `L001` as required.
    pub flips: u64,
    /// Circularity witnesses verified and replayed at runtime.
    pub witnesses: u64,
}

/// A violated lint-soundness contract.
#[derive(Clone, Debug)]
pub struct LintFailure {
    /// Case number within the run.
    pub case: u64,
    /// The reproducer params line (grammar-family oracles) or the
    /// parametric family description (witness oracle).
    pub params: String,
    /// Which contract broke, with names.
    pub detail: String,
}

impl fmt::Display for LintFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lint case {}: {}\n  reproducer: {}",
            self.case, self.detail, self.params
        )
    }
}

/// Collects the event kinds the lint oracles need: which attributes were
/// read, and which `(production, rule)` pairs fired.
#[derive(Default)]
struct EventSink {
    attr_reads: HashSet<u32>,
    fired: HashSet<(u32, u32)>,
}

impl Recorder for EventSink {
    fn trace(&self) -> bool {
        true
    }

    fn emit(&mut self, event: Event) {
        match event {
            Event::AttrRead { attr, .. } => {
                self.attr_reads.insert(attr);
            }
            Event::RuleFired {
                production, rule, ..
            } => {
                self.fired.insert((production, rule));
            }
            _ => {}
        }
    }
}

/// The set of attributes some semantic rule reads, syntactically — the
/// independent recomputation the flip oracle diffs across grammars.
fn read_attrs(g: &Grammar) -> HashSet<AttrId> {
    let mut out = HashSet::new();
    for p in g.productions() {
        for rule in g.production(p).rules() {
            for node in rule.read_nodes() {
                if let ONode::Attr(o) = node {
                    out.insert(o.attr);
                }
            }
        }
    }
    out
}

/// Runs one lint-soundness case. Odd cases inject a rule mutation so the
/// flip oracle has something to notice; every case also exercises one
/// member of the circular-grammar family.
pub fn run_lint_case(master_seed: u64, case: u64) -> Result<LintStats, LintFailure> {
    match catch_unwind(AssertUnwindSafe(|| run_lint_case_inner(master_seed, case))) {
        Ok(r) => r,
        Err(payload) => Err(LintFailure {
            case,
            params: format!("master_seed={master_seed} case={case}"),
            detail: format!("panic: {}", panic_message(&payload)),
        }),
    }
}

fn run_lint_case_inner(master_seed: u64, case: u64) -> Result<LintStats, LintFailure> {
    let params = CaseParams::for_case(master_seed, case);
    let fail = |detail: String| LintFailure {
        case,
        params: params.to_string(),
        detail,
    };
    let mut stats = LintStats::default();

    let (gg, _) = build_grammar_pair(&params);
    let g = &gg.grammar;
    let cls =
        classify(g, 2, Inclusion::Long).map_err(|e| fail(format!("transformation failed: {e}")))?;
    let report = lint_grammar(g, Some(&cls));
    if report.with_code(Code::NotSnc).count() != 0 {
        return Err(fail(
            "generator promises SNC, lint reported L010".to_string(),
        ));
    }

    // The diagnostics must agree with the analysis they claim to render.
    let live = Liveness::compute(g);
    let unused = live.unused_attrs(g);
    if unused.len() != report.with_code(Code::UnusedAttribute).count() {
        return Err(fail(format!(
            "liveness found {} unused attrs but the report carries {} L001 diagnostics",
            unused.len(),
            report.with_code(Code::UnusedAttribute).count()
        )));
    }
    let dead = live.dead_rules(g);
    if dead.len() != report.with_code(Code::DeadRule).count() {
        return Err(fail(format!(
            "liveness found {} dead rules but the report carries {} L002 diagnostics",
            dead.len(),
            report.with_code(Code::DeadRule).count()
        )));
    }

    let Some(lo) = cls.l_ordered.as_ref() else {
        return Err(fail("generated grammar rejected as non-SNC".to_string()));
    };
    let seqs = build_visit_seqs(g, lo);
    let tree = build_tree(&gg, &params);
    let inputs = RootInputs::new();

    // ---- L001 vs the exhaustive evaluator's AttrRead trace. ------------
    // The exhaustive evaluator fires every rule, so its read trace is the
    // *loosest* dynamic bound: an attribute it never reads on this tree
    // can legitimately still be read on another tree, but an L001 verdict
    // must hold on EVERY tree — one observed read refutes it.
    let mut sink = EventSink::default();
    Evaluator::new(g, &seqs)
        .evaluate_recorded(&tree, &inputs, &mut sink)
        .map_err(|e| fail(format!("exhaustive evaluation failed: {e}")))?;
    for a in &unused {
        if sink.attr_reads.contains(&(a.index() as u32)) {
            return Err(fail(format!(
                "attribute `{}` is flagged L001 (never read) but the exhaustive \
                 evaluator read it",
                g.attr(*a).name()
            )));
        }
    }
    stats.unused_checked += unused.len() as u64;

    // ---- L002 vs outputs-only demand evaluation. -----------------------
    // Static liveness over-approximates dynamic demand, so a rule the
    // liveness pass kills must never fire when only the root outputs are
    // demanded.
    let mut dsink = EventSink::default();
    DynamicEvaluator::new(g)
        .evaluate_outputs_recorded_guarded(&tree, &inputs, &EvalBudget::default(), None, &mut dsink)
        .map_err(|e| fail(format!("demand evaluation failed: {e}")))?;
    for (p, r) in &dead {
        if dsink.fired.contains(&(p.index() as u32, *r)) {
            return Err(fail(format!(
                "rule {r} of production `{}` is flagged L002 (dead) but fired under \
                 outputs-only demand evaluation",
                g.production(*p).name()
            )));
        }
    }
    stats.dead_checked += dead.len() as u64;

    // ---- Injected mutation must flip the expected L001 verdicts. -------
    // The mutant replaces one rule body by a constant, deleting its
    // reads. Every attribute those were the only reads of (and that is
    // not a root output) must now be flagged L001 — and cannot have been
    // in the faithful report, since the faithful rule read it. Most
    // rules read attributes other rules also read, which makes the
    // check vacuous, so scan a few candidate rules for one whose reads
    // are uniquely its own before settling for whichever came last.
    if case % 2 == 1 {
        let faithful_reads = read_attrs(g);
        let root_outputs: HashSet<AttrId> = g.synthesized(g.root()).into_iter().collect();
        let mut picked: Option<(Grammar, Vec<AttrId>)> = None;
        for attempt in 0..8u64 {
            let mut p = params;
            p.inject = case + attempt;
            let (_, m) = build_grammar_pair(&p);
            let Some(m) = m else { break };
            let mut lost: Vec<AttrId> = faithful_reads
                .difference(&read_attrs(&m))
                .filter(|a| !root_outputs.contains(a))
                .copied()
                .collect();
            lost.sort_by_key(|a| a.index());
            let hit = !lost.is_empty();
            picked = Some((m, lost));
            if hit {
                break;
            }
        }
        if let Some((mutant, lost)) = picked {
            let mutant_unused: HashSet<AttrId> = Liveness::compute(&mutant)
                .unused_attrs(&mutant)
                .into_iter()
                .collect();
            let faithful_unused: HashSet<AttrId> = unused.iter().copied().collect();
            for a in &lost {
                if !mutant_unused.contains(a) {
                    return Err(fail(format!(
                        "mutation deleted the only reads of `{}` but the mutant lint \
                         did not flip it to L001",
                        g.attr(*a).name()
                    )));
                }
                if faithful_unused.contains(a) {
                    return Err(fail(format!(
                        "`{}` was already L001 in the faithful grammar, so the flip \
                         oracle proves nothing — read-set diff is wrong",
                        g.attr(*a).name()
                    )));
                }
            }
            stats.flips += lost.len() as u64;
        }
    }

    // ---- Circularity witnesses verify and replay. ----------------------
    stats.witnesses += run_witness_case(case).map_err(|detail| LintFailure {
        case,
        params: format!("circular family, cycle length {}", 2 + (case % 3)),
        detail,
    })?;

    Ok(stats)
}

/// A parametric family of genuinely circular grammars: the root copies
/// `A.i` from `A`'s last synthesized attribute while the leaf chains
/// `s0 := i, s1 := s0, …`, closing an `i → s0 → … → s_last → i` cycle of
/// length `k + 1` through the context.
fn circular_grammar(k: usize) -> Grammar {
    let mut b = GrammarBuilder::new("fuzz-circ");
    let s = b.phylum("S");
    let a = b.phylum("A");
    let out = b.syn(s, "out");
    let i = b.inh(a, "i");
    let syns: Vec<_> = (0..k).map(|j| b.syn(a, format!("s{j}"))).collect();
    let top = b.production("top", s, &[a]);
    b.copy(top, Occ::lhs(out), Occ::new(1, syns[k - 1]));
    b.copy(top, Occ::new(1, i), Occ::new(1, syns[k - 1]));
    let leaf = b.production("leaf", a, &[]);
    b.copy(leaf, Occ::lhs(syns[0]), Occ::lhs(i));
    for j in 1..k {
        b.copy(leaf, Occ::lhs(syns[j]), Occ::lhs(syns[j - 1]));
    }
    b.finish().expect("family is well-formed")
}

/// Checks one member of the circular family: the SNC test must produce a
/// witness, the witness must verify edge by edge, the lint report must
/// carry it as L010, and the demand evaluator must hit the same cycle at
/// runtime.
fn run_witness_case(case: u64) -> Result<u64, String> {
    let k = 2 + (case % 3) as usize;
    let g = circular_grammar(k);
    let cls = classify(&g, 1, Inclusion::Long).map_err(|e| format!("classify failed: {e}"))?;
    let Some(w) = cls.snc.witness.as_ref() else {
        return Err(format!(
            "cycle length {k}: grammar is circular but the SNC test produced no witness"
        ));
    };
    let edges = verify_witness(&g, &cls, WitnessKind::Snc, w)
        .map_err(|e| format!("cycle length {k}: witness failed verification: {e}"))?;
    if edges.len() != w.cycle.len() - 1 {
        return Err(format!(
            "cycle length {k}: witness has {} edges but {} were justified",
            w.cycle.len() - 1,
            edges.len()
        ));
    }
    let report = lint_grammar(&g, Some(&cls));
    if report.with_code(Code::NotSnc).count() != 1 {
        return Err(format!(
            "cycle length {k}: expected exactly one L010 diagnostic, got {}",
            report.with_code(Code::NotSnc).count()
        ));
    }

    // Replay: the static cycle must be a real runtime cycle.
    let mut tb = TreeBuilder::new(&g);
    let leaf = g
        .production_by_name("leaf")
        .expect("family has a leaf production");
    let top = g
        .production_by_name("top")
        .expect("family has a top production");
    let child = tb.node(leaf, &[]).expect("leaf builds");
    let root = tb.node(top, &[child]).expect("top builds");
    let tree = tb.finish_root(root).expect("root phylum");
    match DynamicEvaluator::new(&g).evaluate(&tree, &RootInputs::new()) {
        Err(EvalError::CircularInstance { .. }) => Ok(1),
        Err(e) => Err(format!(
            "cycle length {k}: expected CircularInstance, demand evaluation failed with: {e}"
        )),
        Ok(_) => Err(format!(
            "cycle length {k}: the witness claims a cycle but demand evaluation succeeded"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_clean() {
        let mut stats = LintStats::default();
        for case in 0..16 {
            let s = run_lint_case(7, case).unwrap_or_else(|f| panic!("{f}"));
            stats.unused_checked += s.unused_checked;
            stats.dead_checked += s.dead_checked;
            stats.flips += s.flips;
            stats.witnesses += s.witnesses;
        }
        // Every case replays a witness; the generator family is rich
        // enough that the sweep exercises the other oracles too.
        assert_eq!(stats.witnesses, 16);
        assert!(stats.unused_checked + stats.dead_checked > 0);
    }

    #[test]
    fn witness_family_covers_all_cycle_lengths() {
        for case in 0..3 {
            assert_eq!(run_witness_case(case), Ok(1), "case {case}");
        }
    }
}
