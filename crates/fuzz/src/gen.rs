//! Deterministic case generation: SNC-by-construction attribute grammars,
//! budget-bounded random trees, and random edit scripts.
//!
//! Every case is a pure function of a [`CaseParams`] record, so the
//! rendered params line *is* the reproducer: parse it back and the exact
//! grammar, tree, and edit script are regenerated bit for bit.
//!
//! ## The pass-partition scheme
//!
//! Generated grammars are strongly non-circular **by construction**. Each
//! non-root phylum carries `passes` inherited/synthesized attribute pairs
//! `(i_v, s_v)`; visit `v` of a node computes `i_v` of each child in
//! order, visits it, and finally computes `s_v` of the node itself. A rule
//! defining `i_v` of child `j` may read the LHS `i_w` for `w ≤ v`, any
//! child's `s_w` for `w < v`, and `s_v` of children left of `j`; a rule
//! defining the LHS `s_v` may read the LHS `i_w` and any child's `s_w` for
//! `w ≤ v` (optionally through a production-local). This is exactly an
//! l-ordered discipline with the identity partition, so the whole cascade
//! (SNC test onward) must accept every generated grammar.

use std::fmt;

use fnc2_ag::{
    Arg, AttrId, Grammar, GrammarBuilder, NodeId, ONode, Occ, PhylumId, ProductionId, Tree,
    TreeBuilder, Value,
};
use fnc2_corpus::rng::Rng;

/// The complete, self-describing parameter record of one differential
/// case. The generator is deterministic in these fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CaseParams {
    /// Seed of every random choice in the case.
    pub seed: u64,
    /// Number of non-root phyla.
    pub phyla: usize,
    /// Number of inherited/synthesized passes per phylum.
    pub passes: usize,
    /// Maximum arity of non-leaf productions.
    pub max_children: usize,
    /// Approximate node budget of the generated tree.
    pub tree_budget: usize,
    /// Number of subtree-replacement edits fed to the incremental
    /// evaluator.
    pub edits: usize,
    /// `0` for a faithful case; otherwise selects one semantic rule whose
    /// body is deliberately corrupted in a second grammar build (used to
    /// prove the oracle catches injected mutations).
    pub inject: u64,
}

impl CaseParams {
    /// Derives the parameters of case number `case` of a fuzzing run
    /// seeded with `master_seed`.
    pub fn for_case(master_seed: u64, case: u64) -> CaseParams {
        let mut r = Rng::seed_from_u64(
            master_seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case.wrapping_add(1)),
        );
        CaseParams {
            seed: r.next_u64(),
            phyla: r.gen_usize(1, 4),
            passes: r.gen_usize(1, 3),
            max_children: r.gen_usize(1, 3),
            tree_budget: r.gen_usize(4, 48),
            edits: r.gen_usize(0, 3),
            inject: 0,
        }
    }

    /// Parses a params line as printed by [`fmt::Display`], i.e.
    /// whitespace-separated `key=value` tokens.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending token or missing key.
    pub fn parse(s: &str) -> Result<CaseParams, String> {
        let mut p = CaseParams {
            seed: 0,
            phyla: 0,
            passes: 0,
            max_children: 0,
            tree_budget: 0,
            edits: 0,
            inject: 0,
        };
        let mut seen = [false; 7];
        for tok in s.split_whitespace() {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got `{tok}`"))?;
            let n: u64 = value
                .parse()
                .map_err(|_| format!("`{key}` needs an integer, got `{value}`"))?;
            let slot = match key {
                "seed" => {
                    p.seed = n;
                    0
                }
                "phyla" => {
                    p.phyla = n as usize;
                    1
                }
                "passes" => {
                    p.passes = n as usize;
                    2
                }
                "max_children" => {
                    p.max_children = n as usize;
                    3
                }
                "tree_budget" => {
                    p.tree_budget = n as usize;
                    4
                }
                "edits" => {
                    p.edits = n as usize;
                    5
                }
                "inject" => {
                    p.inject = n;
                    6
                }
                other => return Err(format!("unknown key `{other}`")),
            };
            seen[slot] = true;
        }
        const KEYS: [&str; 7] = [
            "seed",
            "phyla",
            "passes",
            "max_children",
            "tree_budget",
            "edits",
            "inject",
        ];
        for (i, ok) in seen.iter().enumerate() {
            if !ok {
                return Err(format!("missing key `{}`", KEYS[i]));
            }
        }
        Ok(p)
    }
}

impl fmt::Display for CaseParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={} phyla={} passes={} max_children={} tree_budget={} edits={} inject={}",
            self.seed,
            self.phyla,
            self.passes,
            self.max_children,
            self.tree_budget,
            self.edits,
            self.inject
        )
    }
}

/// A generated grammar plus the structural indexes the tree and edit
/// generators navigate by.
#[derive(Debug)]
pub struct GenGrammar {
    /// The grammar itself.
    pub grammar: Grammar,
    /// The non-root phyla, in generation order (`P0`, `P1`, …).
    pub phyla: Vec<PhylumId>,
    /// The nullary production of each phylum, parallel to `phyla`.
    pub leaf_of: Vec<ProductionId>,
    /// The non-leaf productions of each phylum, with the phylum *indexes*
    /// of their children.
    pub inner_of: Vec<Vec<(ProductionId, Vec<usize>)>>,
    /// The root production (`start : Root ::= P0`).
    pub start: ProductionId,
}

impl GenGrammar {
    /// The index into `phyla` of phylum `ph`, or `None` for the root.
    pub fn phylum_index(&self, ph: PhylumId) -> Option<usize> {
        self.phyla.iter().position(|&x| x == ph)
    }
}

/// The constant an injected mutant rule is replaced by — far outside the
/// small-integer pools the faithful generator draws from.
pub const MUTANT_CONSTANT: i64 = 24269;

/// Builds the faithful grammar for `params` and, when `params.inject` is
/// nonzero, a structurally identical mutant grammar with exactly one rule
/// body replaced by [`MUTANT_CONSTANT`]. Phylum/production/attribute ids
/// coincide between the two, so trees built against the faithful grammar
/// evaluate under the mutant as well.
pub fn build_grammar_pair(params: &CaseParams) -> (GenGrammar, Option<Grammar>) {
    let (gg, rules) = build_with(params, None);
    if params.inject == 0 || rules == 0 {
        return (gg, None);
    }
    let idx = ((params.inject - 1) % rules as u64) as usize;
    let (mutant, _) = build_with(params, Some(idx));
    (gg, Some(mutant.grammar))
}

/// Builds only the faithful grammar for `params`.
pub fn build_grammar(params: &CaseParams) -> GenGrammar {
    build_with(params, None).0
}

/// Per-phylum attribute table of the generator.
struct Ph {
    id: PhylumId,
    inh: Vec<AttrId>,
    syn: Vec<AttrId>,
}

/// The (name, arity) menu of total, wrapping semantic functions.
const FUNCS: [(&str, usize); 5] = [
    ("incw", 1),
    ("addw", 2),
    ("subw", 2),
    ("mulw", 2),
    ("mix3", 3),
];

fn build_with(params: &CaseParams, inject_idx: Option<usize>) -> (GenGrammar, usize) {
    let mut rng = Rng::seed_from_u64(params.seed);
    let mut g = GrammarBuilder::new("fuzzcase");
    g.func("incw", 1, |a| Value::Int(a[0].as_int().wrapping_add(1)));
    g.func("addw", 2, |a| {
        Value::Int(a[0].as_int().wrapping_add(a[1].as_int()))
    });
    g.func("subw", 2, |a| {
        Value::Int(a[0].as_int().wrapping_sub(a[1].as_int()))
    });
    g.func("mulw", 2, |a| {
        Value::Int(a[0].as_int().wrapping_mul(a[1].as_int()))
    });
    g.func("mix3", 3, |a| {
        Value::Int((a[0].as_int() ^ a[1].as_int().rotate_left(7)).wrapping_add(a[2].as_int()))
    });

    let n = params.phyla.max(1);
    let passes = params.passes.clamp(1, 4);
    let max_children = params.max_children.clamp(1, 4);

    let root = g.phylum("Root");
    let out = g.syn(root, "out");

    let mut phs: Vec<Ph> = Vec::with_capacity(n);
    for i in 0..n {
        let id = g.phylum(format!("P{i}"));
        let inh = (1..=passes).map(|v| g.inh(id, format!("i{v}"))).collect();
        let syn = (1..=passes).map(|v| g.syn(id, format!("s{v}"))).collect();
        phs.push(Ph { id, inh, syn });
    }

    // Structural draws first (identical between faithful and mutant
    // builds): leaf + 1–2 inner productions per phylum.
    let mut leaf_of = Vec::with_capacity(n);
    let mut inner_of: Vec<Vec<(ProductionId, Vec<usize>)>> = Vec::with_capacity(n);
    for i in 0..n {
        leaf_of.push(g.production(format!("leaf{i}"), phs[i].id, &[]));
        let count = rng.gen_usize(1, 2);
        let mut inner = Vec::with_capacity(count);
        for j in 0..count {
            let arity = rng.gen_usize(1, max_children);
            let kids: Vec<usize> = (0..arity).map(|_| rng.gen_usize(0, n - 1)).collect();
            let rhs: Vec<PhylumId> = kids.iter().map(|&k| phs[k].id).collect();
            inner.push((g.production(format!("p{i}_{j}"), phs[i].id, &rhs), kids));
        }
        inner_of.push(inner);
    }
    let start = g.production("start", root, &[phs[0].id]);

    // Rule emission. `counter` numbers every emitted rule so the injected
    // mutation can address one deterministically.
    let mut counter = 0usize;
    for i in 0..n {
        let prods: Vec<(ProductionId, Vec<usize>)> = std::iter::once((leaf_of[i], Vec::new()))
            .chain(inner_of[i].iter().cloned())
            .collect();
        for (p, kids) in prods {
            emit_production_rules(
                &mut g,
                &mut rng,
                &phs,
                p,
                i,
                &kids,
                passes,
                inject_idx,
                &mut counter,
            );
        }
    }

    // Root production: the child's inherited attributes per pass, then the
    // output from the child's synthesized attributes.
    for v in 1..=passes {
        let pool: Vec<Arg> = (1..v)
            .map(|w| Occ::new(1, phs[0].syn[w - 1]).into())
            .collect();
        emit_rule(
            &mut g,
            &mut rng,
            start,
            Occ::new(1, phs[0].inh[v - 1]).into(),
            &pool,
            inject_idx,
            &mut counter,
        );
    }
    let out_pool: Vec<Arg> = (1..=passes)
        .map(|v| Occ::new(1, phs[0].syn[v - 1]).into())
        .collect();
    emit_rule(
        &mut g,
        &mut rng,
        start,
        Occ::lhs(out).into(),
        &out_pool,
        inject_idx,
        &mut counter,
    );

    let grammar = g.finish().expect("generated grammar is well-formed");
    (
        GenGrammar {
            grammar,
            phyla: phs.iter().map(|p| p.id).collect(),
            leaf_of,
            inner_of,
            start,
        },
        counter,
    )
}

/// Emits the full rule set of one production of phylum `i` under the
/// pass-partition discipline described in the module docs.
#[allow(clippy::too_many_arguments)]
fn emit_production_rules(
    g: &mut GrammarBuilder,
    rng: &mut Rng,
    phs: &[Ph],
    p: ProductionId,
    i: usize,
    kids: &[usize],
    passes: usize,
    inject_idx: Option<usize>,
    counter: &mut usize,
) {
    let lhs_inh = |v: usize| -> Arg { Occ::lhs(phs[i].inh[v - 1]).into() };
    let child_syn =
        |j: usize, v: usize| -> Arg { Occ::new(j as u16, phs[kids[j - 1]].syn[v - 1]).into() };
    for v in 1..=passes {
        // Child inherited attributes, in visit order.
        for j in 1..=kids.len() {
            let mut pool: Vec<Arg> = (1..=v).map(&lhs_inh).collect();
            for w in 1..v {
                for m in 1..=kids.len() {
                    pool.push(child_syn(m, w));
                }
            }
            for m in 1..j {
                pool.push(child_syn(m, v));
            }
            emit_rule(
                g,
                rng,
                p,
                Occ::new(j as u16, phs[kids[j - 1]].inh[v - 1]).into(),
                &pool,
                inject_idx,
                counter,
            );
        }
        // Sources available once every child has completed pass v.
        let mut pool: Vec<Arg> = (1..=v).map(&lhs_inh).collect();
        for w in 1..=v {
            for m in 1..=kids.len() {
                pool.push(child_syn(m, w));
            }
        }
        // Optionally route through a production-local.
        if rng.gen_bool(0.4) {
            let local = g.local(p, format!("t{v}"));
            emit_rule(g, rng, p, ONode::Local(local), &pool, inject_idx, counter);
            pool.push(Arg::Node(ONode::Local(local)));
        }
        emit_rule(
            g,
            rng,
            p,
            Occ::lhs(phs[i].syn[v - 1]).into(),
            &pool,
            inject_idx,
            counter,
        );
    }
}

/// Emits one rule for `target`, drawn from `pool`: a small constant, a
/// copy, or a call of a random total function. The random draws are made
/// unconditionally so the faithful and mutant builds consume the same
/// stream; when `counter` matches `inject_idx` the drawn rule is replaced
/// by `target := MUTANT_CONSTANT`.
fn emit_rule(
    g: &mut GrammarBuilder,
    rng: &mut Rng,
    p: ProductionId,
    target: ONode,
    pool: &[Arg],
    inject_idx: Option<usize>,
    counter: &mut usize,
) {
    let mutate = inject_idx == Some(*counter);
    *counter += 1;
    if mutate {
        // Draw exactly what the faithful build draws, then discard.
        if pool.is_empty() || rng.gen_bool(0.15) {
            let _ = rng.gen_range(-8, 8);
        } else if rng.gen_bool(0.5) {
            let _ = rng.choose(pool);
        } else {
            let (_, arity) = *rng.choose(&FUNCS);
            for _ in 0..arity {
                let _ = rng.choose(pool);
            }
        }
        g.constant(p, target, Value::Int(MUTANT_CONSTANT));
        return;
    }
    if pool.is_empty() || rng.gen_bool(0.15) {
        let k = rng.gen_range(-8, 8);
        g.constant(p, target, Value::Int(k));
    } else if rng.gen_bool(0.5) {
        let src = rng.choose(pool).clone();
        g.copy(p, target, src);
    } else {
        let (f, arity) = *rng.choose(&FUNCS);
        let args: Vec<Arg> = (0..arity).map(|_| rng.choose(pool).clone()).collect();
        g.call(p, target, f, args);
    }
}

/// Builds the case's random tree, bounded by `params.tree_budget` nodes.
pub fn build_tree(gg: &GenGrammar, params: &CaseParams) -> Tree {
    let mut rng = Rng::seed_from_u64(params.seed ^ 0xdead_beef);
    let mut tb = TreeBuilder::new(&gg.grammar);
    let mut budget = params.tree_budget.max(1) as isize;
    let first = grow(gg, &mut tb, &mut rng, 0, &mut budget);
    let root = tb.node(gg.start, &[first]).expect("start builds");
    tb.finish_root(root).expect("root phylum")
}

/// Builds a random standalone subtree deriving phylum index `i` (for edit
/// scripts); `finish` without the axiom check.
pub fn build_subtree(gg: &GenGrammar, rng: &mut Rng, i: usize, budget: usize) -> Tree {
    let mut tb = TreeBuilder::new(&gg.grammar);
    let mut b = budget.max(1) as isize;
    let root = grow(gg, &mut tb, rng, i, &mut b);
    tb.finish(root)
}

fn grow(
    gg: &GenGrammar,
    tb: &mut TreeBuilder<'_>,
    rng: &mut Rng,
    i: usize,
    budget: &mut isize,
) -> NodeId {
    *budget -= 1;
    let inner = &gg.inner_of[i];
    if *budget <= 0 || inner.is_empty() || rng.gen_bool(0.25) {
        return tb.node(gg.leaf_of[i], &[]).expect("leaf builds");
    }
    let (p, kids) = rng.choose(inner).clone();
    let children: Vec<NodeId> = kids.iter().map(|&k| grow(gg, tb, rng, k, budget)).collect();
    tb.node(p, &children).expect("inner builds")
}

/// Renders a tree as an indented preorder listing of production names —
/// the human-readable half of a reproducer (the params line is the
/// machine-readable half).
pub fn render_tree(g: &Grammar, tree: &Tree) -> String {
    let mut out = String::new();
    for (n, depth) in tree.preorder() {
        let prod = g.production(tree.node(n).production());
        out.push_str(&"  ".repeat(depth));
        out.push_str(prod.name());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_roundtrip_through_display() {
        let p = CaseParams {
            seed: 0xfeed_beef,
            phyla: 3,
            passes: 2,
            max_children: 2,
            tree_budget: 17,
            edits: 1,
            inject: 4,
        };
        assert_eq!(CaseParams::parse(&p.to_string()), Ok(p));
        assert!(CaseParams::parse("seed=1 phyla=2").is_err());
        assert!(CaseParams::parse("bogus").is_err());
    }

    #[test]
    fn generator_is_deterministic_and_injection_preserves_structure() {
        let p = CaseParams::for_case(42, 3);
        let a = build_grammar(&p);
        let b = build_grammar(&p);
        assert_eq!(a.grammar.rule_count(), b.grammar.rule_count());
        assert_eq!(a.grammar.production_count(), b.grammar.production_count());

        let injected = CaseParams { inject: 7, ..p };
        let (gg, mutant) = build_grammar_pair(&injected);
        let mutant = mutant.expect("inject > 0 yields a mutant");
        assert_eq!(gg.grammar.production_count(), mutant.production_count());
        assert_eq!(gg.grammar.rule_count(), mutant.rule_count());
        assert_eq!(gg.grammar.phylum_count(), mutant.phylum_count());
    }

    #[test]
    fn every_generated_grammar_is_snc() {
        use fnc2_analysis::{classify, Inclusion};
        for case in 0..24 {
            let p = CaseParams::for_case(0xfc2, case);
            let gg = build_grammar(&p);
            let c = classify(&gg.grammar, 2, Inclusion::Long).expect("transform succeeds");
            assert!(c.is_evaluable(), "case {case} ({p}) fell out of SNC");
        }
    }

    #[test]
    fn trees_fit_their_budget() {
        for case in 0..12 {
            let p = CaseParams::for_case(99, case);
            let gg = build_grammar(&p);
            let t = build_tree(&gg, &p);
            assert!(t.size() >= 2);
            // Once the budget is spent every pending child slot still costs
            // one forced leaf, so the hard bound carries a max_children factor.
            let bound = p.tree_budget * p.max_children + 2;
            assert!(t.size() <= bound, "{} > {}", t.size(), bound);
        }
    }
}
