//! Front-end fuzzing: mutated and truncated OLGA sources through the full
//! lexer → parser → checker → lowering pipeline, asserting the pipeline
//! returns `Err` (or `Ok`, for harmless mutations) and never panics.

use std::panic::{catch_unwind, AssertUnwindSafe};

use fnc2_corpus::rng::Rng;
use fnc2_corpus::{module_source, sized_ag_source, BLOCKS_OLGA_LIST, MINIPASCAL_OLGA};
use fnc2_olga::{compile_ag_source, compile_modules};

use crate::oracle::panic_message;

/// A front-end case that panicked instead of returning a result.
#[derive(Clone, Debug)]
pub struct FrontFailure {
    /// Index of the case within the run.
    pub case: u64,
    /// Name of the base source the mutation started from.
    pub base: &'static str,
    /// Human-readable description of the applied mutations.
    pub mutations: String,
    /// The panic payload's message.
    pub panic: String,
    /// The mutated source, verbatim, for replay.
    pub source: String,
}

/// Outcome counters of a front-end fuzzing run.
#[derive(Clone, Copy, Debug, Default)]
pub struct FrontStats {
    /// Mutants the pipeline still accepted.
    pub accepted: u64,
    /// Mutants the pipeline rejected with a proper error.
    pub rejected: u64,
}

/// Whether a base source is a whole-grammar AG or a bare module, which
/// decides the entry point it is fed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Entry {
    Ag,
    Modules,
}

fn bases() -> Vec<(&'static str, Entry, String)> {
    vec![
        ("minipascal", Entry::Ag, MINIPASCAL_OLGA.to_string()),
        ("blocks", Entry::Ag, BLOCKS_OLGA_LIST.to_string()),
        ("sized-ag", Entry::Ag, sized_ag_source("fz", 140)),
        ("module-c", Entry::Modules, module_source("C1", 90)),
        ("module-f", Entry::Modules, module_source("F1", 160)),
    ]
}

/// Runs one mutated front-end case. `Ok(true)` means the mutant still
/// compiled, `Ok(false)` means it was rejected with an error; `Err` means
/// the pipeline panicked.
pub fn run_front_case(master_seed: u64, case: u64) -> Result<bool, FrontFailure> {
    let mut rng = Rng::seed_from_u64(
        master_seed ^ 0xf0f0_f0f0_0000_0000 ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case + 1),
    );
    let bases = bases();
    let (name, entry, base) = &bases[rng.gen_usize(0, bases.len() - 1)];
    let mut chars: Vec<char> = base.chars().collect();
    let n_mut = rng.gen_usize(1, 3);
    let mut descr = Vec::new();
    for _ in 0..n_mut {
        descr.push(mutate(&mut rng, &mut chars));
    }
    let source: String = chars.into_iter().collect();
    let mutations = descr.join("; ");

    let src = source.clone();
    let entry = *entry;
    let outcome = catch_unwind(AssertUnwindSafe(move || match entry {
        Entry::Ag => compile_ag_source(&src).map(|_| ()).map_err(|_| ()),
        Entry::Modules => compile_modules(&src).map(|_| ()).map_err(|_| ()),
    }));
    match outcome {
        Ok(Ok(())) => Ok(true),
        Ok(Err(())) => Ok(false),
        Err(payload) => Err(FrontFailure {
            case,
            base: name,
            mutations,
            panic: panic_message(&payload),
            source,
        }),
    }
}

const NASTY: &[char] = &[
    '\0',
    '\u{7f}',
    '"',
    '\'',
    '\\',
    '\n',
    '\t',
    'é',
    '∀',
    '\u{1F980}',
];

const TOKENS: &[&str] = &[
    "attribute grammar",
    "module",
    "synthesized",
    "inherited",
    "::=",
    ":=",
    "with",
    "where",
    "(",
    ")",
    ";;",
    "end",
    "-- ",
    "if",
];

/// Applies one random mutation in place and describes it. All index
/// arithmetic is over `char`s, so mutants stay valid UTF-8 by
/// construction.
fn mutate(rng: &mut Rng, chars: &mut Vec<char>) -> String {
    if chars.is_empty() {
        chars.push('x');
        return "seed empty source with 'x'".to_string();
    }
    match rng.gen_usize(0, 5) {
        0 => {
            let at = rng.gen_usize(0, chars.len() - 1);
            chars.truncate(at);
            format!("truncate to {at} chars")
        }
        1 => {
            // Delete one line.
            let lines: Vec<usize> = std::iter::once(0)
                .chain(
                    chars
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| **c == '\n')
                        .map(|(i, _)| i + 1),
                )
                .collect();
            let li = rng.gen_usize(0, lines.len() - 1);
            let start = lines[li];
            let end = lines.get(li + 1).copied().unwrap_or(chars.len());
            chars.drain(start..end);
            format!("delete line {li}")
        }
        2 => {
            // Duplicate one line.
            let lines: Vec<usize> = std::iter::once(0)
                .chain(
                    chars
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| **c == '\n')
                        .map(|(i, _)| i + 1),
                )
                .collect();
            let li = rng.gen_usize(0, lines.len() - 1);
            let start = lines[li];
            let end = lines.get(li + 1).copied().unwrap_or(chars.len());
            let line: Vec<char> = chars[start..end].to_vec();
            chars.splice(start..start, line);
            format!("duplicate line {li}")
        }
        3 => {
            let a = rng.gen_usize(0, chars.len() - 1);
            let b = rng.gen_usize(0, chars.len() - 1);
            chars.swap(a, b);
            format!("swap chars {a} and {b}")
        }
        4 => {
            let at = rng.gen_usize(0, chars.len() - 1);
            let c = *rng.choose(NASTY);
            chars[at] = c;
            format!("replace char {at} with {c:?}")
        }
        _ => {
            let at = rng.gen_usize(0, chars.len());
            let tok = *rng.choose(TOKENS);
            chars.splice(at..at, tok.chars());
            format!("insert {tok:?} at char {at}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_fuzz_never_panics_small() {
        let mut stats = FrontStats::default();
        for case in 0..200 {
            match run_front_case(0, case) {
                Ok(true) => stats.accepted += 1,
                Ok(false) => stats.rejected += 1,
                Err(f) => panic!(
                    "case {case} panicked on base {} ({}): {}\n--- source ---\n{}",
                    f.base, f.mutations, f.panic, f.source
                ),
            }
        }
        // Mutations are aggressive; most mutants must be rejected, and
        // both outcomes must occur (the harness really is exercising the
        // pipeline, not short-circuiting).
        assert!(stats.rejected > 0, "no mutant was rejected: {stats:?}");
    }

    #[test]
    fn mutations_are_deterministic() {
        let a = run_front_case(7, 3);
        let b = run_front_case(7, 3);
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y),
            (Err(x), Err(y)) => assert_eq!(x.source, y.source),
            _ => panic!("nondeterministic outcome"),
        }
    }
}
