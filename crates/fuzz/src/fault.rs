//! The fault-injection oracle stage: deterministic seed-driven faults over
//! guarded batch evaluation.
//!
//! Each case derives an SNC grammar and a small batch of trees from its
//! seed, poisons some of them with a [`FaultPlan`] (failed rules, panics
//! mid-evaluation or on worker entry, semantic failures on entry,
//! spurious deadline expiry — each transient or permanent), runs the
//! batch through [`fnc2_par::batch_evaluate_guarded`] with retries, and
//! asserts the guard contract:
//!
//! 1. every injected fault surfaces as a *classified* outcome
//!    ([`TreeOutcome::Failed`] with a budget-kind error or the injected
//!    semantic-failure marker, or [`TreeOutcome::Panicked`] carrying the
//!    injected marker message) — never a process abort and never a
//!    silent wrong answer;
//! 2. trees whose faults are transient converge, after retry, to results
//!    **bit-identical** to a sequential unfaulted exhaustive run;
//! 3. unfaulted trees in the same batch are never disturbed.

use std::panic::{catch_unwind, AssertUnwindSafe};

use fnc2_analysis::{classify, Inclusion};
use fnc2_guard::{EvalBudget, FaultPlan, INJECTED_FAILURE_MSG, INJECTED_PANIC_MSG};
use fnc2_par::{batch_evaluate_guarded, TreeOutcome};
use fnc2_visit::{build_visit_seqs, Evaluator, RootInputs};

use crate::gen::{build_grammar_pair, build_tree, CaseParams};
use crate::oracle::panic_message;

/// How many trees each fault case batches.
const BATCH: usize = 5;
/// Retries granted to the guarded batch (enough to clear any transient
/// fault, which fires on attempt 0 only).
const RETRIES: u32 = 2;

/// A violation of the fault-isolation contract on one case.
#[derive(Clone, Debug)]
pub struct FaultFailure {
    /// The grammar/tree case (its params line reproduces the batch).
    pub params: CaseParams,
    /// The fault-plan seed (`FaultPlan::from_seed(fault_seed, BATCH)`).
    pub fault_seed: u64,
    /// What went wrong, with tree index and outcome detail.
    pub detail: String,
}

impl std::fmt::Display for FaultFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fault case (params: {}, fault seed {:#x}): {}",
            self.params, self.fault_seed, self.detail
        )
    }
}

/// Size counters of one passing fault case.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultStats {
    /// Trees in the batch.
    pub trees: u64,
    /// Faults the plan injected.
    pub faults: u64,
    /// Panics the batch driver caught and classified.
    pub panics_caught: u64,
    /// Retries the batch driver spent.
    pub retries: u64,
}

/// Runs one fault-injection case. The whole case runs under
/// `catch_unwind`, so "an injected fault escaped as a panic" is reported
/// as a [`FaultFailure`], never as a test-harness abort.
pub fn run_fault_case(seed: u64, case: u64) -> Result<FaultStats, FaultFailure> {
    let params = CaseParams {
        inject: 0,
        edits: 0,
        ..CaseParams::for_case(seed ^ 0xfa01_7000, case)
    };
    let fault_seed = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ case;
    let fail = |detail: String| FaultFailure {
        params,
        fault_seed,
        detail,
    };
    match catch_unwind(AssertUnwindSafe(|| {
        run_fault_case_inner(&params, fault_seed)
    })) {
        Ok(r) => r,
        Err(payload) => Err(fail(format!(
            "case escaped the guard as a panic: {}",
            panic_message(&payload)
        ))),
    }
}

fn run_fault_case_inner(params: &CaseParams, fault_seed: u64) -> Result<FaultStats, FaultFailure> {
    let fail = |detail: String| FaultFailure {
        params: *params,
        fault_seed,
        detail,
    };

    let (gg, _) = build_grammar_pair(params);
    let g = &gg.grammar;
    let cls =
        classify(g, 2, Inclusion::Long).map_err(|e| fail(format!("transformation failed: {e}")))?;
    let lo = cls
        .l_ordered
        .as_ref()
        .ok_or_else(|| fail("generated grammar rejected as non-SNC".to_string()))?;
    let seqs = build_visit_seqs(g, lo);
    let ev = Evaluator::new(g, &seqs);
    let inputs = RootInputs::new();

    // A batch of distinct trees: same grammar, stepped node budgets.
    let trees: Vec<_> = (0..BATCH)
        .map(|i| {
            build_tree(
                &gg,
                &CaseParams {
                    tree_budget: params.tree_budget + 3 * i,
                    ..*params
                },
            )
        })
        .collect();

    // The unfaulted sequential reference every survivor must match.
    let mut reference = Vec::with_capacity(trees.len());
    for (i, t) in trees.iter().enumerate() {
        let (vals, _) = ev
            .evaluate(t, &inputs)
            .map_err(|e| fail(format!("reference evaluation of tree {i} failed: {e}")))?;
        reference.push(vals);
    }

    let plan = FaultPlan::from_seed(fault_seed, trees.len());
    let threads = 1 + (fault_seed % 4) as usize;
    let report = batch_evaluate_guarded(
        &ev,
        &trees,
        &inputs,
        threads,
        &EvalBudget::default(),
        RETRIES,
        Some(&plan),
    );
    if report.outcomes.len() != trees.len() {
        return Err(fail(format!(
            "batch lost trees: {} outcomes for {} trees",
            report.outcomes.len(),
            trees.len()
        )));
    }

    let permanent = plan.permanent_trees();
    for (i, outcome) in report.outcomes.iter().enumerate() {
        match outcome {
            TreeOutcome::Ok(vals, _) => {
                // Survivors — unfaulted, transient-faulted-then-retried, or
                // trees whose planned fault never fired — must be
                // bit-identical to the sequential reference.
                for (n, _) in trees[i].preorder() {
                    let ph = trees[i].phylum(g, n);
                    for &attr in g.phylum(ph).attrs() {
                        if vals.get(g, n, attr) != reference[i].get(g, n, attr) {
                            return Err(fail(format!(
                                "tree {i}: node {n:?} attr {} diverged from the \
                                 unfaulted reference after fault/retry",
                                g.attr(attr).name()
                            )));
                        }
                    }
                }
            }
            TreeOutcome::Failed(e) => {
                if plan.fault_for(i, RETRIES).is_none() {
                    return Err(fail(format!(
                        "tree {i} failed ({e}) without a surviving planned fault"
                    )));
                }
                if !e.is_budget() && !e.to_string().contains(INJECTED_FAILURE_MSG) {
                    return Err(fail(format!(
                        "tree {i}: injected fault surfaced as an unclassified error: {e}"
                    )));
                }
            }
            TreeOutcome::Panicked(msg) => {
                if !msg.contains(INJECTED_PANIC_MSG) {
                    return Err(fail(format!(
                        "tree {i} panicked with a non-injected message: {msg}"
                    )));
                }
                if !permanent.contains(&i) {
                    return Err(fail(format!(
                        "tree {i}: transient injected panic survived {RETRIES} retries"
                    )));
                }
            }
        }
    }

    Ok(FaultStats {
        trees: trees.len() as u64,
        faults: plan.faults().len() as u64,
        panics_caught: report.panics_caught,
        retries: report.retries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_fault_cases_hold_the_contract() {
        let mut faults = 0;
        let mut panics = 0;
        for case in 0..24 {
            match run_fault_case(0, case) {
                Ok(stats) => {
                    faults += stats.faults;
                    panics += stats.panics_caught;
                }
                Err(f) => panic!("{f}"),
            }
        }
        assert!(faults > 0, "the plans must inject something");
        assert!(panics > 0, "some injected faults must be panics");
    }

    #[test]
    fn fault_cases_are_deterministic() {
        for case in 0..4 {
            let a = run_fault_case(7, case).expect("clean");
            let b = run_fault_case(7, case).expect("clean");
            assert_eq!(a.faults, b.faults);
            assert_eq!(a.trees, b.trees);
        }
    }
}
