//! The crash-recovery oracle stage: injected storage faults over the
//! crash-consistent storage layer.
//!
//! Each case derives a deterministic
//! [`IoFaultPlan`](fnc2_vfs::IoFaultPlan) from its seed and crashes one
//! of the two durable write paths mid-flight:
//!
//! * **artifact publication** ([`TableStore::store`]) — torn/short
//!   writes, ENOSPC, EINTR, failed renames, and power cuts against the
//!   temp-file + rename protocol;
//! * **checkpointed batch evaluation**
//!   ([`fnc2_par::batch_evaluate_checkpointed`]) — the same faults
//!   against the append-only journal, with a mixed-outcome
//!   [`FaultPlan`] poisoning some trees so there is real state worth
//!   journaling.
//!
//! After the crash the case *recovers* over a healthy backend and
//! asserts the storage contract:
//!
//! 1. a published artifact is **complete or absent** — a bit-different
//!    artifact under its fingerprint name is a violation;
//! 2. a crashed batch, resumed, produces records **bit-identical** to an
//!    uninterrupted run (outcome classes *and* value digests);
//! 3. recovery leaves **zero stray files** — no orphaned temps, no
//!    leftover journal copies;
//! 4. every storage fault surfaces as a classified error, never a panic.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use fnc2_analysis::{classify, Inclusion};
use fnc2_guard::{EvalBudget, FaultPlan};
use fnc2_par::{batch_evaluate_checkpointed, Checkpoint, CkptError};
use fnc2_tables::store::TableStore;
use fnc2_vfs::{FaultVfs, RealVfs, Vfs};
use fnc2_visit::{build_visit_seqs, Evaluator, RootInputs};

use crate::gen::{build_grammar_pair, build_tree, CaseParams};
use crate::oracle::panic_message;

/// Trees per checkpointed-batch crash case.
const BATCH: usize = 6;

/// Distinct scratch directories across cases and runs.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A violation of the crash-consistency contract on one case.
#[derive(Clone, Debug)]
pub struct CrashFailure {
    /// Master seed of the run.
    pub seed: u64,
    /// Case index (reproduces the fault plan and workload).
    pub case: u64,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for CrashFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "crash case (seed {}, case {}): {}",
            self.seed, self.case, self.detail
        )
    }
}

/// Size counters of one passing crash case.
#[derive(Clone, Copy, Debug, Default)]
pub struct CrashStats {
    /// Storage faults the plan actually injected.
    pub io_faults: u64,
    /// Journal records recovered by the post-crash resume.
    pub resumed: u64,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A fresh scratch directory unique to this case and process.
fn scratch_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "fnc2-fuzz-crash-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("scratch dir");
    d
}

/// Runs one crash-recovery case. The whole case runs under
/// `catch_unwind`, so "a storage fault escaped as a panic" is reported
/// as a [`CrashFailure`], never as a harness abort.
pub fn run_crash_case(seed: u64, case: u64) -> Result<CrashStats, CrashFailure> {
    let fail = |detail: String| CrashFailure { seed, case, detail };
    match catch_unwind(AssertUnwindSafe(|| run_crash_case_inner(seed, case))) {
        Ok(r) => r,
        Err(payload) => Err(fail(format!(
            "case escaped the storage layer as a panic: {}",
            panic_message(&payload)
        ))),
    }
}

fn run_crash_case_inner(seed: u64, case: u64) -> Result<CrashStats, CrashFailure> {
    let fault_seed = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ case ^ 0xc4a5_4e51;
    // Alternate between the two durable write paths.
    if case.is_multiple_of(2) {
        run_store_crash(seed, case, fault_seed)
    } else {
        run_checkpoint_crash(seed, case, fault_seed)
    }
}

/// Asserts `dir` contains exactly `keep` (sorted) after recovery — in
/// particular no `*.tmp-*` stragglers from the crashed writer.
fn assert_clean_dir(
    dir: &Path,
    keep: &[PathBuf],
    fail: &dyn Fn(String) -> CrashFailure,
) -> Result<(), CrashFailure> {
    let entries = RealVfs
        .read_dir(dir)
        .map_err(|e| fail(format!("listing recovered dir failed: {e}")))?;
    if entries != keep {
        return Err(fail(format!(
            "recovery left stray files: found {entries:?}, expected {keep:?}"
        )));
    }
    Ok(())
}

/// Crash point family A: artifact publication through [`TableStore`].
fn run_store_crash(seed: u64, case: u64, fault_seed: u64) -> Result<CrashStats, CrashFailure> {
    let fail = |detail: String| CrashFailure { seed, case, detail };
    let dir = scratch_dir("store");

    // A deterministic artifact blob (content is irrelevant to the
    // protocol; bit-identity after recovery is what matters).
    let mut st = fault_seed;
    let len = 64 + (splitmix(&mut st) % 192) as usize;
    let bytes: Vec<u8> = (0..len).map(|_| splitmix(&mut st) as u8).collect();
    let fingerprint = splitmix(&mut st) | 1;

    let faulty = FaultVfs::from_seed(fault_seed);
    let store = TableStore::new(&dir, &faulty);
    // The write may succeed or die on any injected fault — both are
    // legitimate; what is *not* legitimate is a panic (caught by the
    // driver) or a torn artifact visible after recovery.
    let wrote = store.store(fingerprint, &bytes).is_ok();
    let io_faults = faulty.injected_faults();

    // Recovery: healthy backend, startup sweep, then the contract.
    let real = RealVfs;
    let recovered = TableStore::new(&dir, &real);
    recovered
        .sweep_temps()
        .map_err(|e| fail(format!("recovery sweep failed: {e}")))?;
    let artifact = recovered.artifact_path(fingerprint);
    match recovered.load(fingerprint) {
        Ok(Some(got)) => {
            if got != bytes {
                return Err(fail(format!(
                    "torn artifact published: {} bytes stored, {} expected",
                    got.len(),
                    bytes.len()
                )));
            }
            assert_clean_dir(&dir, &[artifact], &fail)?;
        }
        Ok(None) => {
            if wrote {
                return Err(fail(
                    "store reported success but the artifact is absent after recovery".into(),
                ));
            }
            assert_clean_dir(&dir, &[], &fail)?;
        }
        Err(e) => {
            return Err(fail(format!(
                "recovered artifact unreadable over a healthy backend: {e}"
            )));
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    Ok(CrashStats {
        io_faults,
        resumed: 0,
    })
}

/// Crash point family B: the checkpointed batch journal.
fn run_checkpoint_crash(seed: u64, case: u64, fault_seed: u64) -> Result<CrashStats, CrashFailure> {
    let fail = |detail: String| CrashFailure { seed, case, detail };
    let params = CaseParams {
        inject: 0,
        edits: 0,
        ..CaseParams::for_case(seed ^ 0xc8a5_1000, case)
    };

    let (gg, _) = build_grammar_pair(&params);
    let g = &gg.grammar;
    let cls =
        classify(g, 2, Inclusion::Long).map_err(|e| fail(format!("transformation failed: {e}")))?;
    let lo = cls
        .l_ordered
        .as_ref()
        .ok_or_else(|| fail("generated grammar rejected as non-SNC".to_string()))?;
    let seqs = build_visit_seqs(g, lo);
    let ev = Evaluator::new(g, &seqs);
    let inputs = RootInputs::new();
    let trees: Vec<_> = (0..BATCH)
        .map(|i| {
            build_tree(
                &gg,
                &CaseParams {
                    tree_budget: params.tree_budget + 3 * i,
                    ..params
                },
            )
        })
        .collect();

    // Poison some trees so the journal holds mixed outcome classes.
    let plan = FaultPlan::from_seed(fault_seed, trees.len());
    let budget = EvalBudget::default();
    let threads = 1 + (fault_seed % 3) as usize;
    let batch_fp = fault_seed ^ 0x5eed_c0de;
    let real = RealVfs;

    // Ground truth: an uninterrupted checkpointed run.
    let truth_dir = scratch_dir("ckpt-truth");
    let mut truth = Checkpoint::create(&real, &truth_dir.join("b.ckpt"), batch_fp)
        .map_err(|e| fail(format!("ground-truth journal failed: {e}")))?;
    let want = batch_evaluate_checkpointed(
        &ev,
        &trees,
        &inputs,
        threads,
        &budget,
        1,
        Some(&plan),
        0,
        &real,
        &mut truth,
        0,
    )
    .map_err(|e| fail(format!("ground-truth batch failed: {e}")))?;

    // Crash run: same batch over a fault-injecting backend.
    let crash_dir = scratch_dir("ckpt-crash");
    let path = crash_dir.join("b.ckpt");
    let faulty = FaultVfs::from_seed(fault_seed);
    let crashed = Checkpoint::create(&faulty, &path, batch_fp).and_then(|mut ckpt| {
        batch_evaluate_checkpointed(
            &ev,
            &trees,
            &inputs,
            threads,
            &budget,
            1,
            Some(&plan),
            0,
            &faulty,
            &mut ckpt,
            0,
        )
    });
    let io_faults = faulty.injected_faults();

    let mut resumed_records = 0u64;
    let got = match crashed {
        // No fault fired before completion — the records must already
        // match the uninterrupted run.
        Ok(report) => report.records,
        Err(CkptError::Io(_)) => {
            // The classified crash. Recover over a healthy backend: a
            // journal with a readable header resumes (torn tails are
            // compacted away); a journal torn inside the header — or
            // never created — starts over, which is recovery too.
            let mut ckpt = match Checkpoint::open(&real, &path, batch_fp) {
                Ok((c, info)) => {
                    resumed_records = info.resumed as u64;
                    c
                }
                Err(_) => Checkpoint::create(&real, &path, batch_fp)
                    .map_err(|e| fail(format!("post-crash journal re-creation failed: {e}")))?,
            };
            batch_evaluate_checkpointed(
                &ev,
                &trees,
                &inputs,
                threads,
                &budget,
                1,
                Some(&plan),
                0,
                &real,
                &mut ckpt,
                0,
            )
            .map_err(|e| fail(format!("post-crash resume failed: {e}")))?
            .records
        }
        Err(e) => {
            return Err(fail(format!("crash surfaced as a non-storage error: {e}")));
        }
    };

    if got != want.records {
        return Err(fail(format!(
            "resumed batch diverged from the uninterrupted run:\n  want {:?}\n  got  {:?}",
            want.records, got
        )));
    }
    // Compaction on completion leaves exactly the canonical journal.
    assert_clean_dir(&crash_dir, &[path], &fail)?;

    let _ = std::fs::remove_dir_all(&truth_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
    Ok(CrashStats {
        io_faults,
        resumed: resumed_records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_crash_cases_hold_the_contract() {
        let mut io_faults = 0;
        let mut resumed = 0;
        for case in 0..24 {
            match run_crash_case(0, case) {
                Ok(stats) => {
                    io_faults += stats.io_faults;
                    resumed += stats.resumed;
                }
                Err(f) => panic!("{f}"),
            }
        }
        assert!(io_faults > 0, "the plans must inject storage faults");
        assert!(resumed > 0, "some crashes must resume journaled records");
    }

    #[test]
    fn crash_cases_are_deterministic() {
        for case in 0..4 {
            let a = run_crash_case(11, case).expect("clean");
            let b = run_crash_case(11, case).expect("clean");
            assert_eq!(a.io_faults, b.io_faults);
            assert_eq!(a.resumed, b.resumed);
        }
    }
}
