//! # fnc2-fuzz — differential fuzzing oracle over the evaluator cascade
//!
//! The FNC-2 reproduction ships four evaluators for the same attribute
//! grammars — the exhaustive visit-sequence evaluator, the demand-driven
//! dynamic evaluator, the space-optimized evaluator, and the incremental
//! evaluator — plus a static space plan with a symbolic stack simulation.
//! Any two of them disagreeing on any attribute of any tree is a bug by
//! definition. This crate turns that redundancy into an oracle:
//!
//! * [`gen`] draws random **SNC-by-construction** attribute grammars
//!   (mixed synthesized/inherited attributes, production-locals,
//!   well-typed random semantic rules), random trees, and random edit
//!   scripts — all as pure functions of a [`gen::CaseParams`] value, so a
//!   one-line params string *is* the reproducer.
//! * [`oracle`] runs each case through the whole cascade, re-validates
//!   the space plan from first principles ([`fnc2_space::validate_plan`]),
//!   reports the first divergence, and shrinks it by deterministic
//!   parameter reduction.
//! * [`front`] feeds mutated and truncated OLGA sources through the
//!   lexer → parser → checker → lowering pipeline and asserts it returns
//!   `Err` instead of panicking.
//!
//! The `fnc2c fuzz` subcommand drives [`run`] with a seed and budgets.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod crash;
pub mod fault;
pub mod front;
pub mod gen;
pub mod lints;
pub mod oracle;

pub use crash::{run_crash_case, CrashFailure, CrashStats};
pub use fault::{run_fault_case, FaultFailure, FaultStats};
pub use front::{FrontFailure, FrontStats};
pub use gen::{build_grammar_pair, build_tree, CaseParams, GenGrammar, MUTANT_CONSTANT};
pub use lints::{run_lint_case, LintFailure, LintStats};
pub use oracle::{render_reproducer, run_case, shrink, CaseStats, Divergence};

use fnc2_obs::Obs;

/// Budgets and switches for one fuzzing run.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Master seed; every case derives its own stream from it.
    pub seed: u64,
    /// Number of differential grammar cases.
    pub grammar_cases: u64,
    /// Number of front-end mutation cases.
    pub front_cases: u64,
    /// Number of fault-injection cases (guarded batch + [`fault`] stage).
    pub fault_cases: u64,
    /// Number of crash-recovery cases (storage faults + [`crash`] stage).
    pub crash_cases: u64,
    /// Number of lint-soundness cases ([`lints`] stage).
    pub lint_cases: u64,
    /// Whether to shrink the first divergence before reporting it.
    pub shrink: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 0,
            grammar_cases: 256,
            front_cases: 512,
            fault_cases: 128,
            crash_cases: 64,
            lint_cases: 256,
            shrink: true,
        }
    }
}

/// What a fuzzing run found, if anything.
#[derive(Clone, Debug)]
pub enum FuzzFailure {
    /// Two cascade stages disagreed on a generated case.
    Divergence(Divergence),
    /// The OLGA front end panicked on a mutated source.
    FrontPanic(FrontFailure),
    /// An injected fault escaped classification or corrupted a survivor.
    Fault(FaultFailure),
    /// A storage fault violated the crash-consistency contract.
    Crash(CrashFailure),
    /// A static lint verdict was refuted by a dynamic evaluator.
    Lint(LintFailure),
}

/// The outcome of a fuzzing run: counters plus the first failure.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Grammar cases run to completion (clean or diverged).
    pub grammar_cases: u64,
    /// Total tree nodes evaluated across clean cases.
    pub nodes: u64,
    /// Incremental edits applied across clean cases.
    pub edits: u64,
    /// Front-end cases run.
    pub front_cases: u64,
    /// Front-end mutants the pipeline still accepted.
    pub front_accepted: u64,
    /// Front-end mutants rejected with a proper error.
    pub front_rejected: u64,
    /// Fault-injection cases run.
    pub fault_cases: u64,
    /// Faults injected across clean fault cases.
    pub faults_injected: u64,
    /// Panics caught and classified across clean fault cases.
    pub panics_caught: u64,
    /// Crash-recovery cases run.
    pub crash_cases: u64,
    /// Storage faults injected across clean crash cases.
    pub io_faults: u64,
    /// Journal records recovered by post-crash resumes.
    pub crash_resumed: u64,
    /// Lint-soundness cases run.
    pub lint_cases: u64,
    /// `L001` verdicts checked against the exhaustive read trace.
    pub lint_unused_checked: u64,
    /// `L002` verdicts checked against demand evaluation.
    pub lint_dead_checked: u64,
    /// Attributes flipped to `L001` by injected mutations, as required.
    pub lint_flips: u64,
    /// Circularity witnesses verified and replayed.
    pub lint_witnesses: u64,
    /// First failure found, already shrunk when shrinking is on.
    pub failure: Option<FuzzFailure>,
}

impl FuzzReport {
    /// `true` when the run finished with no divergence and no panic.
    pub fn is_clean(&self) -> bool {
        self.failure.is_none()
    }
}

/// Runs the full oracle: `grammar_cases` differential cases, then
/// `front_cases` front-end mutations, stopping at the first failure.
/// Counters are recorded through `obs` under the `fuzz.` prefix.
pub fn run(cfg: &FuzzConfig, obs: &mut Obs) -> FuzzReport {
    obs.phases.enter("fuzz");
    let report = run_inner(cfg, obs);
    obs.phases.leave();
    report
}

fn run_inner(cfg: &FuzzConfig, obs: &mut Obs) -> FuzzReport {
    let mut report = FuzzReport::default();

    for case in 0..cfg.grammar_cases {
        let params = CaseParams::for_case(cfg.seed, case);
        report.grammar_cases += 1;
        obs.metrics.count("fuzz.grammar_cases", 1);
        match run_case(&params) {
            Ok(stats) => {
                report.nodes += stats.nodes as u64;
                report.edits += stats.edits as u64;
                obs.metrics.count("fuzz.tree_nodes", stats.nodes as u64);
                obs.metrics.count("fuzz.edits", stats.edits as u64);
            }
            Err(d) => {
                obs.metrics.count("fuzz.divergences", 1);
                let d = if cfg.shrink { shrink(d) } else { d };
                report.failure = Some(FuzzFailure::Divergence(d));
                return report;
            }
        }
    }

    for case in 0..cfg.front_cases {
        report.front_cases += 1;
        obs.metrics.count("fuzz.front_cases", 1);
        match front::run_front_case(cfg.seed, case) {
            Ok(true) => {
                report.front_accepted += 1;
                obs.metrics.count("fuzz.front_accepted", 1);
            }
            Ok(false) => {
                report.front_rejected += 1;
                obs.metrics.count("fuzz.front_rejected", 1);
            }
            Err(f) => {
                obs.metrics.count("fuzz.front_panics", 1);
                report.failure = Some(FuzzFailure::FrontPanic(f));
                return report;
            }
        }
    }

    for case in 0..cfg.fault_cases {
        report.fault_cases += 1;
        obs.metrics.count("fuzz.fault_cases", 1);
        match fault::run_fault_case(cfg.seed, case) {
            Ok(stats) => {
                report.faults_injected += stats.faults;
                report.panics_caught += stats.panics_caught;
                obs.metrics.count("fuzz.faults_injected", stats.faults);
                obs.metrics
                    .count("fuzz.fault_panics_caught", stats.panics_caught);
            }
            Err(f) => {
                obs.metrics.count("fuzz.fault_failures", 1);
                report.failure = Some(FuzzFailure::Fault(f));
                return report;
            }
        }
    }

    for case in 0..cfg.crash_cases {
        report.crash_cases += 1;
        obs.metrics.count("fuzz.crash_cases", 1);
        match crash::run_crash_case(cfg.seed, case) {
            Ok(stats) => {
                report.io_faults += stats.io_faults;
                report.crash_resumed += stats.resumed;
                obs.metrics.count("fuzz.crash_io_faults", stats.io_faults);
                obs.metrics.count("fuzz.crash_resumed", stats.resumed);
            }
            Err(f) => {
                obs.metrics.count("fuzz.crash_failures", 1);
                report.failure = Some(FuzzFailure::Crash(f));
                return report;
            }
        }
    }

    for case in 0..cfg.lint_cases {
        report.lint_cases += 1;
        obs.metrics.count("fuzz.lint_cases", 1);
        match lints::run_lint_case(cfg.seed, case) {
            Ok(stats) => {
                report.lint_unused_checked += stats.unused_checked;
                report.lint_dead_checked += stats.dead_checked;
                report.lint_flips += stats.flips;
                report.lint_witnesses += stats.witnesses;
                obs.metrics
                    .count("fuzz.lint_unused_checked", stats.unused_checked);
                obs.metrics
                    .count("fuzz.lint_dead_checked", stats.dead_checked);
                obs.metrics.count("fuzz.lint_flips", stats.flips);
                obs.metrics.count("fuzz.lint_witnesses", stats.witnesses);
            }
            Err(f) => {
                obs.metrics.count("fuzz.lint_failures", 1);
                report.failure = Some(FuzzFailure::Lint(f));
                return report;
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_clean_and_counts() {
        let cfg = FuzzConfig {
            seed: 0,
            grammar_cases: 12,
            front_cases: 24,
            fault_cases: 8,
            crash_cases: 6,
            lint_cases: 10,
            shrink: true,
        };
        let mut obs = Obs::new();
        let report = run(&cfg, &mut obs);
        if let Some(f) = &report.failure {
            match f {
                FuzzFailure::Divergence(d) => {
                    panic!("divergence: {}", render_reproducer(d))
                }
                FuzzFailure::FrontPanic(p) => panic!("front panic: {p:?}"),
                FuzzFailure::Fault(p) => panic!("fault contract violation: {p}"),
                FuzzFailure::Crash(p) => panic!("crash contract violation: {p}"),
                FuzzFailure::Lint(p) => panic!("lint soundness violation: {p}"),
            }
        }
        assert_eq!(report.grammar_cases, 12);
        assert_eq!(report.front_cases, 24);
        assert_eq!(report.fault_cases, 8);
        assert_eq!(report.crash_cases, 6);
        assert_eq!(report.lint_cases, 10);
        assert_eq!(obs.metrics.counter("fuzz.lint_cases"), 10);
        assert_eq!(report.lint_witnesses, 10);
        assert_eq!(obs.metrics.counter("fuzz.fault_cases"), 8);
        assert_eq!(obs.metrics.counter("fuzz.crash_cases"), 6);
        assert!(report.nodes > 0);
        assert_eq!(obs.metrics.counter("fuzz.grammar_cases"), 12);
        assert_eq!(obs.metrics.counter("fuzz.front_cases"), 24);
        assert_eq!(
            obs.metrics.counter("fuzz.front_accepted") + obs.metrics.counter("fuzz.front_rejected"),
            24
        );
    }
}
