//! The differential oracle: one case through all four evaluators plus the
//! space plan's symbolic re-validation, with first-divergence reporting
//! and deterministic parameter shrinking.

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use fnc2_ag::{AttrId, Grammar, NodeId, Tree};
use fnc2_analysis::{classify, Inclusion};
use fnc2_corpus::rng::Rng;
use fnc2_incremental::{Equality, IncrementalEvaluator};
use fnc2_obs::Obs;
use fnc2_space::{analyze_space, validate_plan, SpaceEvaluator};
use fnc2_tables::{Tables, TablesConfig};
use fnc2_visit::{build_visit_seqs, dependency_slice, DynamicEvaluator, Evaluator, RootInputs};

use crate::gen::{
    build_grammar_pair, build_subtree, build_tree, render_tree, CaseParams, GenGrammar,
};

/// A divergence between two pipeline stages on one case.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The case that produced it.
    pub params: CaseParams,
    /// Which comparison failed (`exhaustive-vs-dynamic`, `space-plan`, …).
    pub stage: &'static str,
    /// What differed, with node/attribute names.
    pub detail: String,
}

/// Size counters of one passing case.
#[derive(Clone, Copy, Debug, Default)]
pub struct CaseStats {
    /// Nodes in the generated tree.
    pub nodes: usize,
    /// Edits applied to the incremental evaluator.
    pub edits: usize,
}

/// Runs one case through the whole cascade. Panics anywhere inside the
/// pipeline are caught and reported as divergences (the oracle's
/// no-panic guarantee is part of what it checks).
pub fn run_case(params: &CaseParams) -> Result<CaseStats, Divergence> {
    let p = *params;
    match catch_unwind(AssertUnwindSafe(move || run_case_inner(&p))) {
        Ok(r) => r,
        Err(payload) => Err(Divergence {
            params: *params,
            stage: "panic",
            detail: panic_message(&payload),
        }),
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_case_inner(params: &CaseParams) -> Result<CaseStats, Divergence> {
    let div = |stage: &'static str, detail: String| Divergence {
        params: *params,
        stage,
        detail,
    };

    let (gg, mutant) = build_grammar_pair(params);
    let g = &gg.grammar;

    // ---- Cascade: the generator promises SNC, the cascade must agree. --
    let cls = classify(g, 2, Inclusion::Long)
        .map_err(|e| div("classify", format!("transformation failed: {e}")))?;
    let Some(lo) = cls.l_ordered.as_ref() else {
        return Err(div(
            "classify",
            "generated grammar rejected as non-SNC".to_string(),
        ));
    };
    let seqs = build_visit_seqs(g, lo);
    let tree = build_tree(&gg, params);
    let inputs = RootInputs::new();

    // ---- Exhaustive visit-sequence evaluator (the reference). ----------
    let ev = Evaluator::new(g, &seqs);
    let (reference, ref_stats) = ev
        .evaluate(&tree, &inputs)
        .map_err(|e| div("exhaustive", format!("reference evaluation failed: {e}")))?;

    // ---- Interned evaluation: hash-consing must be invisible. ----------
    // The canonical-representative transport may share allocations but
    // must never change a single attribute value or run counter.
    {
        let (vals, stats) = Evaluator::new(g, &seqs)
            .with_interning(true)
            .evaluate(&tree, &inputs)
            .map_err(|e| div("interned", format!("interned evaluation failed: {e}")))?;
        if stats != ref_stats {
            return Err(div(
                "interned-vs-plain",
                format!("interned stats {stats:?} != plain {ref_stats:?}"),
            ));
        }
        for (n, _) in tree.preorder() {
            let ph = tree.phylum(g, n);
            for &attr in g.phylum(ph).attrs() {
                if vals.get(g, n, attr) != reference.get(g, n, attr) {
                    return Err(div(
                        "interned-vs-plain",
                        format!(
                            "node {n:?} attr {}: interned {:?}, plain {:?}",
                            g.attr(attr).name(),
                            vals.get(g, n, attr),
                            reference.get(g, n, attr)
                        ),
                    ));
                }
            }
        }
    }

    // ---- Work-stealing batch driver: bit-identical to sequential. ------
    let batch_trees = vec![tree.clone(), tree.clone(), tree.clone()];
    let (batch_results, _) = fnc2_par::batch_evaluate(&ev, &batch_trees, &inputs, 4);
    for (i, r) in batch_results.iter().enumerate() {
        let (vals, stats) = r
            .as_ref()
            .map_err(|e| div("batch", format!("batch tree {i} failed: {e}")))?;
        if *stats != ref_stats {
            return Err(div(
                "exhaustive-vs-batch",
                format!("batch tree {i}: stats {stats:?} != sequential {ref_stats:?}"),
            ));
        }
        for (n, _) in tree.preorder() {
            let ph = tree.phylum(g, n);
            for &attr in g.phylum(ph).attrs() {
                if vals.get(g, n, attr) != reference.get(g, n, attr) {
                    return Err(div(
                        "exhaustive-vs-batch",
                        format!(
                            "batch tree {i}: node {n:?} attr {}: batch {:?}, sequential {:?}",
                            g.attr(attr).name(),
                            vals.get(g, n, attr),
                            reference.get(g, n, attr)
                        ),
                    ));
                }
            }
        }
    }

    // ---- Demand-driven dynamic evaluator (gets the mutant, if any). ----
    let dyn_grammar: &Grammar = mutant.as_ref().unwrap_or(g);
    let (demand, _) = DynamicEvaluator::new(dyn_grammar)
        .evaluate(&tree, &inputs)
        .map_err(|e| div("dynamic", format!("dynamic evaluation failed: {e}")))?;
    for (n, _) in tree.preorder() {
        let ph = tree.phylum(g, n);
        for &attr in g.phylum(ph).attrs() {
            let a = reference.get(g, n, attr);
            let b = demand.get(g, n, attr);
            if a != b {
                return Err(div(
                    "exhaustive-vs-dynamic",
                    format!(
                        "node {n:?} ({}) attr {}: exhaustive {a:?}, dynamic {b:?}{}",
                        g.production(tree.node(n).production()).name(),
                        g.attr(attr).name(),
                        divergence_slice(g, &ev, &tree, &inputs, n, attr)
                    ),
                ));
            }
        }
    }

    // ---- Space plan: symbolic re-validation, then the evaluator. -------
    let (fp, objects, lt, plan) = analyze_space(g, &seqs);
    validate_plan(g, &seqs, &fp, &objects, &lt, &plan)
        .map_err(|e| div("space-plan", format!("plan failed re-validation: {e}")))?;
    let sp = SpaceEvaluator::new(g, &seqs, &fp, &plan)
        .evaluate(&tree, &inputs)
        .map_err(|e| div("space", format!("space evaluation failed: {e}")))?;
    for (n, _) in tree.preorder() {
        let ph = tree.phylum(g, n);
        for &attr in g.phylum(ph).attrs() {
            if let Some(v) = sp.node_values.get(g, n, attr) {
                if reference.get(g, n, attr) != Some(v) {
                    return Err(div(
                        "exhaustive-vs-space",
                        format!(
                            "node {n:?} attr {}: exhaustive {:?}, space {v:?}",
                            g.attr(attr).name(),
                            reference.get(g, n, attr)
                        ),
                    ));
                }
            }
        }
    }
    // Root attributes are forced to node storage, so the output must be
    // present, not merely equal-when-present.
    for &attr in g.phylum(g.root()).attrs() {
        if reference.get(g, tree.root(), attr).is_some()
            && sp.node_values.get(g, tree.root(), attr).is_none()
        {
            return Err(div(
                "exhaustive-vs-space",
                format!(
                    "root attr {} missing from space node storage",
                    g.attr(attr).name()
                ),
            ));
        }
    }

    // ---- Tables artifact: serialize, decode, verify, re-evaluate. ------
    // The round trip must be bit-canonical, and evaluators driven by the
    // *deserialized* tables must be bit-identical to the fresh ones.
    {
        let config = TablesConfig {
            max_oag_k: 2,
            inclusion: Inclusion::Long,
            optimize_space: true,
        };
        let tables = Tables::build(
            g,
            config,
            None,
            &cls,
            &seqs,
            Some(&fp),
            Some(&lt),
            Some(&plan),
            &fnc2_lint::lint_grammar(g, Some(&cls)).diags,
        );
        let bytes = tables.to_bytes();
        let (loaded, loaded_fp) = Tables::from_bytes(&bytes)
            .map_err(|e| div("tables-roundtrip", format!("artifact decode failed: {e}")))?;
        if loaded_fp != tables.fingerprint() {
            return Err(div(
                "tables-roundtrip",
                format!(
                    "fingerprint drift: decoded {loaded_fp:016x} != fresh {:016x}",
                    tables.fingerprint()
                ),
            ));
        }
        loaded
            .verify_against(g)
            .map_err(|e| div("tables-roundtrip", format!("verification failed: {e}")))?;
        let reencoded = loaded.to_bytes();
        if reencoded != bytes {
            return Err(div(
                "tables-roundtrip",
                format!(
                    "re-encoding is not canonical: {} bytes vs {} bytes",
                    reencoded.len(),
                    bytes.len()
                ),
            ));
        }
        let (vals, stats) = Evaluator::new(g, &loaded.seqs)
            .evaluate(&tree, &inputs)
            .map_err(|e| {
                div(
                    "tables-roundtrip",
                    format!("evaluation over decoded visit sequences failed: {e}"),
                )
            })?;
        if stats != ref_stats {
            return Err(div(
                "tables-vs-exhaustive",
                format!("decoded-seqs stats {stats:?} != reference {ref_stats:?}"),
            ));
        }
        for (n, _) in tree.preorder() {
            let ph = tree.phylum(g, n);
            for &attr in g.phylum(ph).attrs() {
                if vals.get(g, n, attr) != reference.get(g, n, attr) {
                    return Err(div(
                        "tables-vs-exhaustive",
                        format!(
                            "node {n:?} attr {}: decoded tables {:?}, reference {:?}",
                            g.attr(attr).name(),
                            vals.get(g, n, attr),
                            reference.get(g, n, attr)
                        ),
                    ));
                }
            }
        }
        let dfp = loaded.flat.as_ref().expect("built with space sections");
        let dplan = loaded
            .space_plan
            .as_ref()
            .expect("built with space sections");
        let sp2 = SpaceEvaluator::new(g, &loaded.seqs, dfp, dplan)
            .evaluate(&tree, &inputs)
            .map_err(|e| {
                div(
                    "tables-roundtrip",
                    format!("space evaluation over decoded tables failed: {e}"),
                )
            })?;
        for (n, _) in tree.preorder() {
            let ph = tree.phylum(g, n);
            for &attr in g.phylum(ph).attrs() {
                if sp2.node_values.get(g, n, attr) != sp.node_values.get(g, n, attr) {
                    return Err(div(
                        "tables-vs-space",
                        format!(
                            "node {n:?} attr {}: decoded tables {:?}, fresh {:?}",
                            g.attr(attr).name(),
                            sp2.node_values.get(g, n, attr),
                            sp.node_values.get(g, n, attr)
                        ),
                    ));
                }
            }
        }
    }

    // ---- Incremental evaluator under random edit scripts. --------------
    // Two instances march through the same edit script: one interned (the
    // default, with the O(1) identity cutoff and the memo cache) and one
    // with interning off (the `--no-intern` deep-equality path). Their
    // values AND their Changed/Unchanged status sets must agree exactly.
    let mut inc = IncrementalEvaluator::new(g, tree.clone(), Equality::default())
        .map_err(|e| div("incremental", format!("initial evaluation failed: {e}")))?;
    let mut inc_plain = IncrementalEvaluator::with_inputs_guarded_interned(
        g,
        tree.clone(),
        RootInputs::new(),
        Equality::default(),
        Default::default(),
        false,
    )
    .map_err(|e| {
        div(
            "incremental",
            format!("initial uninterned evaluation failed: {e}"),
        )
    })?;
    debug_assert!(inc.interning() && !inc_plain.interning());
    let mut rng = Rng::seed_from_u64(params.seed ^ 0x0ed1_7000);
    for edit in 0..params.edits {
        let (at, sub) = match pick_edit(&gg, &mut rng, inc.tree()) {
            Some(e) => e,
            None => break,
        };
        let wave = inc
            .replace_subtree(at, &sub)
            .map_err(|e| div("incremental", format!("edit {edit} failed: {e}")))?;
        let wave_plain = inc_plain
            .replace_subtree(at, &sub)
            .map_err(|e| div("incremental", format!("uninterned edit {edit} failed: {e}")))?;
        if wave != wave_plain {
            return Err(div(
                "incremental-intern-vs-plain",
                format!(
                    "after edit {edit}: interned wave {wave:?} != uninterned wave {wave_plain:?}"
                ),
            ));
        }
        let (want, _) = DynamicEvaluator::new(g)
            .evaluate(inc.tree(), &inputs)
            .map_err(|e| div("incremental", format!("re-evaluation failed: {e}")))?;
        for (n, _) in inc.tree().preorder() {
            let ph = inc.tree().phylum(g, n);
            for &attr in g.phylum(ph).attrs() {
                if inc.value(n, attr) != want.get(g, n, attr) {
                    return Err(div(
                        "incremental-vs-scratch",
                        format!(
                            "after edit {edit}: node {n:?} attr {}: incremental {:?}, scratch {:?}{}",
                            g.attr(attr).name(),
                            inc.value(n, attr),
                            want.get(g, n, attr),
                            divergence_slice(g, &ev, inc.tree(), &inputs, n, attr)
                        ),
                    ));
                }
                if inc_plain.value(n, attr) != inc.value(n, attr) {
                    return Err(div(
                        "incremental-intern-vs-plain",
                        format!(
                            "after edit {edit}: node {n:?} attr {}: interned {:?}, uninterned {:?}",
                            g.attr(attr).name(),
                            inc.value(n, attr),
                            inc_plain.value(n, attr)
                        ),
                    ));
                }
            }
        }
    }

    Ok(CaseStats {
        nodes: tree.size(),
        edits: params.edits,
    })
}

/// Re-runs the exhaustive evaluator over `tree` with the event trace on
/// and renders the dynamic dependency slice of one instance — turning a
/// raw value mismatch into the chain of firings (and their inputs) that
/// produced the reference value, so a divergence report is actionable.
/// Returns an empty string when the reference run itself fails.
fn divergence_slice(
    g: &Grammar,
    ev: &Evaluator<'_>,
    tree: &Tree,
    inputs: &RootInputs,
    node: NodeId,
    attr: AttrId,
) -> String {
    let mut obs = Obs::with_trace(1 << 16);
    if ev.evaluate_recorded(tree, inputs, &mut obs).is_err() {
        return String::new();
    }
    let buf = obs.events.as_ref().expect("trace enabled above");
    let slice = dependency_slice(g, tree, buf.iter(), node, attr);
    format!("\nreference {}", slice.render(g, tree))
}

/// Chooses the next edit: a random non-root node and a fresh random
/// subtree of its phylum. Returns `None` if the tree has no editable node.
fn pick_edit(gg: &GenGrammar, rng: &mut Rng, tree: &Tree) -> Option<(fnc2_ag::NodeId, Tree)> {
    let candidates: Vec<fnc2_ag::NodeId> = tree
        .preorder()
        .map(|(n, _)| n)
        .filter(|&n| tree.node(n).parent().is_some())
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let at = candidates[rng.gen_usize(0, candidates.len() - 1)];
    let i = gg.phylum_index(tree.phylum(&gg.grammar, at))?;
    let budget = rng.gen_usize(1, 12);
    Some((at, build_subtree(gg, rng, i, budget)))
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// Deterministic parameter shrinking: repeatedly tries the reductions of
/// one parameter each (fewer edits, smaller tree, fewer phyla, fewer
/// passes, narrower productions), keeping any reduction that still
/// diverges, until a fixpoint. Because the generator is a pure function of
/// the params, re-running the oracle *is* re-running the case.
pub fn shrink(d: Divergence) -> Divergence {
    let mut cur = d;
    loop {
        let p = cur.params;
        let candidates = [
            CaseParams {
                edits: p.edits.saturating_sub(1),
                ..p
            },
            CaseParams {
                tree_budget: (p.tree_budget / 2).max(1),
                ..p
            },
            CaseParams {
                tree_budget: p.tree_budget.saturating_sub(1).max(1),
                ..p
            },
            CaseParams {
                phyla: p.phyla.saturating_sub(1).max(1),
                ..p
            },
            CaseParams {
                passes: p.passes.saturating_sub(1).max(1),
                ..p
            },
            CaseParams {
                max_children: p.max_children.saturating_sub(1).max(1),
                ..p
            },
        ];
        let mut improved = false;
        for c in candidates {
            if c == p {
                continue;
            }
            if let Err(smaller) = run_case(&c) {
                cur = smaller;
                improved = true;
                break;
            }
        }
        if !improved {
            return cur;
        }
    }
}

// ---------------------------------------------------------------------------
// Reproducer rendering
// ---------------------------------------------------------------------------

/// Renders a divergence as a self-contained reproducer: the params line
/// (feed it back through [`CaseParams::parse`] to re-run the exact case),
/// the serialized grammar (and mutant, when one was injected), the tree,
/// and the edit script.
pub fn render_reproducer(d: &Divergence) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== fnc2-fuzz reproducer ==");
    let _ = writeln!(out, "params: {}", d.params);
    let _ = writeln!(out, "stage:  {}", d.stage);
    let _ = writeln!(out, "detail: {}", d.detail);
    let (gg, mutant) = build_grammar_pair(&d.params);
    let _ = writeln!(out, "-- grammar --");
    let _ = write!(out, "{}", gg.grammar);
    if let Some(m) = &mutant {
        let _ = writeln!(out, "-- injected mutant grammar --");
        let _ = write!(out, "{m}");
    }
    let tree = build_tree(&gg, &d.params);
    let _ = writeln!(out, "-- tree ({} nodes) --", tree.size());
    let _ = write!(out, "{}", render_tree(&gg.grammar, &tree));
    if d.params.edits > 0 {
        let _ = writeln!(out, "-- edit script --");
        let _ = write!(out, "{}", render_edit_script(&gg, &d.params, tree));
    }
    out
}

/// Replays the case's edit decisions, describing each replacement. The
/// replay needs the evolving tree, so the edits are applied to a plain
/// clone as they are rendered.
fn render_edit_script(gg: &GenGrammar, params: &CaseParams, mut tree: Tree) -> String {
    let g = &gg.grammar;
    let mut out = String::new();
    let mut rng = Rng::seed_from_u64(params.seed ^ 0x0ed1_7000);
    for edit in 0..params.edits {
        let Some((at, sub)) = pick_edit(gg, &mut rng, &tree) else {
            let _ = writeln!(out, "edit {edit}: (no editable node)");
            break;
        };
        let ph = g.phylum(tree.phylum(g, at)).name().to_string();
        let _ = writeln!(
            out,
            "edit {edit}: replace node {at:?} ({ph}) with {} nodes:",
            sub.size()
        );
        for line in render_tree(g, &sub).lines() {
            let _ = writeln!(out, "    {line}");
        }
        if tree.replace_subtree(g, at, &sub).is_err() {
            let _ = writeln!(out, "    (replacement rejected)");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_budget_runs_clean() {
        for case in 0..16 {
            let params = CaseParams::for_case(0xfc2, case);
            if let Err(d) = run_case(&params) {
                panic!(
                    "case {case} diverged: {} — {}\n{}",
                    d.stage,
                    d.detail,
                    render_reproducer(&d)
                );
            }
        }
    }

    #[test]
    fn injected_mutation_is_caught_shrunk_and_reproducible() {
        // Walk injection sites until the oracle catches one (a mutated rule
        // only matters if the tree exercises its production).
        let base = CaseParams {
            seed: 0x5eed_0001,
            phyla: 3,
            passes: 2,
            max_children: 2,
            tree_budget: 32,
            edits: 1,
            inject: 0,
        };
        let mut caught = None;
        for inject in 1..=64 {
            let p = CaseParams { inject, ..base };
            if let Err(d) = run_case(&p) {
                caught = Some(d);
                break;
            }
        }
        let d = caught.expect("some injection site must be caught");
        assert_eq!(d.stage, "exhaustive-vs-dynamic", "{}", d.detail);

        let small = shrink(d.clone());
        assert!(small.params.tree_budget <= d.params.tree_budget);
        assert!(small.params.phyla <= d.params.phyla);

        // The reproducer's params line re-runs to the same failure.
        let repro = render_reproducer(&small);
        assert!(repro.contains("params:"), "{repro}");
        assert!(repro.contains("injected mutant"), "{repro}");
        let line = repro
            .lines()
            .find_map(|l| l.strip_prefix("params: "))
            .expect("reproducer has a params line");
        let parsed = CaseParams::parse(line).expect("params line parses");
        assert_eq!(parsed, small.params);
        assert!(run_case(&parsed).is_err(), "reproducer must still diverge");
    }

    #[test]
    fn edit_scripts_exercise_incremental() {
        // At least one of the first cases must actually apply edits.
        let mut edited = 0;
        for case in 0..8 {
            let params = CaseParams::for_case(0xed17, case);
            let stats = run_case(&params).expect("clean case");
            edited += stats.edits;
        }
        assert!(edited > 0, "no case applied any edit");
    }
}
