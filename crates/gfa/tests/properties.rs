//! Property tests for the GFA substrate: transitive-closure laws and
//! topological-order correctness on random digraphs, driven by a small
//! inline seeded generator so every run covers the same cases.

use fnc2_gfa::{BitMatrix, Digraph};

/// Inline SplitMix64 (this crate sits below the corpus, which hosts the
/// shared test PRNG, so a local copy avoids a dependency cycle).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Up to `3n` random edges over `n` nodes.
fn random_edges(rng: &mut Rng, n: usize) -> Vec<(usize, usize)> {
    let count = rng.below(n * 3 + 1);
    (0..count).map(|_| (rng.below(n), rng.below(n))).collect()
}

const CASES: usize = 64;

#[test]
fn closure_is_idempotent_and_contains_base() {
    let mut rng = Rng(0xc105);
    for _ in 0..CASES {
        let n = 12;
        let edges = random_edges(&mut rng, n);
        let mut m = BitMatrix::new(n);
        for (u, v) in &edges {
            m.set(*u, *v);
        }
        let c1 = m.closure();
        let c2 = c1.closure();
        assert_eq!(&c1, &c2, "closure is idempotent");
        assert!(m.is_subset(&c1), "closure contains the base");
        // Transitivity: (a,b) and (b,c) in closure => (a,c).
        for a in 0..n {
            for b in 0..n {
                if !c1.get(a, b) {
                    continue;
                }
                for cc in 0..n {
                    if c1.get(b, cc) {
                        assert!(c1.get(a, cc), "({a},{b}),({b},{cc}) but not ({a},{cc})");
                    }
                }
            }
        }
    }
}

#[test]
fn closure_matches_reachability() {
    let mut rng = Rng(0x4eac);
    for _ in 0..CASES {
        let n = 10;
        let edges = random_edges(&mut rng, n);
        let mut m = BitMatrix::new(n);
        let mut g = Digraph::new(n);
        for (u, v) in &edges {
            m.set(*u, *v);
            g.add_edge(*u, *v);
        }
        let c = m.closure();
        for start in 0..n {
            // Nodes reachable via at least one edge.
            let mut reach: Vec<usize> = Vec::new();
            for &mid in g.succs(start) {
                for r in g.reachable_from(mid) {
                    if !reach.contains(&r) {
                        reach.push(r);
                    }
                }
            }
            for v in 0..n {
                assert_eq!(c.get(start, v), reach.contains(&v), "start {start} v {v}");
            }
        }
    }
}

#[test]
fn topo_order_is_a_valid_linearization() {
    let mut rng = Rng(0x7090);
    for _ in 0..CASES {
        let n = 14;
        let edges = random_edges(&mut rng, n);
        let mut g = Digraph::new(n);
        for (u, v) in &edges {
            if u != v {
                g.add_edge(*u, *v);
            }
        }
        match g.topo_order() {
            Some(order) => {
                assert_eq!(order.len(), n);
                let mut rank = vec![0usize; n];
                for (r, &u) in order.iter().enumerate() {
                    rank[u] = r;
                }
                for (u, v) in g.edges() {
                    assert!(rank[u] < rank[v], "edge {u}->{v} violated");
                }
                assert!(g.find_cycle().is_none());
            }
            None => {
                let cycle = g.find_cycle().expect("no topo order implies a cycle");
                assert!(cycle.len() >= 2);
                for w in cycle.windows(2) {
                    assert!(g.succs(w[0]).contains(&w[1]));
                }
            }
        }
    }
}

#[test]
fn sccs_partition_and_respect_cycles() {
    let mut rng = Rng(0x5cc5);
    for _ in 0..CASES {
        let n = 10;
        let edges = random_edges(&mut rng, n);
        let mut g = Digraph::new(n);
        for (u, v) in &edges {
            g.add_edge(*u, *v);
        }
        let comps = g.sccs();
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, n, "components partition the nodes");
        // Two nodes share a component iff mutually reachable.
        let mut m = BitMatrix::new(n);
        for (u, v) in g.edges() {
            m.set(u, v);
        }
        let c = m.closure();
        for comp in &comps {
            for &a in comp {
                for &b in comp {
                    if a != b {
                        assert!(c.get(a, b) && c.get(b, a), "{a},{b} in one SCC");
                    }
                }
            }
        }
    }
}
