//! Property tests for the GFA substrate: transitive-closure laws and
//! topological-order correctness on random digraphs.

use fnc2_gfa::{BitMatrix, Digraph};
use proptest::prelude::*;

fn edges_strategy(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..n, 0..n), 0..n * 3)
}

proptest! {
    #[test]
    fn closure_is_idempotent_and_contains_base(edges in edges_strategy(12)) {
        let n = 12;
        let mut m = BitMatrix::new(n);
        for (u, v) in &edges {
            m.set(*u, *v);
        }
        let c1 = m.closure();
        let c2 = c1.closure();
        prop_assert_eq!(&c1, &c2, "closure is idempotent");
        prop_assert!(m.is_subset(&c1), "closure contains the base");
        // Transitivity: (a,b) and (b,c) in closure => (a,c).
        for a in 0..n {
            for b in 0..n {
                if !c1.get(a, b) {
                    continue;
                }
                for cc in 0..n {
                    if c1.get(b, cc) {
                        prop_assert!(c1.get(a, cc), "({a},{b}),({b},{cc}) but not ({a},{cc})");
                    }
                }
            }
        }
    }

    #[test]
    fn closure_matches_reachability(edges in edges_strategy(10)) {
        let n = 10;
        let mut m = BitMatrix::new(n);
        let mut g = Digraph::new(n);
        for (u, v) in &edges {
            m.set(*u, *v);
            g.add_edge(*u, *v);
        }
        let c = m.closure();
        for start in 0..n {
            // Nodes reachable via at least one edge.
            let mut reach: Vec<usize> = Vec::new();
            for &mid in g.succs(start) {
                for r in g.reachable_from(mid) {
                    if !reach.contains(&r) {
                        reach.push(r);
                    }
                }
            }
            for v in 0..n {
                prop_assert_eq!(
                    c.get(start, v),
                    reach.contains(&v),
                    "start {} v {}",
                    start,
                    v
                );
            }
        }
    }

    #[test]
    fn topo_order_is_a_valid_linearization(edges in edges_strategy(14)) {
        let n = 14;
        let mut g = Digraph::new(n);
        for (u, v) in &edges {
            if u != v {
                g.add_edge(*u, *v);
            }
        }
        match g.topo_order() {
            Some(order) => {
                prop_assert_eq!(order.len(), n);
                let mut rank = vec![0usize; n];
                for (r, &u) in order.iter().enumerate() {
                    rank[u] = r;
                }
                for (u, v) in g.edges() {
                    prop_assert!(rank[u] < rank[v], "edge {u}->{v} violated");
                }
                prop_assert!(g.find_cycle().is_none());
            }
            None => {
                let cycle = g.find_cycle().expect("no topo order implies a cycle");
                prop_assert!(cycle.len() >= 2);
                for w in cycle.windows(2) {
                    prop_assert!(g.succs(w[0]).contains(&w[1]));
                }
            }
        }
    }

    #[test]
    fn sccs_partition_and_respect_cycles(edges in edges_strategy(10)) {
        let n = 10;
        let mut g = Digraph::new(n);
        for (u, v) in &edges {
            g.add_edge(*u, *v);
        }
        let comps = g.sccs();
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n, "components partition the nodes");
        // Two nodes share a component iff mutually reachable.
        let mut m = BitMatrix::new(n);
        for (u, v) in g.edges() {
            m.set(u, v);
        }
        let c = m.closure();
        for comp in &comps {
            for &a in comp {
                for &b in comp {
                    if a != b {
                        prop_assert!(c.get(a, b) && c.get(b, a), "{a},{b} in one SCC");
                    }
                }
            }
        }
    }
}
