//! The worklist fixpoint engine of Grammar Flow Analysis.
//!
//! Every global AG analysis in the paper — SNC's `IO` relations, DNC's `OI`
//! relations, Kastens' `DS`, the may-evaluate sets of the space optimizer —
//! is a least fixed point of a monotone transfer function attached to
//! productions (Möncke's *Grammar Flow Analysis*, which FNC-2 improved
//! [26]). This module provides the shared engine: a deduplicating worklist
//! with explicit dependents, so a production is re-examined only when
//! information it reads has changed.

use std::collections::VecDeque;

use fnc2_obs::{Key, NoopRecorder, Recorder};

/// A deduplicating FIFO worklist over dense item indices.
#[derive(Clone, Debug)]
pub struct Worklist {
    queue: VecDeque<usize>,
    queued: Vec<bool>,
}

impl Worklist {
    /// A worklist for items `0..n`, initially containing all of them in
    /// order.
    pub fn full(n: usize) -> Self {
        Worklist {
            queue: (0..n).collect(),
            queued: vec![true; n],
        }
    }

    /// An empty worklist for items `0..n`.
    pub fn empty(n: usize) -> Self {
        Worklist {
            queue: VecDeque::new(),
            queued: vec![false; n],
        }
    }

    /// Enqueues `i` unless already pending.
    pub fn push(&mut self, i: usize) {
        if !self.queued[i] {
            self.queued[i] = true;
            self.queue.push_back(i);
        }
    }

    /// Dequeues the next pending item.
    pub fn pop(&mut self) -> Option<usize> {
        let i = self.queue.pop_front()?;
        self.queued[i] = false;
        Some(i)
    }

    /// True if nothing is pending.
    pub fn is_done(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Statistics of one fixpoint run, for the generator benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FixpointStats {
    /// Number of transfer-function applications.
    pub steps: usize,
    /// Number of applications that changed the solution.
    pub changes: usize,
}

/// Runs `step` to fixpoint over items `0..n`.
///
/// `dependents[i]` lists the items to re-examine whenever `step(i)` reports
/// a change (returns `true`). For a bottom-up grammar flow (e.g. `IO`),
/// items are productions and the dependents of `p` are the productions
/// having `lhs(p)` on their right-hand side; for a top-down flow (e.g.
/// `OI`), the productions of the phyla on `p`'s right-hand side.
///
/// `step` must be monotone w.r.t. some finite-height lattice, otherwise the
/// loop may diverge.
pub fn fixpoint(
    n: usize,
    dependents: &[Vec<usize>],
    step: impl FnMut(usize) -> bool,
) -> FixpointStats {
    fixpoint_recorded(n, dependents, step, &mut NoopRecorder)
}

/// [`fixpoint`], instrumented: the run's step and change counts are added
/// to `rec` under `gfa.fixpoint.steps` / `gfa.fixpoint.changes` (several
/// fixpoints in one cascade accumulate), and the worklist volume is
/// recorded in the `gfa.fixpoint.run_steps` histogram.
pub fn fixpoint_recorded<R: Recorder>(
    n: usize,
    dependents: &[Vec<usize>],
    mut step: impl FnMut(usize) -> bool,
    rec: &mut R,
) -> FixpointStats {
    assert_eq!(dependents.len(), n, "one dependents list per item");
    let mut wl = Worklist::full(n);
    let mut stats = FixpointStats::default();
    while let Some(i) = wl.pop() {
        stats.steps += 1;
        if step(i) {
            stats.changes += 1;
            for &d in &dependents[i] {
                wl.push(d);
            }
        }
    }
    rec.count(Key::GfaFixpointSteps, stats.steps as u64);
    rec.count(Key::GfaFixpointChanges, stats.changes as u64);
    rec.observe("gfa.fixpoint.run_steps", stats.steps as u64);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worklist_deduplicates() {
        let mut wl = Worklist::empty(3);
        wl.push(1);
        wl.push(1);
        wl.push(2);
        assert_eq!(wl.pop(), Some(1));
        assert_eq!(wl.pop(), Some(2));
        assert_eq!(wl.pop(), None);
        assert!(wl.is_done());
    }

    #[test]
    fn fixpoint_longest_path() {
        // Items 0..4 in a chain: value[i] = value[i-1] + 1, seeded at 0.
        // dependents[i] = [i+1].
        let n = 5;
        let dependents: Vec<Vec<usize>> = (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect();
        let mut value = vec![0u32; n];
        let stats = fixpoint(n, &dependents, |i| {
            let next = if i == 0 { 0 } else { value[i - 1] + 1 };
            if next > value[i] {
                value[i] = next;
                true
            } else {
                false
            }
        });
        assert_eq!(value, vec![0, 1, 2, 3, 4]);
        assert!(stats.steps >= n);
        assert_eq!(stats.changes, 4);
    }

    #[test]
    fn fixpoint_runs_each_item_at_least_once() {
        let n = 4;
        let deps = vec![vec![]; n];
        let mut seen = vec![false; n];
        fixpoint(n, &deps, |i| {
            seen[i] = true;
            false
        });
        assert!(seen.iter().all(|&b| b));
    }
}
