//! Dense boolean relations (bit matrices) over small index sets.
//!
//! All AG class tests manipulate relations over the attributes of one
//! phylum or the occurrences of one production — index sets of a few dozen
//! elements. A `u64`-blocked adjacency matrix makes the transitive closure
//! (Warshall with whole-row ORs) and subset tests cheap, which is what keeps
//! the generator "quite fast" (paper §3.1).

use std::fmt;

/// A square boolean matrix / binary relation on `0..n`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    n: usize,
    words: usize,
    rows: Vec<u64>,
}

impl BitMatrix {
    /// The empty relation on `0..n`.
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(64).max(1);
        BitMatrix {
            n,
            words,
            rows: vec![0; n * words],
        }
    }

    /// The dimension `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// The raw row words (`n` rows of `⌈n/64⌉` words each), for
    /// serialization.
    pub fn raw_words(&self) -> &[u64] {
        &self.rows
    }

    /// Rebuilds a matrix from [`raw_words`](Self::raw_words) output.
    /// Returns `None` if `rows` has the wrong length for dimension `n`.
    pub fn from_raw_words(n: usize, rows: Vec<u64>) -> Option<Self> {
        let words = n.div_ceil(64).max(1);
        if rows.len() != n * words {
            return None;
        }
        Some(BitMatrix { n, words, rows })
    }

    /// True if the dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds the pair `(i, j)`. Returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of range.
    pub fn set(&mut self, i: usize, j: usize) -> bool {
        assert!(
            i < self.n && j < self.n,
            "bit ({i},{j}) out of range {}",
            self.n
        );
        let w = &mut self.rows[i * self.words + j / 64];
        let bit = 1u64 << (j % 64);
        let new = *w & bit == 0;
        *w |= bit;
        new
    }

    /// Tests the pair `(i, j)`.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of range.
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(i < self.n && j < self.n);
        self.rows[i * self.words + j / 64] & (1u64 << (j % 64)) != 0
    }

    /// ORs `other` into `self` elementwise. Returns `true` if anything
    /// changed.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn union_in_place(&mut self, other: &BitMatrix) -> bool {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let mut changed = false;
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Replaces `self` by its transitive closure (Warshall, row-OR form).
    pub fn close(&mut self) {
        for k in 0..self.n {
            let k_row: Vec<u64> = self.rows[k * self.words..(k + 1) * self.words].to_vec();
            for i in 0..self.n {
                if self.get(i, k) {
                    let row = &mut self.rows[i * self.words..(i + 1) * self.words];
                    for (a, b) in row.iter_mut().zip(&k_row) {
                        *a |= b;
                    }
                }
            }
        }
    }

    /// The transitive closure, non-destructively.
    pub fn closure(&self) -> BitMatrix {
        let mut m = self.clone();
        m.close();
        m
    }

    /// True if the *closed* relation has no `(i, i)` pair — i.e. the graph
    /// it closed from is acyclic. Call on a matrix produced by
    /// [`close`](Self::close)/[`closure`](Self::closure).
    pub fn is_irreflexive(&self) -> bool {
        (0..self.n).all(|i| !self.get(i, i))
    }

    /// Iterates the pairs of the relation.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |i| {
            (0..self.n)
                .filter(move |&j| self.get(i, j))
                .map(move |j| (i, j))
        })
    }

    /// Number of pairs in the relation.
    pub fn count(&self) -> usize {
        self.rows.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if every pair of `self` is in `other`.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn is_subset(&self, other: &BitMatrix) -> bool {
        assert_eq!(self.n, other.n);
        self.rows.iter().zip(&other.rows).all(|(a, b)| a & !b == 0)
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitMatrix{{{}x{}: ", self.n, self.n)?;
        f.debug_set().entries(self.pairs()).finish()?;
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut m = BitMatrix::new(70);
        assert!(m.set(0, 65));
        assert!(!m.set(0, 65));
        assert!(m.get(0, 65));
        assert!(!m.get(65, 0));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn closure_of_chain() {
        let mut m = BitMatrix::new(4);
        m.set(0, 1);
        m.set(1, 2);
        m.set(2, 3);
        m.close();
        assert!(m.get(0, 3));
        assert!(m.get(1, 3));
        assert!(!m.get(3, 0));
        assert!(m.is_irreflexive());
        assert_eq!(m.count(), 6);
    }

    #[test]
    fn closure_detects_cycle() {
        let mut m = BitMatrix::new(3);
        m.set(0, 1);
        m.set(1, 2);
        m.set(2, 0);
        assert!(m.is_irreflexive(), "not closed yet");
        m.close();
        assert!(!m.is_irreflexive());
    }

    #[test]
    fn union_and_subset() {
        let mut a = BitMatrix::new(5);
        a.set(1, 2);
        let mut b = BitMatrix::new(5);
        b.set(3, 4);
        assert!(!a.is_subset(&b));
        assert!(a.union_in_place(&b));
        assert!(!a.union_in_place(&b), "idempotent");
        assert!(b.is_subset(&a));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn pairs_roundtrip() {
        let mut m = BitMatrix::new(6);
        m.set(5, 0);
        m.set(2, 3);
        let pairs: Vec<_> = m.pairs().collect();
        assert_eq!(pairs, vec![(2, 3), (5, 0)]);
    }

    #[test]
    fn zero_dim() {
        let m = BitMatrix::new(0);
        assert!(m.is_empty());
        assert!(m.closure().is_irreflexive());
    }
}
