//! Adjacency-list digraphs: deterministic topological sorting, cycle
//! extraction (for the circularity trace, paper §3.1), strongly connected
//! components, and reachability.

use std::collections::VecDeque;

/// A directed graph on dense node indices `0..n`.
#[derive(Clone, Debug, Default)]
pub struct Digraph {
    succs: Vec<Vec<usize>>,
}

impl Digraph {
    /// An edgeless graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        Digraph {
            succs: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Adds the edge `u → v` (duplicates ignored). Returns `true` if new.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(v < self.succs.len(), "node {v} out of range");
        let s = &mut self.succs[u];
        if s.contains(&v) {
            false
        } else {
            s.push(v);
            true
        }
    }

    /// Successors of `u`.
    pub fn succs(&self, u: usize) -> &[usize] {
        &self.succs[u]
    }

    /// All edges.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v)))
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Deterministic topological order: Kahn's algorithm, breaking ties by
    /// the caller-supplied priority (lower key first), then by node index.
    ///
    /// Returns `None` if the graph has a cycle. The priority hook is what
    /// lets the visit-sequence generator group actions by visit while still
    /// respecting dependencies.
    pub fn topo_order_by<K: Ord>(&self, key: impl Fn(usize) -> K) -> Option<Vec<usize>> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.len();
        let mut indeg = vec![0usize; n];
        for (_, v) in self.edges() {
            indeg[v] += 1;
        }
        // Min-heap on (key, node): pops in exactly the order the naive
        // "scan ready for the minimum" loop would, but survives wide
        // productions where thousands of nodes are ready at once.
        let mut ready: BinaryHeap<Reverse<(K, usize)>> = (0..n)
            .filter(|&u| indeg[u] == 0)
            .map(|u| Reverse((key(u), u)))
            .collect();
        let mut out = Vec::with_capacity(n);
        while let Some(Reverse((_, u))) = ready.pop() {
            out.push(u);
            for &v in &self.succs[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    ready.push(Reverse((key(v), v)));
                }
            }
        }
        (out.len() == n).then_some(out)
    }

    /// Plain deterministic topological order (ties by node index).
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        self.topo_order_by(|_| 0u8)
    }

    /// Finds a cycle and returns it as a node sequence `v0 → v1 → … → v0`
    /// (first node repeated at the end), or `None` if acyclic. Used by the
    /// interactive circularity trace to show *why* an AG fails a test.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let n = self.len();
        let mut color = vec![Color::White; n];
        let mut stack: Vec<usize> = Vec::new();

        // Iterative DFS keeping the grey path in `stack`.
        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = Color::Grey;
            stack.push(start);
            while let Some(&mut (u, ref mut i)) = dfs.last_mut() {
                if *i < self.succs[u].len() {
                    let v = self.succs[u][*i];
                    *i += 1;
                    match color[v] {
                        Color::White => {
                            color[v] = Color::Grey;
                            stack.push(v);
                            dfs.push((v, 0));
                        }
                        Color::Grey => {
                            let at = stack.iter().position(|&x| x == v).expect("grey on stack");
                            let mut cycle: Vec<usize> = stack[at..].to_vec();
                            cycle.push(v);
                            return Some(cycle);
                        }
                        Color::Black => {}
                    }
                } else {
                    color[u] = Color::Black;
                    stack.pop();
                    dfs.pop();
                }
            }
        }
        None
    }

    /// Strongly connected components in reverse topological order
    /// (Tarjan, iterative).
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next = 0usize;
        let mut out: Vec<Vec<usize>> = Vec::new();

        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
            index[root] = next;
            low[root] = next;
            next += 1;
            stack.push(root);
            on_stack[root] = true;
            while let Some(&mut (u, ref mut i)) = dfs.last_mut() {
                if *i < self.succs[u].len() {
                    let v = self.succs[u][*i];
                    *i += 1;
                    if index[v] == usize::MAX {
                        index[v] = next;
                        low[v] = next;
                        next += 1;
                        stack.push(v);
                        on_stack[v] = true;
                        dfs.push((v, 0));
                    } else if on_stack[v] {
                        low[u] = low[u].min(index[v]);
                    }
                } else {
                    dfs.pop();
                    if let Some(&(p, _)) = dfs.last() {
                        low[p] = low[p].min(low[u]);
                    }
                    if low[u] == index[u] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("scc stack");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == u {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        out.push(comp);
                    }
                }
            }
        }
        out
    }

    /// Nodes reachable from `start` (including `start`).
    pub fn reachable_from(&self, start: usize) -> Vec<usize> {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut q = VecDeque::from([start]);
        seen[start] = true;
        while let Some(u) = q.pop_front() {
            for &v in &self.succs[u] {
                if !seen[v] {
                    seen[v] = true;
                    q.push_back(v);
                }
            }
        }
        (0..n).filter(|&u| seen[u]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Digraph {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn topo_order_is_deterministic() {
        let g = diamond();
        assert_eq!(g.topo_order(), Some(vec![0, 1, 2, 3]));
        // Priority can flip the tie between 1 and 2.
        let order = g.topo_order_by(std::cmp::Reverse).unwrap();
        assert_eq!(order, vec![0, 2, 1, 3]);
    }

    #[test]
    fn topo_order_none_on_cycle() {
        let mut g = diamond();
        g.add_edge(3, 0);
        assert_eq!(g.topo_order(), None);
    }

    #[test]
    fn cycle_extraction() {
        let mut g = Digraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 1);
        g.add_edge(3, 4);
        let cyc = g.find_cycle().unwrap();
        assert_eq!(cyc.first(), cyc.last());
        assert!(cyc.len() >= 4, "1→2→3→1 plus repeat");
        for w in cyc.windows(2) {
            assert!(g.succs(w[0]).contains(&w[1]), "cycle uses real edges");
        }
        assert!(diamond().find_cycle().is_none());
    }

    #[test]
    fn sccs_partition_nodes() {
        let mut g = Digraph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 3);
        let mut comps = g.sccs();
        comps.sort();
        assert!(comps.contains(&vec![0, 1, 2]));
        assert!(comps.contains(&vec![3, 4]));
        assert!(comps.contains(&vec![5]));
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn reachability() {
        let g = diamond();
        assert_eq!(g.reachable_from(1), vec![1, 3]);
        assert_eq!(g.reachable_from(0).len(), 4);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = Digraph::new(2);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
    }
}
