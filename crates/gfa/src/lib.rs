//! # fnc2-gfa — the Grammar Flow Analysis substrate
//!
//! FNC-2's evaluator generator is built on *Grammar Flow Analysis*
//! (Möncke \[38\], improved by Jourdan & Parigot \[26\]): every global AG
//! property — the `IO`/`OI` graphs of the (strong/double) non-circularity
//! tests, Kastens' induced dependencies, the space optimizer's may-evaluate
//! sets — is a least fixed point over the grammar. This crate provides the
//! shared machinery:
//!
//! * [`BitMatrix`] — dense relations with fast transitive closure,
//! * [`Digraph`] — deterministic topological sorting, cycle extraction
//!   (feeding the circularity trace), SCCs,
//! * [`fixpoint`] — the dependency-driven worklist engine.
//!
//! ```
//! use fnc2_gfa::BitMatrix;
//!
//! let mut dep = BitMatrix::new(3);
//! dep.set(0, 1);
//! dep.set(1, 2);
//! let closed = dep.closure();
//! assert!(closed.get(0, 2));
//! assert!(closed.is_irreflexive()); // acyclic
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitmat;
mod digraph;
mod fixpoint;

pub use bitmat::BitMatrix;
pub use digraph::Digraph;
pub use fixpoint::{fixpoint, fixpoint_recorded, FixpointStats, Worklist};
